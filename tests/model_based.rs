//! Model-based chaos testing: long seeded operation sequences interleaving
//! graph updates, interest updates, serialization round-trips, rebuilds and
//! queries, with the naive reference evaluator as the model. Any divergence
//! in any interleaving is a bug in construction, maintenance, persistence
//! or execution.

use cpqx::graph::generate::{random_graph, RandomGraphConfig};
use cpqx::graph::{ExtLabel, Label, LabelSeq};
use cpqx::index::CpqxIndex;
use cpqx::query::ast::Template;
use cpqx::query::eval::eval_reference;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug)]
enum Op {
    InsertEdge(u32, u32, Label),
    DeleteEdge(u32, u32, Label),
    InsertInterest(LabelSeq),
    DeleteInterest(LabelSeq),
    SerializeRoundtrip,
    Rebuild,
    AddVertex,
    DeleteVertex(u32),
    Query(Template),
}

fn random_op(rng: &mut StdRng, g: &cpqx::graph::Graph, ia: bool) -> Op {
    let n = g.vertex_count();
    let nl = g.base_label_count();
    let seq2 = |rng: &mut StdRng| {
        LabelSeq::from_slice(&[
            ExtLabel(rng.gen_range(0..nl * 2)),
            ExtLabel(rng.gen_range(0..nl * 2)),
        ])
    };
    match rng.gen_range(0..100) {
        0..=24 => {
            Op::InsertEdge(rng.gen_range(0..n), rng.gen_range(0..n), Label(rng.gen_range(0..nl)))
        }
        25..=49 => {
            Op::DeleteEdge(rng.gen_range(0..n), rng.gen_range(0..n), Label(rng.gen_range(0..nl)))
        }
        50..=57 if ia => Op::InsertInterest(seq2(rng)),
        58..=63 if ia => Op::DeleteInterest(seq2(rng)),
        64..=68 => Op::SerializeRoundtrip,
        69..=71 => Op::Rebuild,
        72..=74 => Op::AddVertex,
        75..=78 => Op::DeleteVertex(rng.gen_range(0..n)),
        _ => {
            let t = Template::ALL[rng.gen_range(0..Template::ALL.len())];
            Op::Query(t)
        }
    }
}

fn chaos(seed: u64, ia: bool, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = RandomGraphConfig::social(40, 150, 3, seed ^ 0x51DE);
    let mut g = random_graph(&cfg);
    let mut idx = if ia {
        CpqxIndex::build_interest_aware(&g, 2, [LabelSeq::from_slice(&[ExtLabel(0), ExtLabel(1)])])
    } else {
        CpqxIndex::build(&g, 2)
    };
    for step in 0..steps {
        let op = random_op(&mut rng, &g, ia);
        match op {
            Op::InsertEdge(v, u, l) => {
                idx.insert_edge(&mut g, v, u, l);
            }
            Op::DeleteEdge(v, u, l) => {
                idx.delete_edge(&mut g, v, u, l);
            }
            Op::InsertInterest(s) => {
                idx.insert_interest(&g, s);
            }
            Op::DeleteInterest(s) => {
                idx.delete_interest(&s);
            }
            Op::SerializeRoundtrip => {
                let mut buf = Vec::new();
                idx.save(&mut buf).expect("save");
                idx = CpqxIndex::load(std::io::Cursor::new(&buf)).expect("load");
            }
            Op::Rebuild => idx.rebuild(&g),
            Op::AddVertex => {
                idx.add_vertex(&mut g, format!("extra{step}"));
            }
            Op::DeleteVertex(v) => {
                let v = v % g.vertex_count();
                idx.delete_vertex(&mut g, v);
            }
            Op::Query(t) => {
                let labels: Vec<ExtLabel> = (0..t.arity())
                    .map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count())))
                    .collect();
                let q = t.instantiate(&labels);
                assert_eq!(
                    idx.evaluate(&g, &q),
                    eval_reference(&g, &q),
                    "seed {seed} step {step}: {op:?} on {q:?}"
                );
                // The optimizer must agree too.
                assert_eq!(
                    idx.evaluate_optimized(&g, &q),
                    eval_reference(&g, &q),
                    "optimizer diverged at seed {seed} step {step}"
                );
            }
        }
    }
    // Final audit: full template sweep against the model and a fresh build.
    let fresh = if ia {
        CpqxIndex::build_interest_aware(&g, 2, idx.interests().unwrap().iter().copied())
    } else {
        CpqxIndex::build(&g, 2)
    };
    for t in Template::ALL {
        let labels: Vec<ExtLabel> =
            (0..t.arity()).map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count()))).collect();
        let q = t.instantiate(&labels);
        let expected = eval_reference(&g, &q);
        assert_eq!(idx.evaluate(&g, &q), expected, "final audit {}", t.name());
        assert_eq!(fresh.evaluate(&g, &q), expected, "fresh-build audit {}", t.name());
    }
}

#[test]
fn chaos_full_index() {
    for seed in 0..4 {
        chaos(seed, false, 80);
    }
}

#[test]
fn chaos_interest_aware() {
    for seed in 10..14 {
        chaos(seed, true, 80);
    }
}

#[test]
fn chaos_long_run() {
    chaos(42, false, 250);
    chaos(43, true, 250);
}
