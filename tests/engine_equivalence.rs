//! Cross-engine equivalence: all seven evaluation methods of Sec. VI must
//! produce identical answers on identical inputs. Agreement across five
//! independent implementations (class-level index, pair-level index,
//! backtracking matcher, WCOJ matcher, BFS) against the naive reference is
//! the repository's strongest correctness evidence.

use cpqx::graph::generate;
use cpqx::graph::{ExtLabel, LabelSeq};
use cpqx::index::CpqxIndex;
use cpqx::matcher::{TensorEngine, TurboEngine};
use cpqx::pathindex::PathIndex;
use cpqx::query::ast::Template;
use cpqx::query::eval::{eval_reference, BfsEngine};
use cpqx::query::Cpq;
use rand::{Rng, SeedableRng};

fn interests_for(g: &cpqx::graph::Graph, queries: &[Cpq], k: usize) -> Vec<LabelSeq> {
    let mut seqs = Vec::new();
    for q in queries {
        for run in q.label_runs() {
            seqs.push(LabelSeq::from_slice(&run[..run.len().min(cpqx_graph::MAX_SEQ_LEN)]));
        }
    }
    let _ = g;
    cpqx::index::normalize_interests(seqs, k).into_iter().collect()
}

fn check_all_engines(g: &cpqx::graph::Graph, queries: &[Cpq], k: usize, ctx: &str) {
    let interests = interests_for(g, queries, k);
    let cpqx = CpqxIndex::build(g, k);
    let ia_cpqx = CpqxIndex::build_interest_aware(g, k, interests.iter().copied());
    let path = PathIndex::build(g, k);
    let ia_path = PathIndex::build_interest_aware(g, k, interests.iter().copied());
    for (i, q) in queries.iter().enumerate() {
        let expected = eval_reference(g, q);
        assert_eq!(cpqx.evaluate(g, q), expected, "{ctx}: CPQx on query {i} ({q:?})");
        assert_eq!(ia_cpqx.evaluate(g, q), expected, "{ctx}: iaCPQx on query {i}");
        assert_eq!(path.evaluate(g, q), expected, "{ctx}: Path on query {i}");
        assert_eq!(ia_path.evaluate(g, q), expected, "{ctx}: iaPath on query {i}");
        assert_eq!(TurboEngine.evaluate(g, q), expected, "{ctx}: TurboHom++ on query {i}");
        assert_eq!(TensorEngine.evaluate(g, q), expected, "{ctx}: Tentris on query {i}");
        assert_eq!(BfsEngine.evaluate(g, q), expected, "{ctx}: BFS on query {i}");
    }
}

fn template_queries(g: &cpqx::graph::Graph, seed: u64, per_template: usize) -> Vec<Cpq> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for t in Template::ALL {
        for _ in 0..per_template {
            let labels: Vec<ExtLabel> =
                (0..t.arity()).map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count()))).collect();
            out.push(t.instantiate(&labels));
        }
    }
    out
}

#[test]
fn seven_engines_agree_on_gex() {
    let g = generate::gex();
    let queries = template_queries(&g, 1, 3);
    check_all_engines(&g, &queries, 2, "gex");
}

#[test]
fn seven_engines_agree_on_power_law() {
    let g = generate::random_graph(&generate::RandomGraphConfig::social(70, 280, 3, 11));
    let queries = template_queries(&g, 2, 2);
    check_all_engines(&g, &queries, 2, "power-law");
}

#[test]
fn seven_engines_agree_on_er() {
    let g = generate::random_graph(&generate::RandomGraphConfig::uniform(70, 280, 4, 12));
    let queries = template_queries(&g, 3, 2);
    check_all_engines(&g, &queries, 2, "erdos-renyi");
}

#[test]
fn seven_engines_agree_on_gmark() {
    let g = generate::gmark(200, 4);
    let queries = template_queries(&g, 4, 2);
    check_all_engines(&g, &queries, 2, "gmark");
}

#[test]
fn seven_engines_agree_at_k3() {
    let g = generate::random_graph(&generate::RandomGraphConfig::social(50, 180, 3, 13));
    let queries = template_queries(&g, 5, 1);
    check_all_engines(&g, &queries, 3, "k=3");
}

#[test]
fn seven_engines_agree_on_degenerate_graphs() {
    for g in [
        generate::cycle(5, "f"),
        generate::star(6, "f"),
        generate::clique(5, "f"),
        generate::labeled_path(&["a", "b", "a", "b"]),
    ] {
        let queries = template_queries(&g, 6, 1);
        check_all_engines(&g, &queries, 2, "degenerate");
    }
}

#[test]
fn benchmark_query_sets_agree() {
    use cpqx::query::benchqueries::{lubm_queries, watdiv_queries, yago_queries};
    let g = generate::gmark(300, 9);
    let queries: Vec<Cpq> = yago_queries(&g, 1)
        .into_iter()
        .chain(lubm_queries(&g, 2))
        .chain(watdiv_queries(&g, 3))
        .map(|nq| nq.query)
        .collect();
    check_all_engines(&g, &queries, 2, "benchqueries");
}
