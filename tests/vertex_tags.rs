//! Vertex-label (tag) queries through the self-loop encoding — the
//! practical extension the paper's footnote 5 calls "straightforward":
//! vertex labels become reserved self-loop edge labels, and plain CPQs
//! filter endpoints by composing with the tag atom. The CPQ-aware index
//! needs no changes at all.

use cpqx::graph::GraphBuilder;
use cpqx::index::CpqxIndex;
use cpqx::query::eval::eval_reference;
use cpqx::query::parse_cpq;

fn typed_social_graph() -> cpqx::graph::Graph {
    let mut b = GraphBuilder::new();
    for (v, u) in [("ann", "bob"), ("bob", "cay"), ("cay", "ann"), ("dan", "ann")] {
        b.add_edge_named(v, u, "follows");
    }
    for (v, blog) in [("ann", "blogA"), ("bob", "blogA"), ("dan", "blogB")] {
        b.add_edge_named(v, blog, "visits");
    }
    for person in ["ann", "bob", "cay", "dan"] {
        b.tag_vertex(person, "person");
    }
    for blog in ["blogA", "blogB"] {
        b.tag_vertex(blog, "blog");
    }
    b.tag_vertex("ann", "verified");
    b.build()
}

#[test]
fn tag_atoms_filter_endpoints() {
    let g = typed_social_graph();
    let idx = CpqxIndex::build(&g, 2);

    // All verified people's followers: @verified⁻¹-style filtering on the
    // source via composition.
    let q = parse_cpq("_verified . follows", &g.clone()).err();
    assert!(q.is_some(), "tags use @, not _");

    let q = parse_cpq("@verified . follows", &g).unwrap();
    let result = idx.evaluate(&g, &q);
    assert_eq!(result, eval_reference(&g, &q));
    assert!(result.iter().all(|p| g.vertex_name(p.src()) == "ann"), "only ann is verified");
    assert_eq!(result.len(), 1); // ann → bob
}

#[test]
fn typed_triangle() {
    let g = typed_social_graph();
    let idx = CpqxIndex::build(&g, 2);
    // Triads restricted to tagged persons (all of them here, but the shape
    // composes): @person at the source, follows-triangle closing back.
    let q = parse_cpq("(@person . follows . follows) & follows^-1", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
    assert_eq!(idx.evaluate(&g, &q).len(), 3, "the ann-bob-cay triangle");
}

#[test]
fn tag_only_queries() {
    let g = typed_social_graph();
    let idx = CpqxIndex::build(&g, 2);
    // All blogs: ⟦@blog⟧ ∩ id ≡ ⟦@blog⟧ (self-loops are cyclic already).
    let q = parse_cpq("@blog & id", &g).unwrap();
    let result = idx.evaluate(&g, &q);
    assert_eq!(result, eval_reference(&g, &q));
    let names: Vec<&str> = result.iter().map(|p| g.vertex_name(p.src())).collect();
    assert_eq!(names, vec!["blogA", "blogB"]);
}

#[test]
fn tags_survive_maintenance() {
    let mut g = typed_social_graph();
    let mut idx = CpqxIndex::build(&g, 2);
    let dan = g.vertex_named("dan").unwrap();
    let verified = g.tag_label("verified").unwrap();
    // Verify dan at runtime: a tag update is an ordinary edge insertion.
    idx.insert_edge(&mut g, dan, dan, verified);
    let q = parse_cpq("@verified . follows", &g).unwrap();
    let result = idx.evaluate(&g, &q);
    assert_eq!(result, eval_reference(&g, &q));
    assert_eq!(result.len(), 2, "ann→bob and dan→ann");
}

#[test]
fn typed_queries_on_interest_aware_index() {
    let g = typed_social_graph();
    let follows = g.label_named("follows").unwrap();
    let person = g.tag_label("person").unwrap();
    let idx = CpqxIndex::build_interest_aware(
        &g,
        2,
        [cpqx::graph::LabelSeq::from_slice(&[person.fwd(), follows.fwd()])],
    );
    let q = parse_cpq("@person . follows", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
}
