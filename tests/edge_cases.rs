//! Degenerate and boundary inputs: empty graphs, isolated vertices,
//! self-loop-only graphs, k at its extremes, chains far beyond k, and
//! no-op maintenance.

use cpqx::graph::{GraphBuilder, Label, LabelSeq, Pair};
use cpqx::index::CpqxIndex;
use cpqx::pathindex::PathIndex;
use cpqx::query::eval::{eval_reference, BfsEngine};
use cpqx::query::{parse_cpq, Cpq};

fn edgeless_graph() -> cpqx::graph::Graph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(5);
    b.ensure_labels(2);
    b.build()
}

#[test]
fn empty_graph_builds_and_answers() {
    let g = edgeless_graph();
    let idx = CpqxIndex::build(&g, 2);
    assert_eq!(idx.pair_count(), 0);
    assert_eq!(idx.class_slots(), 0);
    // `id` is answered from the graph, not the index.
    let q = parse_cpq("id", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q).len(), 5);
    // Label queries are empty, not errors.
    let q = parse_cpq("l0 . l1", &g).unwrap();
    assert!(idx.evaluate(&g, &q).is_empty());
    assert!(idx.evaluate_first(&g, &q).is_none());
    let stats = idx.stats();
    assert_eq!(stats.gamma, 0.0);
    assert_eq!(stats.pairs, 0);
}

#[test]
fn empty_graph_maintenance_noops() {
    let mut g = edgeless_graph();
    let mut idx = CpqxIndex::build(&g, 2);
    assert!(!idx.delete_edge(&mut g, 0, 1, Label(0)), "deleting a missing edge is a no-op");
    assert!(idx.insert_edge(&mut g, 0, 1, Label(0)));
    let q = parse_cpq("l0", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), vec![Pair::new(0, 1)]);
}

#[test]
fn single_vertex_self_loop_all_k() {
    let mut b = GraphBuilder::new();
    b.add_edge_named("v", "v", "a");
    let g = b.build();
    for k in 1..=4 {
        let idx = CpqxIndex::build(&g, k);
        assert_eq!(idx.pair_count(), 1);
        for text in ["a", "a . a", "a & a^-1", "(a . a^-1) & id"] {
            let q = parse_cpq(text, &g).unwrap();
            assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "k={k} {text}");
        }
    }
}

#[test]
fn isolated_vertices_only_matter_for_id() {
    let mut b = GraphBuilder::new();
    b.add_edge_named("a", "b", "f");
    b.vertex("lonely1");
    b.vertex("lonely2");
    let g = b.build();
    let idx = CpqxIndex::build(&g, 2);
    let q = parse_cpq("id", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q).len(), 4);
    let q = parse_cpq("f . f^-1", &g).unwrap();
    let result = idx.evaluate(&g, &q);
    assert_eq!(result, eval_reference(&g, &q));
    assert!(result.iter().all(|p| p.src() < 2), "isolated vertices appear in no path answer");
}

#[test]
fn k_at_max_seq_len() {
    let g = cpqx::graph::generate::labeled_path(&["a", "b", "c", "d", "e", "f", "g", "h"]);
    let idx = CpqxIndex::build(&g, cpqx::graph::MAX_SEQ_LEN);
    // The full 8-chain is a single lookup at k = 8.
    let q = parse_cpq("a . b . c . d . e . f . g . h", &g).unwrap();
    let plan = idx.plan(&q);
    assert_eq!(plan.lookup_count(), 1);
    assert_eq!(idx.evaluate(&g, &q), vec![Pair::new(0, 8)]);
}

#[test]
#[should_panic(expected = "MAX_SEQ_LEN")]
fn k_beyond_max_rejected() {
    let g = cpqx::graph::generate::gex();
    let _ = CpqxIndex::build(&g, cpqx::graph::MAX_SEQ_LEN + 1);
}

#[test]
fn chains_far_beyond_k() {
    let g = cpqx::graph::generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    // Diameter 12 on a k=2 index: 6 lookups, 5 joins.
    let f = g.label_named("f").unwrap();
    let labels: Vec<_> = (0..12).map(|i| if i % 2 == 0 { f.fwd() } else { f.inv() }).collect();
    let q = Cpq::chain(&labels);
    let plan = idx.plan(&q);
    assert_eq!(plan.lookup_count(), 6);
    assert_eq!(plan.join_count(), 5);
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
    assert_eq!(BfsEngine.evaluate(&g, &q), eval_reference(&g, &q));
}

#[test]
fn repeated_label_star() {
    // St with all three legs on the same label degenerates to one leg.
    let g = cpqx::graph::generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    let q = parse_cpq("((f . f^-1) & (f . f^-1)) & ((f . f^-1) & id)", &g).unwrap();
    let simple = parse_cpq("(f . f^-1) & id", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), idx.evaluate(&g, &simple));
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
}

#[test]
fn conjunction_of_disjoint_labels_is_empty() {
    let g = cpqx::graph::generate::labeled_path(&["a", "b"]);
    let idx = CpqxIndex::build(&g, 2);
    let q = parse_cpq("a & b", &g).unwrap();
    assert!(idx.evaluate(&g, &q).is_empty());
    let path = PathIndex::build(&g, 2);
    assert!(path.evaluate(&g, &q).is_empty());
}

#[test]
fn delete_isolated_vertex_is_noop() {
    let mut b = GraphBuilder::new();
    b.add_edge_named("a", "b", "f");
    b.vertex("lonely");
    let mut g = b.build();
    let mut idx = CpqxIndex::build(&g, 2);
    let lonely = g.vertex_named("lonely").unwrap();
    let before = idx.pair_count();
    idx.delete_vertex(&mut g, lonely);
    assert_eq!(idx.pair_count(), before);
    let q = parse_cpq("f", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
}

#[test]
fn interest_operations_rejected_outside_ia_mode() {
    let g = cpqx::graph::generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let f = g.label_named("f").unwrap();
    let seq = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
    assert!(!idx.insert_interest(&g, seq), "full index has no interest set");
    assert!(!idx.delete_interest(&seq));
}

#[test]
fn interest_length_bounds() {
    let g = cpqx::graph::generate::gex();
    let f = g.label_named("f").unwrap();
    let mut idx = CpqxIndex::build_interest_aware(&g, 2, std::iter::empty::<LabelSeq>());
    // Length-1: implicitly indexed, registration refused.
    assert!(!idx.insert_interest(&g, LabelSeq::single(f.fwd())));
    // Longer than k: refused (callers must normalize first).
    let long = LabelSeq::from_slice(&[f.fwd(), f.fwd(), f.fwd()]);
    assert!(!idx.insert_interest(&g, long));
    // Within bounds: accepted.
    assert!(idx.insert_interest(&g, LabelSeq::from_slice(&[f.fwd(), f.fwd()])));
}

#[test]
fn parallel_edges_with_different_labels() {
    let mut b = GraphBuilder::new();
    b.add_edge_named("x", "y", "a");
    b.add_edge_named("x", "y", "b");
    b.add_edge_named("x", "y", "c");
    let g = b.build();
    let idx = CpqxIndex::build(&g, 2);
    // One pair, one class, three length-1 sequences (plus 2-step returns).
    let p = Pair::new(g.vertex_named("x").unwrap(), g.vertex_named("y").unwrap());
    let c = idx.class_of(p).unwrap();
    let singles = idx.class_sequences(c).iter().filter(|s| s.len() == 1).count();
    assert_eq!(singles, 3);
    for text in ["a & b", "a & (b & c)", "(a . a^-1) & id"] {
        let q = parse_cpq(text, &g).unwrap();
        assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "{text}");
    }
}

#[test]
fn bfs_and_reference_on_empty_graph() {
    let g = edgeless_graph();
    let q = parse_cpq("l0 & id", &g).unwrap();
    assert!(eval_reference(&g, &q).is_empty());
    assert!(BfsEngine.evaluate(&g, &q).is_empty());
}
