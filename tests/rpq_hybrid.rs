//! Workspace-level tests of the RPQ layer: property-based agreement of the
//! index-accelerated evaluator with the product-automaton reference, text
//! round-trips, and mixed CPQ/RPQ consistency on one index.

use cpqx::graph::generate::{random_graph, RandomGraphConfig};
use cpqx::graph::ExtLabel;
use cpqx::index::CpqxIndex;
use cpqx::rpq::{eval_product, parse_rpq, IndexRpqEngine, Rpq};
use proptest::prelude::*;

/// Strategy: random RPQ over `labels` base labels, depth-bounded.
fn rpq_strategy(labels: u16) -> impl Strategy<Value = Rpq> {
    let leaf = prop_oneof![
        10 => (0..labels * 2).prop_map(|l| Rpq::Label(ExtLabel(l))),
        1 => Just(Rpq::Epsilon),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            3 => (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            1 => inner.clone().prop_map(Rpq::star),
            1 => inner.clone().prop_map(Rpq::plus),
            1 => inner.prop_map(Rpq::opt),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn index_engine_equals_product_automaton(
        seed in 0u64..300,
        r in rpq_strategy(2),
    ) {
        let cfg = RandomGraphConfig::social(20, 60, 2, seed);
        let g = random_graph(&cfg);
        let idx = CpqxIndex::build(&g, 2);
        let fast = IndexRpqEngine::new(&idx).evaluate(&g, &r);
        let slow = eval_product(&g, &r);
        prop_assert_eq!(fast, slow, "expr {:?}", r);
    }

    #[test]
    fn rpq_text_roundtrip(r in rpq_strategy(2)) {
        let g = random_graph(&RandomGraphConfig::social(10, 20, 2, 1));
        let text = r.to_text(&g);
        let back = parse_rpq(&text, &g).unwrap();
        prop_assert_eq!(back, r);
    }
}

#[test]
fn star_free_linear_rpq_equals_cpq_chain() {
    // A pure concatenation of labels is both an RPQ and a CPQ chain — the
    // two pipelines must coincide on the same index.
    let g = random_graph(&RandomGraphConfig::social(50, 200, 3, 9));
    let idx = CpqxIndex::build(&g, 2);
    let rpq = parse_rpq("l0 . l1 . l2", &g).unwrap();
    let cpq = cpqx::query::parse_cpq("l0 . l1 . l2", &g).unwrap();
    assert!(rpq.is_star_free());
    assert_eq!(IndexRpqEngine::new(&idx).evaluate(&g, &rpq), idx.evaluate(&g, &cpq));
}

#[test]
fn label_constrained_reachability() {
    // The classic RPQ use case the paper's Table I indexes target:
    // single-label transitive reachability.
    let g = cpqx::graph::generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    let r = parse_rpq("f+", &g).unwrap();
    let result = IndexRpqEngine::new(&idx).evaluate(&g, &r);
    assert_eq!(result, eval_product(&g, &r));
    // The follows-triad makes sue/joe/zoe mutually reachable.
    let (sue, zoe) = (g.vertex_named("sue").unwrap(), g.vertex_named("zoe").unwrap());
    assert!(result.contains(&cpqx::graph::Pair::new(sue, zoe)));
    assert!(result.contains(&cpqx::graph::Pair::new(zoe, sue)));
}

#[test]
fn rpq_after_maintenance() {
    // The RPQ engine reads the index live, so lazy maintenance must keep
    // its answers correct too.
    let mut g = cpqx::graph::generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let (sue, joe) = (g.vertex_named("sue").unwrap(), g.vertex_named("joe").unwrap());
    let f = g.label_named("f").unwrap();
    idx.delete_edge(&mut g, sue, joe, f);
    let r = parse_rpq("f+", &g).unwrap();
    assert_eq!(IndexRpqEngine::new(&idx).evaluate(&g, &r), eval_product(&g, &r));
}
