//! Larger-scale stress checks. The default suite keeps these small; the
//! `#[ignore]`d variants run at closer-to-paper scale
//! (`cargo test --release -- --ignored`).

use cpqx::graph::generate::{gmark, random_graph, RandomGraphConfig};
use cpqx::index::CpqxIndex;
use cpqx::pathindex::PathIndex;
use cpqx::query::ast::Template;
use cpqx::query::workload::{GraphProbe, WorkloadGen};

#[test]
fn midsize_powerlaw_build_and_query() {
    let g = random_graph(&RandomGraphConfig::social(5_000, 20_000, 4, 77));
    let idx = CpqxIndex::build(&g, 2);
    let s = idx.stats();
    assert!(s.classes > 0 && s.classes <= s.pairs);
    // Full workload pass, CPQx vs Path answers.
    let path = PathIndex::build(&g, 2);
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 5);
    for t in [Template::T, Template::S, Template::C2i, Template::TC] {
        for q in gen.queries(t, 2, &probe) {
            assert_eq!(idx.evaluate(&g, &q), path.evaluate(&g, &q), "{}", t.name());
        }
    }
}

#[test]
fn midsize_gmark_interest_aware() {
    let g = gmark(20_000, 13);
    let cites = g.label_named("cites").unwrap();
    let held = g.label_named("heldIn").unwrap();
    let publishes = g.label_named("publishesIn").unwrap();
    let interests = [
        cpqx::graph::LabelSeq::from_slice(&[cites.fwd(), cites.fwd()]),
        cpqx::graph::LabelSeq::from_slice(&[publishes.fwd(), held.fwd()]),
    ];
    let idx = CpqxIndex::build_interest_aware(&g, 2, interests);
    assert!(idx.pair_count() > 0);
    let q = cpqx::query::parse_cpq("(publishesIn . heldIn) & livesIn", &g).unwrap();
    let result = idx.evaluate(&g, &q);
    // Researchers publishing in a venue held in their home town exist in a
    // 20k-vertex instance with 70% home-town workers.
    assert!(!result.is_empty());
}

#[test]
#[ignore = "paper-scale stress; run with --ignored"]
fn large_powerlaw_full_lifecycle() {
    use rand::{Rng, SeedableRng};
    let mut g = random_graph(&RandomGraphConfig::social(100_000, 400_000, 8, 3));
    let mut idx = CpqxIndex::build(&g, 2);
    let before = idx.stats();
    assert!(before.pairs > 100_000);
    // Update storm.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for _ in 0..500 {
        let v = rng.gen_range(0..g.vertex_count());
        let u = rng.gen_range(0..g.vertex_count());
        let l = cpqx::graph::Label(rng.gen_range(0..g.base_label_count()));
        if rng.gen_bool(0.5) {
            idx.insert_edge(&mut g, v, u, l);
        } else {
            idx.delete_edge(&mut g, v, u, l);
        }
    }
    // Spot-check against a rebuild.
    let fresh = CpqxIndex::build(&g, 2);
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 1);
    for t in [Template::T, Template::S, Template::Si] {
        for q in gen.queries(t, 2, &probe) {
            assert_eq!(idx.evaluate(&g, &q), fresh.evaluate(&g, &q));
        }
    }
}

#[test]
#[ignore = "paper-scale stress; run with --ignored"]
fn large_serialization_roundtrip() {
    let g = random_graph(&RandomGraphConfig::social(50_000, 200_000, 6, 21));
    let idx = CpqxIndex::build(&g, 2);
    let mut buf = Vec::new();
    idx.save(&mut buf).unwrap();
    let loaded = CpqxIndex::load(std::io::Cursor::new(&buf)).unwrap();
    assert_eq!(loaded.pair_count(), idx.pair_count());
    assert_eq!(loaded.stats().postings, idx.stats().postings);
}
