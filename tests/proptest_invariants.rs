//! Property-based tests of the core invariants on arbitrary random graphs
//! and arbitrary CPQ expressions.

use cpqx::graph::generate::{random_graph, LabelDist, RandomGraphConfig, Topology};
use cpqx::graph::{ExtLabel, Graph, Label, LabelSeq, Pair};
use cpqx::index::CpqxIndex;
use cpqx::pathindex::PathIndex;
use cpqx::query::eval::eval_reference;
use cpqx::query::Cpq;
use proptest::prelude::*;

/// Strategy: a small random labeled graph.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4u32..40, 1usize..120, 1u16..4, 0u64..1_000, prop::bool::ANY).prop_map(
        |(n, m, labels, seed, uniform)| {
            random_graph(&RandomGraphConfig {
                vertices: n,
                base_edges: m,
                base_labels: labels,
                topology: if uniform {
                    Topology::ErdosRenyi
                } else {
                    Topology::PowerLaw { exponent: 2.2 }
                },
                label_dist: LabelDist::Exponential { lambda: 0.5 },
                seed,
            })
        },
    )
}

/// Strategy: a random CPQ over `labels` base labels (depth-bounded).
fn cpq_strategy(labels: u16) -> impl Strategy<Value = Cpq> {
    let leaf = prop_oneof![
        8 => (0..labels * 2).prop_map(|l| Cpq::ext(ExtLabel(l))),
        1 => Just(Cpq::Id),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.join(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.conj(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition invariant behind Prop. 4.1: every class of the built
    /// index is homogeneous in cyclicity and `L≤k`.
    #[test]
    fn classes_are_homogeneous(g in graph_strategy()) {
        let idx = CpqxIndex::build(&g, 2);
        for c in 0..idx.class_slots() as u32 {
            let pairs = idx.class_pairs(c);
            prop_assert!(!pairs.is_empty(), "fresh index has no tombstones");
            let expected = cpqx::index::CpqxIndex::build(&g, 2); // self-check via paths
            let _ = expected;
            let rep = pairs[0];
            let rep_seqs = cpqx_core::paths::label_seqs_between(&g, rep.src(), rep.dst(), 2);
            prop_assert_eq!(idx.class_sequences(c), rep_seqs.as_slice());
            for p in pairs {
                prop_assert_eq!(p.is_loop(), idx.class_is_loop(c));
                let seqs = cpqx_core::paths::label_seqs_between(&g, p.src(), p.dst(), 2);
                prop_assert_eq!(&seqs, &rep_seqs, "pair {:?} differs from rep {:?}", p, rep);
            }
        }
    }

    /// Index evaluation equals the reference semantics for arbitrary CPQs.
    #[test]
    fn cpqx_equals_reference(
        (g, queries) in graph_strategy().prop_flat_map(|g| {
            let nl = g.base_label_count();
            (Just(g), prop::collection::vec(cpq_strategy(nl), 1..4))
        }),
    ) {
        let idx = CpqxIndex::build(&g, 2);
        for q in &queries {
            prop_assert_eq!(idx.evaluate(&g, q), eval_reference(&g, q), "query {:?}", q);
        }
    }

    /// Path-index evaluation equals the reference semantics too.
    #[test]
    fn path_equals_reference(
        (g, q) in graph_strategy().prop_flat_map(|g| {
            let nl = g.base_label_count();
            (Just(g), cpq_strategy(nl))
        }),
    ) {
        let idx = PathIndex::build(&g, 2);
        prop_assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
    }

    /// Thm. 4.2's counting: the CPQ-aware index stores no more posting
    /// entries than the language-unaware one, and |C| ≤ |P≤k|.
    #[test]
    fn thm_4_2_entry_counts(g in graph_strategy()) {
        let cpqx = CpqxIndex::build(&g, 2);
        let path = PathIndex::build(&g, 2);
        let cs = cpqx.stats();
        let ps = path.stats();
        prop_assert!(cs.classes <= cs.pairs);
        prop_assert!(cs.postings <= ps.stored_pairs,
            "γ|C| = {} must be ≤ γ|P| = {}", cs.postings, ps.stored_pairs);
        prop_assert_eq!(cs.pairs,
            {
                // Path's distinct pairs across single-label postings equal
                // CPQx's pair universe only when k = 1; at k = 2 compare
                // against the union of all postings instead.
                let mut all: Vec<Pair> = Vec::new();
                for a in g.ext_labels() {
                    all.extend_from_slice(path.lookup(&LabelSeq::single(a)));
                    for b in g.ext_labels() {
                        all.extend_from_slice(path.lookup(&LabelSeq::from_slice(&[a, b])));
                    }
                }
                all.sort_unstable();
                all.dedup();
                all.len()
            },
            "both indexes cover the same pair universe");
    }

    /// Maintenance: a random churn of updates keeps arbitrary queries
    /// correct (Prop. 4.2).
    #[test]
    fn maintenance_preserves_answers(
        (g0, q) in graph_strategy().prop_flat_map(|g| {
            let nl = g.base_label_count();
            (Just(g), cpq_strategy(nl))
        }),
        script in prop::collection::vec((0u32..40, 0u32..40, 0u16..3, prop::bool::ANY), 1..12),
    ) {
        let mut g = g0;
        let mut idx = CpqxIndex::build(&g, 2);
        for (v, u, l, insert) in script {
            let v = v % g.vertex_count();
            let u = u % g.vertex_count();
            let l = Label(l % g.base_label_count());
            if insert {
                idx.insert_edge(&mut g, v, u, l);
            } else {
                idx.delete_edge(&mut g, v, u, l);
            }
        }
        prop_assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
    }

    /// LabelSeq encode/slice round-trips.
    #[test]
    fn label_seq_roundtrip(raw in prop::collection::vec(0u16..512, 0..8)) {
        let labels: Vec<ExtLabel> = raw.iter().map(|&x| ExtLabel(x)).collect();
        let seq = LabelSeq::from_slice(&labels);
        prop_assert_eq!(seq.len(), labels.len());
        let back: Vec<ExtLabel> = seq.iter().collect();
        prop_assert_eq!(back, labels.clone());
        prop_assert_eq!(seq.reversed_inverse().reversed_inverse(), seq);
        let n = labels.len() / 2;
        prop_assert_eq!(seq.prefix(n).concat(&seq.suffix(n)), seq);
    }

    /// Pair packing round-trips and orders source-major.
    #[test]
    fn pair_roundtrip(v in any::<u32>(), u in any::<u32>(), v2 in any::<u32>(), u2 in any::<u32>()) {
        let p = Pair::new(v, u);
        prop_assert_eq!(p.src(), v);
        prop_assert_eq!(p.dst(), u);
        prop_assert_eq!(p.swap().swap(), p);
        let q = Pair::new(v2, u2);
        prop_assert_eq!(p.cmp(&q), (v, u).cmp(&(v2, u2)));
    }

    /// The planner's lookups re-compose to the original chain.
    #[test]
    fn planner_chunking_preserves_chains(
        raw in prop::collection::vec(0u16..6, 1..8),
        k in 1usize..5,
    ) {
        let labels: Vec<ExtLabel> = raw.iter().map(|&x| ExtLabel(x)).collect();
        let q = Cpq::chain(&labels);
        let plan = cpqx::query::plan::plan_for_k(&q, k);
        let seqs = plan.lookup_seqs();
        prop_assert!(seqs.iter().all(|s| s.len() <= k && !s.is_empty()));
        let recomposed: Vec<ExtLabel> = seqs.iter().flat_map(|s| s.iter().collect::<Vec<_>>()).collect();
        prop_assert_eq!(recomposed, labels);
    }
}
