//! The paper's worked examples, checked end to end on the reconstructed
//! `Gex` (Fig. 1): Example 3.1 (label-sequence sets), the introduction's
//! triad query, Example 4.1 (index lookups), Example 4.3 (class-level
//! conjunction), Example 4.4 (edge deletion), and the Fig. 4 plan shape.

use cpqx::graph::generate::gex;
use cpqx::graph::LabelSeq;
use cpqx::index::CpqxIndex;
use cpqx::pathindex::PathIndex;
use cpqx::query::parse_cpq;
use cpqx::query::plan::{plan_for_k, Plan};
use cpqx_core::paths::label_seqs_between;

#[test]
fn example_3_1_label_sequence_sets() {
    // L≤2(ada, ada) ⊇ {⟨f,f⁻¹⟩, ⟨v,v⁻¹⟩}; identity is implicit (index
    // stores only non-trivial paths).
    let g = gex();
    let f = g.label_named("f").unwrap();
    let v = g.label_named("v").unwrap();
    let ada = g.vertex_named("ada").unwrap();
    let seqs = label_seqs_between(&g, ada, ada, 2);
    assert!(seqs.contains(&LabelSeq::from_slice(&[f.fwd(), f.inv()])));
    assert!(seqs.contains(&LabelSeq::from_slice(&[v.fwd(), v.inv()])));
    // ada has no incoming f edge, so no ⟨f⁻¹,f⟩ cycle (unlike the paper's
    // ada which is followed; our reconstruction differs only peripherally).

    // L≤2(joe, sue) = {⟨f⁻¹⟩, ⟨f,f⟩, ⟨v,v⁻¹⟩} — exactly the paper's set.
    let (joe, sue) = (g.vertex_named("joe").unwrap(), g.vertex_named("sue").unwrap());
    let seqs = label_seqs_between(&g, joe, sue, 2);
    let expected = vec![
        LabelSeq::single(f.inv()),
        LabelSeq::from_slice(&[f.fwd(), f.fwd()]),
        LabelSeq::from_slice(&[v.fwd(), v.inv()]),
    ];
    let mut expected = expected;
    expected.sort_unstable();
    assert_eq!(seqs, expected);
}

#[test]
fn introduction_triad_answer() {
    let g = gex();
    let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
    for engine_result in
        [CpqxIndex::build(&g, 2).evaluate(&g, &q), PathIndex::build(&g, 2).evaluate(&g, &q)]
    {
        let names: std::collections::BTreeSet<(&str, &str)> = engine_result
            .iter()
            .map(|p| (g.vertex_name(p.src()), g.vertex_name(p.dst())))
            .collect();
        assert_eq!(names, [("sue", "zoe"), ("joe", "sue"), ("zoe", "joe")].into_iter().collect());
    }
}

#[test]
fn example_4_1_lookups_share_one_class() {
    // Il2c(f⁻¹) and Il2c(ﬀ) each return 3 classes on Gex and share exactly
    // one — the triad class (the paper's class 7).
    let g = gex();
    let idx = CpqxIndex::build(&g, 2);
    let f = g.label_named("f").unwrap();
    let a = idx.lookup(&LabelSeq::single(f.inv()));
    let b = idx.lookup(&LabelSeq::from_slice(&[f.fwd(), f.fwd()]));
    assert_eq!(a.len(), 3, "Il2c(f⁻¹) returns 3 classes (paper: {{7, 8, 9}})");
    assert_eq!(b.len(), 3, "Il2c(ﬀ) returns 3 classes (paper: {{7, 16, 20}})");
    let shared: Vec<_> = a.iter().filter(|c| b.contains(c)).collect();
    assert_eq!(shared.len(), 1);
    let triad = idx.class_pairs(*shared[0]);
    assert_eq!(triad.len(), 3);
    assert!(triad.iter().all(|p| !p.is_loop()));
}

#[test]
fn example_4_3_pruning_ratio() {
    // The paper counts 30 s-t pairs retrieved by the unaware index versus 6
    // class ids with CPQx for the triad conjunction. Check the analogous
    // ratio here: class-id volume strictly below pair volume.
    let g = gex();
    let cpqx = CpqxIndex::build(&g, 2);
    let path = PathIndex::build(&g, 2);
    let f = g.label_named("f").unwrap();
    let ff = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
    let fi = LabelSeq::single(f.inv());
    let class_volume = cpqx.lookup(&ff).len() + cpqx.lookup(&fi).len();
    let pair_volume = path.lookup(&ff).len() + path.lookup(&fi).len();
    assert_eq!(class_volume, 6, "3 + 3 class identifiers, as in Example 4.3");
    // The paper's exact Gex yields 30 vs 6; our reconstruction has a
    // slightly thinner follow structure — the multiple-fold gap remains.
    assert!(
        pair_volume >= 3 * class_volume,
        "pair lookups ({pair_volume}) dwarf class lookups ({class_volume})"
    );
}

#[test]
fn example_4_4_edge_deletion() {
    // Delete (ada, tim, f): (ada, 123) keeps its ⟨f,v⟩ alternative? In our
    // reconstruction ada→123 is a direct visit plus ada→tom→123; the pair
    // survives. (ada, tim) loses ⟨f⟩ but stays connected via ⟨v,v⁻¹⟩.
    let mut g = gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let (ada, tim) = (g.vertex_named("ada").unwrap(), g.vertex_named("tim").unwrap());
    let blog = g.vertex_named("123").unwrap();
    let f = g.label_named("f").unwrap();

    idx.delete_edge(&mut g, ada, tim, f);

    let pair = cpqx::graph::Pair::new(ada, tim);
    let c = idx.class_of(pair).expect("(ada,tim) still indexed via v·v⁻¹");
    let v = g.label_named("v").unwrap();
    assert_eq!(
        idx.class_sequences(c),
        &[LabelSeq::from_slice(&[v.fwd(), v.inv()])],
        "only the co-visitation path remains"
    );
    let blog_pair = cpqx::graph::Pair::new(ada, blog);
    let c = idx.class_of(blog_pair).expect("(ada,123) still indexed");
    assert!(
        idx.class_sequences(c).contains(&LabelSeq::single(v.fwd())),
        "direct visit survives the deletion"
    );
}

#[test]
fn fig_4_plan_shape() {
    // [(ℓ1∘ℓ2∘ℓ3) ∩ (ℓ4∘ℓ5)] ∩ id at k = 2: the chain splits as
    // ⟨ℓ1,ℓ2⟩ ⋈ ⟨ℓ3⟩, identity fuses into the outer conjunction.
    let g = gex();
    let q = parse_cpq("((f . f . v) & (f . v)) & id", &g).unwrap();
    let plan = plan_for_k(&q, 2);
    let Plan::ConjId(left, right) = plan else {
        panic!("expected fused conjunction-with-identity at the root");
    };
    let Plan::Join(a, b) = *left else {
        panic!("left side must be a join of two lookups");
    };
    assert!(matches!(*a, Plan::Lookup(s) if s.len() == 2));
    assert!(matches!(*b, Plan::Lookup(s) if s.len() == 1));
    assert!(matches!(*right, Plan::Lookup(s) if s.len() == 2));
}

#[test]
fn theorem_4_1_corollary_queries_are_class_unions() {
    // Corollary 4.1: every CPQ2 answer is a union of whole classes.
    let g = gex();
    let idx = CpqxIndex::build(&g, 2);
    for text in ["f", "f . f", "(f . f) & f^-1", "v . v^-1", "(f . v) & v"] {
        let q = parse_cpq(text, &g).unwrap();
        let answer = idx.evaluate(&g, &q);
        // For every answered pair, its whole class must be in the answer.
        for p in &answer {
            let c = idx.class_of(*p).expect("answers are indexed pairs");
            for member in idx.class_pairs(c) {
                assert!(
                    answer.binary_search(member).is_ok(),
                    "{text}: class of {p:?} not wholly contained"
                );
            }
        }
    }
}
