//! Social-network motif analysis — the paper's motivating workload
//! (Sec. I): triads, squares and cyclic patterns over a follows/visits
//! network, comparing the CPQ-aware index against index-free evaluation.
//!
//! Run with: `cargo run --release --example social_triads`

use cpqx::graph::generate::{random_graph, RandomGraphConfig};
use cpqx::index::CpqxIndex;
use cpqx::query::ast::Template;
use cpqx::query::eval::BfsEngine;
use cpqx::query::parse_cpq;
use std::time::Instant;

fn main() {
    // A power-law social network: 3 labels play follows / likes / visits.
    let cfg = RandomGraphConfig::social(5_000, 25_000, 3, 99);
    let g = random_graph(&cfg);
    println!(
        "social network: {} users, {} edges, {} relationship types",
        g.vertex_count(),
        g.edge_count(),
        g.base_label_count()
    );

    let t0 = Instant::now();
    let index = CpqxIndex::build(&g, 2);
    println!(
        "CPQx built in {:.2?}: {} classes / {} pairs (γ = {:.2})\n",
        t0.elapsed(),
        index.stats().classes,
        index.stats().pairs,
        index.stats().gamma
    );

    let queries = [
        ("triads (follower in a triangle)", "(l0 . l0) & l0^-1"),
        ("co-engagement squares", "(l0 . l1) & (l1 . l0)"),
        ("reciprocal pairs", "l0 & l0^-1"),
        ("friend-of-friend loops", "(l0 . l0) & id"),
        ("influence two-hop", "l0 . l0"),
    ];

    let bfs = BfsEngine;
    println!("{:<36} {:>10} {:>12} {:>12} {:>8}", "motif", "answers", "CPQx", "BFS", "speedup");
    for (name, text) in queries {
        let q = parse_cpq(text, &g).expect("valid query");

        let t0 = Instant::now();
        let via_index = index.evaluate(&g, &q);
        let t_index = t0.elapsed();

        let t0 = Instant::now();
        let via_bfs = bfs.evaluate(&g, &q);
        let t_bfs = t0.elapsed();

        assert_eq!(via_index, via_bfs, "engines disagree on {name}");
        let speedup = t_bfs.as_secs_f64() / t_index.as_secs_f64().max(1e-9);
        println!(
            "{:<36} {:>10} {:>12.2?} {:>12.2?} {:>7.1}x",
            name,
            via_index.len(),
            t_index,
            t_bfs,
            speedup
        );
    }

    // Template-driven exploration: run one instance of every Fig. 5 shape.
    println!("\nFig. 5 template instances (first labels):");
    let labels: Vec<_> = (0..7).map(|i| cpqx_graph::Label(i % 3).fwd()).collect();
    for t in Template::ALL {
        let q = t.instantiate(&labels[..t.arity()]);
        let n = index.evaluate(&g, &q).len();
        println!("  {:<4} diameter {} → {} answers", t.name(), q.diameter(), n);
    }
}
