//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Fig. 1 social graph `Gex`, constructs the CPQ-aware index
//! with k = 2, prints the CPQ-equivalence classes (the Fig. 3 partition),
//! and evaluates the introduction's triad query `ﬀ ∩ f⁻¹` — people and
//! their followers who sit in a follows-triangle.
//!
//! Run with: `cargo run --release --example quickstart`

use cpqx::graph::generate::gex;
use cpqx::index::CpqxIndex;
use cpqx::query::parse_cpq;
use cpqx_graph::LabelSeq;

fn main() {
    let g = gex();
    println!("Gex: {} vertices, {} base edges, labels {{f, v}}", g.vertex_count(), g.edge_count());

    // Construct CPQx with the paper's default k = 2.
    let index = CpqxIndex::build(&g, 2);
    let stats = index.stats();
    println!(
        "CPQx(k=2): {} classes over {} s-t pairs, γ = {:.2}, {} label sequences\n",
        stats.classes, stats.pairs, stats.gamma, stats.sequences
    );

    // Fig. 3 flavour: print each equivalence class with its shared
    // label-sequence set and members.
    println!("CPQ2-equivalence classes (c: L≤2-set — members):");
    let mut by_class: Vec<(u32, Vec<String>)> = Vec::new();
    for c in 0..stats.classes as u32 {
        let members: Vec<String> = index
            .class_pairs(c)
            .iter()
            .map(|p| format!("({},{})", g.vertex_name(p.src()), g.vertex_name(p.dst())))
            .collect();
        by_class.push((c, members));
    }
    for (c, members) in &by_class {
        let seqs: Vec<String> = index
            .class_sequences(*c)
            .iter()
            .map(|s| s.iter().map(|l| g.ext_label_name(l)).collect::<Vec<_>>().join("·"))
            .collect();
        let loop_mark = if index.class_is_loop(*c) { " (cyclic)" } else { "" };
        println!("  c={c:<3}{loop_mark} {{{}}} — {}", seqs.join(", "), members.join(" "));
    }

    // The introduction's query: conjunction of ﬀ and f⁻¹.
    let q = parse_cpq("(f . f) & f^-1", &g).expect("valid query");
    println!("\nEvaluating  (f ∘ f) ∩ f⁻¹ :");

    // Show the class-level pruning of Example 4.3.
    let f = g.label_named("f").unwrap();
    let ff = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
    let finv = LabelSeq::single(f.inv());
    println!("  Il2c(ﬀ)  = {:?}", index.lookup(&ff));
    println!("  Il2c(f⁻¹) = {:?}", index.lookup(&finv));

    let result = index.evaluate(&g, &q);
    println!("  answers:");
    for p in &result {
        println!("    ({}, {})", g.vertex_name(p.src()), g.vertex_name(p.dst()));
    }
    assert_eq!(result.len(), 3, "the triad has exactly three answers");
    println!("\nThe conjunction was computed by intersecting two class-id lists —");
    println!("no s-t pair was compared until the final expansion (Example 4.3).");
}
