//! Lazy index maintenance under a live update stream (Sec. IV-E).
//!
//! Streams edge insertions and deletions into a CPQx-indexed graph,
//! answering queries between updates; shows that (a) answers remain exactly
//! correct (checked against a freshly rebuilt index), (b) updates are
//! orders of magnitude cheaper than reconstruction, and (c) the index
//! fragments slowly (Table VII's ratio) until `rebuild` defragments it.
//!
//! Run with: `cargo run --release --example dynamic_maintenance`

use cpqx::graph::generate::{random_graph, sample_edges, RandomGraphConfig};
use cpqx::index::CpqxIndex;
use cpqx::query::parse_cpq;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let cfg = RandomGraphConfig::social(2_000, 10_000, 3, 5);
    let mut g = random_graph(&cfg);
    println!("graph: {} vertices, {} edges", g.vertex_count(), g.edge_count());

    let t0 = Instant::now();
    let mut index = CpqxIndex::build(&g, 2);
    let build_time = t0.elapsed();
    let fresh_size = index.size_bytes();
    println!(
        "CPQx built in {build_time:.2?} ({} classes, {:.1} KiB)\n",
        index.stats().classes,
        fresh_size as f64 / 1024.0
    );

    let watch = [
        ("triads", "(l0 . l0) & l0^-1"),
        ("mutual edges", "l0 & l0^-1"),
        ("two-hop cycles", "(l0 . l1) & id"),
    ];

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut update_total = std::time::Duration::ZERO;
    let mut updates = 0u32;
    for round in 1..=5 {
        // A burst of mixed updates: delete a few sampled edges, add a few
        // random ones.
        let victims = sample_edges(&g, 40, round as u64);
        let t0 = Instant::now();
        for (v, u, l) in victims {
            index.delete_edge(&mut g, v, u, l);
            updates += 1;
        }
        for _ in 0..40 {
            let v = rng.gen_range(0..g.vertex_count());
            let u = rng.gen_range(0..g.vertex_count());
            let l = cpqx_graph::Label(rng.gen_range(0..g.base_label_count()));
            if index.insert_edge(&mut g, v, u, l) {
                updates += 1;
            }
        }
        update_total += t0.elapsed();

        println!("after round {round} ({} edges live):", g.edge_count());
        for (name, text) in watch {
            let q = parse_cpq(text, &g).unwrap();
            let t0 = Instant::now();
            let lazy = index.evaluate(&g, &q);
            let dt = t0.elapsed();
            println!("  {:<14} {:>7} answers  {:>10.2?}", name, lazy.len(), dt);
        }
    }

    // Correctness audit: every watched query against a from-scratch index.
    let rebuilt = CpqxIndex::build(&g, 2);
    for (name, text) in watch {
        let q = parse_cpq(text, &g).unwrap();
        assert_eq!(index.evaluate(&g, &q), rebuilt.evaluate(&g, &q), "{name} diverged");
    }
    println!("\naudit: all answers identical to a freshly built index ✓");

    let frag = index.size_bytes() as f64 / rebuilt.size_bytes() as f64;
    println!(
        "{} updates in {:.2?} total ({:.1} µs/update; rebuild costs {:.2?})",
        updates,
        update_total,
        update_total.as_micros() as f64 / updates as f64,
        build_time
    );
    println!(
        "fragmentation: lazy index is {:.3}× the rebuilt size ({} vs {} class slots)",
        frag,
        index.class_slots(),
        rebuilt.class_slots()
    );

    let t0 = Instant::now();
    index.rebuild(&g);
    println!(
        "rebuild() defragmented in {:.2?} → {:.3}× ratio",
        t0.elapsed(),
        index.size_bytes() as f64 / rebuilt.size_bytes() as f64
    );
}
