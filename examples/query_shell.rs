//! Interactive CPQ shell over an edge-list graph.
//!
//! Reads a graph (edge-list path as the first argument, or the paper's
//! `Gex` by default), builds CPQx, then evaluates one CPQ per stdin line.
//!
//! ```text
//! cargo run --release --example query_shell [graph.tsv]
//! > (f . f) & f^-1
//! (sue, zoe)
//! (joe, sue)
//! (zoe, joe)
//! 3 answers in 12.3µs
//! ```
//!
//! Commands: `:classes` prints partition statistics, `:explain <cpq>`
//! shows the physical plan and execution counters, `:quit` exits.

use cpqx::graph::generate::gex;
use cpqx::graph::io::read_edge_list;
use cpqx::index::CpqxIndex;
use cpqx::query::parse_cpq;
use std::io::BufRead;

fn main() {
    let g = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            read_edge_list(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            })
        }
        None => gex(),
    };
    eprintln!(
        "loaded graph: {} vertices, {} edges, labels: {}",
        g.vertex_count(),
        g.edge_count(),
        g.labels().map(|l| g.label_name(l).to_string()).collect::<Vec<_>>().join(", ")
    );
    let index = CpqxIndex::build(&g, 2);
    let s = index.stats();
    eprintln!(
        "CPQx(k=2) ready: {} classes / {} pairs. Enter CPQs (`:quit` to exit).",
        s.classes, s.pairs
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        match line {
            "" => continue,
            ":quit" | ":q" => break,
            ":classes" => {
                let s = index.stats();
                eprintln!(
                    "classes={} pairs={} sequences={} γ={:.2} core={}B",
                    s.classes, s.pairs, s.sequences, s.gamma, s.core_bytes
                );
                continue;
            }
            _ if line.starts_with(":explain") => {
                let text = line.trim_start_matches(":explain").trim();
                match parse_cpq(text, &g) {
                    Err(e) => eprintln!("error: {e}"),
                    Ok(q) => {
                        let plan = index.plan(&q);
                        eprint!("{plan}");
                        let (result, stats) = index.explain(&g, &q);
                        eprintln!(
                            "{} answers; lookups={} classes={} pairs_materialized={} \
                             class_conj={} pair_intersect={} joins={}",
                            result.len(),
                            stats.lookups,
                            stats.classes_touched,
                            stats.pairs_materialized,
                            stats.class_conjunctions,
                            stats.pair_intersections,
                            stats.joins
                        );
                    }
                }
                continue;
            }
            _ => {}
        }
        match parse_cpq(line, &g) {
            Err(e) => eprintln!("error: {e}"),
            Ok(q) => {
                let t0 = std::time::Instant::now();
                let result = index.evaluate(&g, &q);
                let dt = t0.elapsed();
                for p in result.iter().take(20) {
                    println!("({}, {})", g.vertex_name(p.src()), g.vertex_name(p.dst()));
                }
                if result.len() > 20 {
                    println!("… and {} more", result.len() - 20);
                }
                eprintln!("{} answers in {dt:.2?} (diameter {})", result.len(), q.diameter());
            }
        }
    }
}
