//! Mixed CPQ + RPQ analytics over one CPQx index — the query-compilation
//! pipeline the paper's conclusion sketches ("queries expressed in
//! practical languages … can use our indexes as part of a physical
//! execution plan").
//!
//! CPQ answers the conjunctive/cyclic patterns; RPQ adds reachability
//! (Kleene star), both evaluated against the same index: RPQ
//! concatenation runs become the same `Il2c` lookups, and closures run as
//! semi-naive fixpoints over indexed relations.
//!
//! Run with: `cargo run --release --example reachability`

use cpqx::graph::generate::gmark;
use cpqx::index::CpqxIndex;
use cpqx::query::parse_cpq;
use cpqx::rpq::{eval_product, parse_rpq, IndexRpqEngine};
use std::time::Instant;

fn main() {
    let g = gmark(3_000, 11);
    println!("citation graph: {} vertices, {} edges", g.vertex_count(), g.edge_count());
    let t0 = Instant::now();
    let index = CpqxIndex::build(&g, 2);
    println!("CPQx(k=2) built in {:.2?}\n", t0.elapsed());

    // CPQ side: conjunctive patterns.
    println!("CPQ analytics:");
    for (name, text) in [
        ("mutual citation", "cites & cites^-1"),
        ("cites a co-located peer", "cites & (livesIn . livesIn^-1)"),
    ] {
        let q = parse_cpq(text, &g).unwrap();
        let t0 = Instant::now();
        let n = index.evaluate(&g, &q).len();
        println!("  {:<28} {:>8} answers {:>12.2?}", name, n, t0.elapsed());
    }

    // RPQ side: reachability patterns on the same index.
    println!("\nRPQ analytics (index-accelerated vs product-automaton):");
    let engine = IndexRpqEngine::new(&index);
    for (name, text) in [
        ("citation influence closure", "cites+"),
        ("academic lineage", "supervises+"),
        ("reaches a venue city", "cites* . publishesIn . heldIn"),
        ("any-relation reachability", "(cites | supervises)+"),
    ] {
        let r = parse_rpq(text, &g).unwrap();
        let t0 = Instant::now();
        let fast = engine.evaluate(&g, &r);
        let t_fast = t0.elapsed();
        let t0 = Instant::now();
        let slow = eval_product(&g, &r);
        let t_slow = t0.elapsed();
        assert_eq!(fast, slow, "engines disagree on {name}");
        println!(
            "  {:<28} {:>8} answers {:>12.2?} (automaton: {:.2?}, {:.1}x)",
            name,
            fast.len(),
            t_fast,
            t_slow,
            t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)
        );
    }
}
