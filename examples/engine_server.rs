//! Engine serving demo: concurrent clients, live maintenance, stats.
//!
//! Builds a mid-size social graph, constructs the CPQ-aware index with the
//! engine's *sharded parallel* builder, then drives it like a server:
//! several client threads issue a repeating CPQ workload (hitting the
//! canonical-query result cache) while a maintenance thread keeps
//! deleting and re-inserting edges — every change installs a fresh
//! snapshot without ever blocking the clients. Finishes with a batch
//! evaluation on one pinned snapshot and the engine's stats report.
//!
//! Run with: `cargo run --release --example engine_server`

use cpqx::engine::{BatchOptions, BuildOptions, Engine, EngineOptions};
use cpqx::graph::generate::{random_graph, sample_edges, RandomGraphConfig};
use cpqx::query::workload::{GraphProbe, WorkloadGen};
use cpqx::query::{Cpq, Template};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const RUN_FOR: Duration = Duration::from_millis(600);

fn main() {
    let g = random_graph(&RandomGraphConfig::social(2_000, 9_000, 4, 42));
    println!("graph: {} vertices, {} base edges", g.vertex_count(), g.edge_count());

    // A repeating workload of filtered template queries.
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 7);
    let workload: Vec<Cpq> =
        Template::ALL.iter().flat_map(|&t| gen.queries(t, 3, &probe)).collect();
    println!("workload: {} CPQs across {} templates", workload.len(), Template::ALL.len());

    // Sharded parallel build (at least two shards so the demo exercises
    // the merge path even on a single-core host).
    let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
    let t0 = Instant::now();
    let (engine, report) = Engine::with_options(
        g,
        EngineOptions {
            k: 2,
            build: BuildOptions { shards: Some(shards), threads: None },
            ..EngineOptions::default()
        },
    );
    let report = report.expect("full engine reports its build");
    println!(
        "build: {:?} total ({} shards: level1 {:?}, refine {:?}, merge {:?})",
        t0.elapsed(),
        report.shards,
        report.level1,
        report.refine,
        report.merge
    );
    let engine = Arc::new(engine);

    // Serve: CLIENTS reader threads + one maintenance thread.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let workload = &workload;
            scope.spawn(move || {
                let mut i = c; // stagger clients across the workload
                while !stop.load(Ordering::Relaxed) {
                    let answers = engine.query(&workload[i % workload.len()]);
                    std::hint::black_box(answers.len());
                    served.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        let maintenance = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                let mut updates = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = engine.snapshot();
                    for (v, u, l) in sample_edges(snap.graph(), 2, round) {
                        if engine.delete_edge(v, u, l) {
                            updates += 1;
                        }
                        if engine.insert_edge(v, u, l) {
                            updates += 1;
                        }
                    }
                    round += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                updates
            })
        };

        std::thread::sleep(RUN_FOR);
        stop.store(true, Ordering::Relaxed);
        let updates = maintenance.join().expect("maintenance thread panicked");
        println!(
            "served {} queries from {CLIENTS} clients while applying {updates} updates \
             ({} snapshot swaps, final epoch {})",
            served.load(Ordering::Relaxed),
            engine.stats().snapshot_swaps,
            engine.epoch()
        );
    });

    // One consistent batch over the final snapshot.
    let batch = engine.evaluate_batch(
        &workload,
        BatchOptions { threads: Some(CLIENTS), ..BatchOptions::default() },
    );
    println!(
        "batch: {} queries in {:?} on epoch {} → {:.0} qps (p50 {:?}, p99 {:?})",
        batch.results.len(),
        batch.total,
        batch.epoch,
        batch.throughput_qps(),
        batch.latency_quantile(0.5),
        batch.latency_quantile(0.99),
    );

    println!("stats: {}", engine.stats());
}
