//! Network serving demo: real TCP clients, live maintenance, stats.
//!
//! Builds a mid-size social graph, constructs the CPQ-aware index with
//! the engine's *sharded parallel* builder, and serves it over the wire
//! protocol: several client threads connect through [`cpqx::net::Client`]
//! and replay a CPQ workload (hitting the canonical-query result cache)
//! while a maintenance thread keeps deleting and re-inserting edges —
//! every change installs a fresh snapshot without ever blocking the
//! clients or closing a connection. Finishes with one consistent BATCH
//! frame, the server's STATS frame, and a graceful shutdown.
//!
//! The server core is event-driven: one epoll loop owns every socket,
//! workers only evaluate, so idle connections cost buffers instead of
//! threads. `--max-conns N` caps concurrently open connections (the
//! default is 10 000; over-cap connects are answered with a BUSY error
//! frame, visible in the final STATS line as rejected connections).
//!
//! Set `CPQX_NET_LISTEN` (e.g. `127.0.0.1:7777`) to keep the server in
//! the foreground for external clients (`net_client` connects with
//! `CPQX_NET_ADDR`) instead of running the self-contained demo.
//!
//! Pass `--data-dir <path>` to serve durably: on first boot the seed
//! graph is snapshotted there, every maintenance transaction is logged
//! to the write-ahead log, and a later boot with the same flag recovers
//! the persisted state (snapshot + WAL tail) instead of rebuilding —
//! the demo logs what recovery restored.
//!
//! Observability flags: `--slow-query-us N` arms the recorder's
//! slow-query threshold (every wire query slower than N microseconds is
//! captured with its parse/plan/eval span tree), and `--metrics-dump`
//! fetches the METRICS frame at the end of the run and prints the
//! Prometheus-style rendering plus any captured slow-query traces.
//!
//! Run with: `cargo run --release --example engine_server [-- --data-dir DIR]`

use cpqx::engine::{BuildOptions, Delta, Engine, EngineOptions};
use cpqx::graph::generate::{random_graph, sample_edges, RandomGraphConfig};
use cpqx::net::{render_prometheus, Client, Server, ServerOptions};
use cpqx::query::workload::{GraphProbe, WorkloadGen};
use cpqx::query::Template;
use cpqx::store::{durable_engine, StoreOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const RUN_FOR: Duration = Duration::from_millis(600);

/// The value following `--<name>` (or `--<name>=<value>`), if any.
fn flag_value(name: &str) -> Option<String> {
    let (bare, prefixed) = (format!("--{name}"), format!("--{name}="));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == bare {
            return Some(args.next().unwrap_or_else(|| panic!("{bare} requires a value")));
        }
        if let Some(value) = arg.strip_prefix(&prefixed) {
            return Some(value.to_string());
        }
    }
    None
}

/// True when the bare `--<name>` flag is present.
fn has_flag(name: &str) -> bool {
    let bare = format!("--{name}");
    std::env::args().skip(1).any(|arg| arg == bare)
}

fn main() {
    let seed = || random_graph(&RandomGraphConfig::social(2_000, 9_000, 4, 42));
    // Sharded parallel build (at least two shards so the demo exercises
    // the merge path even on a single-core host).
    let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
    let options = EngineOptions {
        k: 2,
        build: BuildOptions { shards: Some(shards), threads: None },
        ..EngineOptions::default()
    };

    let engine = if let Some(dir) = flag_value("data-dir") {
        let t0 = Instant::now();
        let start =
            durable_engine(&dir, StoreOptions::default(), options, seed).expect("durable start");
        match &start.recovered {
            Some(r) => println!(
                "recovered {dir} in {:?}: generation {}, {} WAL transactions replayed \
                 ({} torn bytes dropped), {} vertices / {} base edges at epoch {}",
                t0.elapsed(),
                r.generation,
                r.replayed_transactions,
                r.dropped_wal_bytes,
                r.vertex_count,
                r.edge_count,
                start.engine.epoch(),
            ),
            None => println!(
                "fresh durable start in {dir}: seed graph built and snapshotted in {:?}",
                t0.elapsed()
            ),
        }
        Arc::new(start.engine)
    } else {
        let t0 = Instant::now();
        let (engine, report) = Engine::with_options(seed(), options);
        println!(
            "build: {:?} total ({} shards: level1 {:?} (parallel {:?}), refine {:?}, merge {:?})",
            t0.elapsed(),
            report.shards,
            report.level1,
            report.level1_parallel,
            report.refine,
            report.merge
        );
        Arc::new(engine)
    };

    if let Some(us) = flag_value("slow-query-us") {
        let us: u64 = us.parse().expect("--slow-query-us expects microseconds");
        engine.obs().set_slow_threshold(Some(Duration::from_micros(us)));
        println!("slow-query capture armed at {us}us");
    }

    // A repeating workload of filtered template queries against the
    // *served* graph (recovered or fresh), rendered to the wire text
    // syntax.
    let snap = engine.snapshot();
    let g = snap.graph();
    println!("graph: {} vertices, {} base edges", g.vertex_count(), g.edge_count());
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, 7);
    let workload: Vec<String> = Template::ALL
        .iter()
        .flat_map(|&t| gen.queries(t, 3, &probe))
        .map(|q| q.to_text(g))
        .collect();
    drop(snap);
    println!("workload: {} CPQs across {} templates", workload.len(), Template::ALL.len());

    // Put it on the wire (event-driven core: one epoll loop, a small
    // evaluation pool, BUSY rejections past the connection cap).
    let listen = std::env::var("CPQX_NET_LISTEN").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let mut server_opts = ServerOptions::default();
    if let Some(cap) = flag_value("max-conns") {
        server_opts.max_connections = cap.parse().expect("--max-conns expects a count");
        println!("connection cap: {}", server_opts.max_connections);
    }
    let server =
        Server::bind(Arc::clone(&engine), &*listen, server_opts).expect("bind TCP listener");
    let addr = server.local_addr();
    println!("serving on {addr} (protocol v{})", cpqx::net::PROTOCOL_VERSION);
    if std::env::var("CPQX_NET_LISTEN").is_ok() {
        println!("foreground mode: press Ctrl-C to stop");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // Serve: CLIENTS TCP clients + one in-process maintenance thread.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let stop = Arc::clone(&stop);
                let workload = &workload;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut served = 0u64;
                    let mut i = c; // stagger clients across the workload
                    while !stop.load(Ordering::Relaxed) {
                        let reply =
                            client.query(&workload[i % workload.len()]).expect("wire query");
                        std::hint::black_box(reply.pairs.len());
                        served += 1;
                        i += 1;
                    }
                    served
                })
            })
            .collect();

        let maintenance = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                let mut updates = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Typed delta transactions: one snapshot install per
                    // round, and — when serving with `--data-dir` — one
                    // WAL record each, so a crash replays them on boot.
                    let snap = engine.snapshot();
                    let mut delta = Delta::new();
                    for (v, u, l) in sample_edges(snap.graph(), 2, round) {
                        delta = delta.delete_edge(v, u, l).insert_edge(v, u, l);
                    }
                    drop(snap);
                    if !delta.is_empty() {
                        updates +=
                            engine.apply_delta(&delta).expect("sampled edges are valid").applied
                                as u64;
                    }
                    round += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                updates
            })
        };

        std::thread::sleep(RUN_FOR);
        stop.store(true, Ordering::Relaxed);
        let served: u64 = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
        let updates = maintenance.join().expect("maintenance thread panicked");
        println!(
            "served {served} queries to {CLIENTS} TCP clients while applying {updates} updates \
             ({} snapshot swaps, final epoch {})",
            engine.stats().snapshot_swaps,
            engine.epoch()
        );
    });

    // One consistent batch over the wire, then the server's own stats.
    let mut client = Client::connect(addr).expect("batch client connects");
    let t0 = Instant::now();
    let batch = client.batch(&workload).expect("wire batch");
    println!(
        "batch: {} queries in {:?} on epoch {} ({} total pairs)",
        batch.results.len(),
        t0.elapsed(),
        batch.epoch,
        batch.results.iter().map(Vec::len).sum::<usize>(),
    );

    let stats = client.stats().expect("wire stats");
    println!(
        "stats: epoch={} queries={} hit_rate={:.1}% swaps={} p50={}us p99={}us \
         requests[query={} batch={} stats={}] connections={} \
         wal[appends={} bytes={}] snapshots[written={} chunks skipped={}]",
        stats.epoch,
        stats.queries,
        stats.result_hit_rate() * 100.0,
        stats.snapshot_swaps,
        stats.p50_us,
        stats.p99_us,
        stats.query_requests,
        stats.batch_requests,
        stats.stats_requests,
        stats.connections,
        stats.wal_appends,
        stats.wal_bytes,
        stats.snapshots_written,
        stats.snapshot_chunks_skipped,
    );
    if has_flag("metrics-dump") {
        let m = client.metrics().expect("wire metrics");
        println!("\n--- metrics dump (METRICS frame, Prometheus rendering) ---");
        print!("{}", render_prometheus(&m));
        if m.slow.is_empty() {
            println!("--- no slow queries captured ---");
        } else {
            println!("--- {} slow queries captured, newest last ---", m.slow_total);
            for trace in &m.slow {
                println!("{}", trace.render());
            }
        }
    }
    drop(client);
    server.shutdown();
    println!("server shut down cleanly");
}
