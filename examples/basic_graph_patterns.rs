//! CQ (basic graph pattern) evaluation — the language CPQ sits inside.
//!
//! CPQ covers all conjunctive patterns of treewidth ≤ 2 (Sec. II); richer
//! shapes, or projections onto variables that are not chain endpoints, run
//! through the CQ front-end over the homomorphic matching engines.
//!
//! Run with: `cargo run --release --example basic_graph_patterns`

use cpqx::graph::generate::gmark;
use cpqx::matcher::cq::parse_cq;
use cpqx::matcher::{TensorEngine, TurboEngine};
use std::time::Instant;

fn main() {
    let g = gmark(2_000, 23);
    println!("citation graph: {} vertices, {} edges\n", g.vertex_count(), g.edge_count());

    let queries = [
        (
            "co-citing peers (leaf projection)",
            // Two researchers citing the same paper; the projection pair
            // are the two *sources* — not the endpoints of any chain.
            "?a ?b : ?a cites ?p ; ?b cites ?p",
        ),
        (
            "same-venue colleagues in one city",
            "?x ?y : ?x publishesIn ?v ; ?y publishesIn ?v ; ?x livesIn ?c ; ?y livesIn ?c",
        ),
        (
            "student citing the supervisor's venue peers",
            "?s ?t : ?a supervises ?s ; ?a publishesIn ?v ; ?t publishesIn ?v ; ?s cites ?t",
        ),
    ];

    for (name, text) in queries {
        let cq = parse_cq(text, &g).expect("valid CQ");
        let t0 = Instant::now();
        let via_turbo = cq.evaluate_turbo(&g);
        let t_turbo = t0.elapsed();
        let t0 = Instant::now();
        let via_tensor = cq.evaluate_tensor(&g);
        let t_tensor = t0.elapsed();
        assert_eq!(via_turbo, via_tensor, "engines disagree on {name}");
        println!(
            "{name}\n  {} vars, {} patterns → {} answers  (backtracking {:.2?}, WCOJ {:.2?})\n",
            cq.var_count(),
            cq.triple_count(),
            via_turbo.len(),
            t_turbo,
            t_tensor
        );
    }

    // The engines are the same ones the CPQ benchmarks use — TurboEngine
    // and TensorEngine — so CQ and CPQ workloads share one substrate.
    let _ = (TurboEngine, TensorEngine);
}
