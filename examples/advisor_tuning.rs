//! Workload-adaptive index tuning — the paper's second future-work item
//! ("adaptively controls interests and k") in action.
//!
//! A query log is replayed into the [`WorkloadAdvisor`]; it recommends the
//! path-length parameter k and an interest set under a pair-volume budget.
//! The tuned iaCPQx is then compared against (a) an untuned iaCPQx that
//! indexes only single labels and (b) the full CPQx, on the observed
//! workload.
//!
//! Run with: `cargo run --release --example advisor_tuning`

use cpqx::graph::generate::{random_graph, RandomGraphConfig};
use cpqx::index::CpqxIndex;
use cpqx::query::ast::Template;
use cpqx::query::workload::{GraphProbe, WorkloadGen};
use cpqx_core::advisor::{AdvisorConfig, WorkloadAdvisor};
use std::time::Instant;

fn main() {
    let g = random_graph(&RandomGraphConfig::social(4_000, 20_000, 4, 31));
    println!("graph: {} vertices, {} edges", g.vertex_count(), g.edge_count());

    // Simulated production query log: conjunction-heavy analytics.
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 7);
    let mut log = Vec::new();
    for t in [Template::T, Template::S, Template::TT, Template::TC, Template::Ti, Template::C2i] {
        log.extend(gen.queries(t, 8, &probe));
    }
    println!("observed query log: {} queries\n", log.len());

    // Feed the advisor, then validate its k candidates empirically — the
    // right k is workload-dependent and non-monotonic (the paper's Fig. 14
    // shows k past the sweet spot *hurting*), so the advisor proposes and
    // measurement decides.
    let mut advisor = WorkloadAdvisor::new();
    for q in &log {
        advisor.observe(q, 4);
    }

    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>14}",
        "candidate", "interests", "build", "size", "workload time"
    );
    let mut candidates: Vec<(usize, std::time::Duration, CpqxIndex)> = Vec::new();
    for max_k in 2..=4usize {
        let cfg = AdvisorConfig { max_k, max_interests: 32, pair_budget: Some(2_000_000) };
        let (k, interests) = advisor.recommend(&g, &cfg);
        if candidates.iter().any(|(ck, _, _)| *ck == k) {
            continue; // a smaller max_k already produced this recommendation
        }
        let t0 = Instant::now();
        let idx = CpqxIndex::build_interest_aware(&g, k, interests.iter().copied());
        let build = t0.elapsed();
        let t0 = Instant::now();
        for q in &log {
            std::hint::black_box(idx.evaluate(&g, q).len());
        }
        let run = t0.elapsed();
        println!(
            "{:<24} {:>10} {:>12.2?} {:>11.1}K {:>14.2?}",
            format!("tuned iaCPQx (k={k})"),
            interests.len(),
            build,
            idx.size_bytes() as f64 / 1024.0,
            run
        );
        candidates.push((k, run, idx));
    }
    // Baselines: interests off, and the full CPQ-aware index.
    let t0 = Instant::now();
    let untuned = CpqxIndex::build_interest_aware(&g, 2, std::iter::empty());
    let untuned_build = t0.elapsed();
    let t0 = Instant::now();
    let full = CpqxIndex::build(&g, 2);
    let full_build = t0.elapsed();
    for (name, idx, build) in
        [("untuned iaCPQx (k=2)", &untuned, untuned_build), ("full CPQx (k=2)", &full, full_build)]
    {
        let t0 = Instant::now();
        for q in &log {
            std::hint::black_box(idx.evaluate(&g, q).len());
        }
        println!(
            "{:<24} {:>10} {:>12.2?} {:>11.1}K {:>14.2?}",
            name,
            "-",
            build,
            idx.size_bytes() as f64 / 1024.0,
            t0.elapsed()
        );
    }

    let best = candidates.iter().min_by_key(|(_, run, _)| *run).unwrap();
    println!("\nempirically best candidate: k = {} ({:.2?} for the workload)", best.0, best.1);

    // Sanity: every index agrees on every logged query.
    for q in &log {
        let expected = full.evaluate(&g, q);
        assert_eq!(untuned.evaluate(&g, q), expected);
        for (_, _, idx) in &candidates {
            assert_eq!(idx.evaluate(&g, q), expected);
        }
    }
    println!("all indexes agree on the full workload ✓");
}
