//! Wire-protocol client demo.
//!
//! By default this starts an in-process server over a mid-size social
//! graph on an ephemeral loopback port and talks to it; point
//! `CPQX_NET_ADDR` at a running server (e.g. the `engine_server`
//! example) to use that instead. Shows the full request surface: PING,
//! QUERY (including a typed parse-error frame), BATCH, UPDATE, an
//! atomic multi-op DELTA transaction with per-op outcomes, and STATS.
//!
//! Run with: `cargo run --release --example net_client`

use cpqx::engine::{Engine, EngineOptions};
use cpqx::graph::generate::{random_graph, sample_edges, RandomGraphConfig};
use cpqx::net::{Client, ClientError, Server, ServerOptions};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server to talk to: external via CPQX_NET_ADDR, or in-process.
    let external = std::env::var("CPQX_NET_ADDR").ok();
    let local = if external.is_none() {
        let g = random_graph(&RandomGraphConfig::social(1_000, 5_000, 4, 9));
        println!("serving {} vertices / {} edges in-process", g.vertex_count(), g.edge_count());
        let (engine, _) = Engine::with_options(g, EngineOptions { k: 2, ..Default::default() });
        Some(Server::bind(Arc::new(engine), "127.0.0.1:0", ServerOptions::default())?)
    } else {
        None
    };
    let addr = match (&external, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        _ => unreachable!(),
    };

    println!("connecting to {addr}");
    let mut client = Client::connect(&*addr)?;
    client.ping()?;
    println!("ping: ok (protocol v{})", cpqx::net::PROTOCOL_VERSION);

    // One query, twice: the second serve hits the result cache.
    let q = "(l0 . l0) & l0^-1";
    for round in ["cold", "warm"] {
        let t0 = std::time::Instant::now();
        match client.query(q) {
            Ok(reply) => println!(
                "query {q:?} ({round}): {} pairs on epoch {} in {:?}",
                reply.pairs.len(),
                reply.epoch,
                t0.elapsed()
            ),
            Err(ClientError::Server(e)) => {
                // An external server may not have a label `l0`; show the
                // typed error and stop gracefully.
                println!("query {q:?}: server error frame: {e}");
                return Ok(());
            }
            Err(other) => return Err(other.into()),
        }
    }

    // A malformed query comes back as a typed error frame, and the
    // connection survives it.
    match client.query("(l0 . l0") {
        Err(ClientError::Server(e)) => println!("malformed query -> {e}"),
        other => println!("unexpected outcome for malformed query: {other:?}"),
    }

    // A consistent batch: every answer reflects one snapshot.
    let batch = client.batch(&["l0", "l0 . l1", "l1^-1 . l0", "(l0 . l1) & l2"])?;
    let sizes: Vec<usize> = batch.results.iter().map(Vec::len).collect();
    println!("batch of {} queries on epoch {}: answer sizes {sizes:?}", sizes.len(), batch.epoch);

    // An update through the wire (only against the in-process server,
    // where we know a deletable edge exists).
    if let Some(server) = &local {
        let snap = server.engine().snapshot();
        let (v, u, l) = sample_edges(snap.graph(), 1, 3)[0];
        let name = snap.graph().label_name(l).to_string();
        let ack = client.delete_edge(v, u, &name)?;
        println!("delete ({v})-[{name}]->({u}): applied={} epoch={}", ack.applied, ack.epoch);
        let ack = client.insert_edge(v, u, &name)?;
        println!("insert ({v})-[{name}]->({u}): applied={} epoch={}", ack.applied, ack.epoch);

        // A typed delta: one atomic transaction, one snapshot install,
        // per-op outcomes — including the id of a vertex added and wired
        // up within the same delta. Predicting the id from the snapshot
        // is safe here because this demo is the sole writer; concurrent
        // writers must use the id from the ack instead (see PROTOCOL.md).
        use cpqx::net::WireOp;
        let fresh_id = snap.graph().vertex_count();
        let ack = client.apply_delta(vec![
            WireOp::AddVertex { name: "delta-demo".into() },
            WireOp::InsertEdge { src: fresh_id, dst: v, label: name.clone() },
            WireOp::DeleteEdge { src: fresh_id, dst: v, label: name.clone() },
            WireOp::DeleteEdge { src: fresh_id, dst: v, label: name.clone() }, // noop
        ])?;
        println!(
            "delta of 4 ops: epoch={} rebuilt={} outcomes={:?}",
            ack.epoch, ack.rebuilt, ack.outcomes
        );
    }

    let stats = client.stats()?;
    println!(
        "stats: epoch={} queries={} hit_rate={:.1}% p50={}us p99={}us \
         requests[ping={} query={} batch={} update={} delta={} stats={}] errors={} \
         maint[deltas={} lazy_ops={} rebuilds={} frag={:.2}x]",
        stats.epoch,
        stats.queries,
        stats.result_hit_rate() * 100.0,
        stats.p50_us,
        stats.p99_us,
        stats.ping_requests,
        stats.query_requests,
        stats.batch_requests,
        stats.update_requests,
        stats.delta_requests,
        stats.stats_requests,
        stats.error_responses,
        stats.delta_transactions,
        stats.lazy_update_ops,
        stats.rebuilds,
        stats.fragmentation_ratio(),
    );

    if let Some(server) = local {
        server.shutdown();
        println!("server shut down cleanly");
    }
    Ok(())
}
