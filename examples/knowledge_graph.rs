//! Interest-aware indexing on a knowledge graph — the paper's iaCPQx
//! scenario (Sec. V): analysts query a citation knowledge graph with a
//! stable set of navigation patterns, so the index only materializes
//! classes for those interests (plus all single labels) and stays small.
//!
//! Uses the gMark citation schema and the paper's five synthetic interests:
//! cites·cites, cites·supervises, publishesIn·heldIn, worksIn·heldIn⁻¹,
//! livesIn·worksIn⁻¹.
//!
//! Run with: `cargo run --release --example knowledge_graph`

use cpqx::graph::generate::gmark;
use cpqx::index::CpqxIndex;
use cpqx::query::benchqueries::lubm_queries;
use cpqx::query::parse_cpq;
use cpqx_graph::LabelSeq;
use std::time::Instant;

fn main() {
    let g = gmark(4_000, 7);
    println!(
        "citation graph: {} vertices, {} edges, schema {:?}",
        g.vertex_count(),
        g.edge_count(),
        cpqx::graph::generate::GMARK_LABELS
    );

    // The paper's five interests on the synthetic datasets (Sec. VI).
    let l = |name: &str| g.label_named(name).unwrap();
    let interests = [
        LabelSeq::from_slice(&[l("cites").fwd(), l("cites").fwd()]),
        LabelSeq::from_slice(&[l("cites").fwd(), l("supervises").fwd()]),
        LabelSeq::from_slice(&[l("publishesIn").fwd(), l("heldIn").fwd()]),
        LabelSeq::from_slice(&[l("worksIn").fwd(), l("heldIn").inv()]),
        LabelSeq::from_slice(&[l("livesIn").fwd(), l("worksIn").inv()]),
    ];

    let t0 = Instant::now();
    let index = CpqxIndex::build_interest_aware(&g, 2, interests.iter().copied());
    let build_time = t0.elapsed();
    let stats = index.stats();
    println!(
        "iaCPQx built in {build_time:.2?}: {} classes / {} pairs / {:.1} KiB\n",
        stats.classes,
        stats.pairs,
        stats.core_bytes as f64 / 1024.0
    );

    // Interest-aligned analytics.
    let analytics = [
        ("co-citation squares", "(cites . cites) & (cites . cites)"),
        ("supervisor also cited", "(cites . supervises) & cites"),
        ("colocated collaborators", "(worksIn . heldIn^-1) & (livesIn . worksIn^-1)"),
        ("venue in home town", "(publishesIn . heldIn) & livesIn"),
        ("mutual citation", "cites & cites^-1"),
    ];
    println!("{:<28} {:>9} {:>12}", "analytic", "answers", "time");
    for (name, text) in analytics {
        let q = parse_cpq(text, &g).expect("valid query");
        let t0 = Instant::now();
        let result = index.evaluate(&g, &q);
        println!("{:<28} {:>9} {:>12.2?}", name, result.len(), t0.elapsed());
    }

    // Off-interest queries still work — the planner splits them.
    let q = parse_cpq("supervises . supervises . cites", &g).unwrap();
    let t0 = Instant::now();
    let n = index.evaluate(&g, &q).len();
    println!("\noff-interest chain (split lookups): {n} answers in {:.2?}", t0.elapsed());

    // Evolving workloads: register a new interest online (Sec. V-C).
    let new_interest = LabelSeq::from_slice(&[l("supervises").fwd(), l("supervises").fwd()]);
    let t0 = Instant::now();
    index_insert_demo(index, &g, new_interest);
    let _ = t0;

    // Benchmark-style workload (Fig. 10's LUBM translation).
    println!("\nLUBM-style benchmark queries:");
    let fresh = CpqxIndex::build_interest_aware(&g, 2, interests.iter().copied());
    for nq in lubm_queries(&g, 3) {
        let t0 = Instant::now();
        let n = fresh.evaluate(&g, &nq.query).len();
        println!("  {:<3} {:>8} answers {:>12.2?}", nq.name, n, t0.elapsed());
    }
}

fn index_insert_demo(mut index: CpqxIndex, g: &cpqx::graph::Graph, seq: LabelSeq) {
    let t0 = Instant::now();
    let added = index.insert_interest(g, seq);
    println!(
        "\nregistered new interest supervises·supervises: {} (in {:.2?}, index now {:.1} KiB)",
        added,
        t0.elapsed(),
        index.stats().core_bytes as f64 / 1024.0
    );
    let q = cpqx::query::Cpq::ext(seq.get(0)).join(cpqx::query::Cpq::ext(seq.get(1)));
    let t0 = Instant::now();
    let n = index.evaluate(g, &q).len();
    println!("single-lookup evaluation of the new pattern: {n} answers in {:.2?}", t0.elapsed());
}
