//! `cpqx` — a Rust reproduction of *Language-aware Indexing for Conjunctive
//! Path Queries* (Sasaki, Fletcher, Onizuka; ICDE 2022).
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`graph`] — directed edge-labeled graphs, generators, dataset stand-ins,
//! * [`query`] — the CPQ language: AST, parser, planner, canonicalizer,
//!   evaluators, workloads,
//! * [`index`] — CPQx and iaCPQx, the paper's CPQ-aware path indexes,
//! * [`engine`] — sharded parallel index construction and the concurrent
//!   serving layer (snapshots, caches, batch evaluation),
//! * [`net`] — the network front-end: a versioned binary wire protocol, a
//!   threaded TCP server over the engine, and a blocking client,
//! * [`store`] — the opt-in durability layer: an append-only WAL of typed
//!   delta transactions, chunk-granular incremental snapshots, and
//!   crash recovery into a fresh engine (spec in `STORAGE.md`),
//! * [`obs`] — the observability layer: sampled per-query traces,
//!   mergeable log-bucketed latency histograms, the slow-query ring, and
//!   the observed-workload table exposed over the wire via METRICS,
//! * [`pathindex`] — the language-unaware Path/iaPath baseline (EDBT 2016),
//! * [`matcher`] — homomorphic subgraph-matching baselines (TurboHom++- and
//!   Tentris-style engines).
//!
//! # Quickstart
//!
//! ```
//! use cpqx::graph::generate::gex;
//! use cpqx::index::CpqxIndex;
//! use cpqx::query::parse_cpq;
//!
//! // The paper's running example: people and their followers in a triad.
//! let g = gex();
//! let index = CpqxIndex::build(&g, 2);
//! let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
//! let result = index.evaluate(&g, &q);
//! assert_eq!(result.len(), 3); // (sue,zoe), (joe,sue), (zoe,joe)
//! ```
//!
//! # Serving
//!
//! For anything beyond one-shot evaluation, wrap the graph in an
//! [`engine::Engine`]: it builds the index in parallel, serves queries
//! through plan/result caches, and applies maintenance by atomically
//! swapping snapshots so readers are never blocked.
//!
//! ```
//! use cpqx::engine::Engine;
//! use cpqx::graph::generate::gex;
//! use cpqx::query::parse_cpq;
//!
//! let engine = Engine::build(gex(), 2);
//! let snap = engine.snapshot();
//! let q = parse_cpq("(f . f) & f^-1", snap.graph()).unwrap();
//! assert_eq!(engine.query(&q).len(), 3); // executes
//! assert_eq!(engine.query(&q).len(), 3); // served from the result cache
//! ```
//!
//! # Network serving
//!
//! The [`net`] module puts the engine on the wire: a versioned binary
//! protocol (spec in `PROTOCOL.md`), a threaded TCP server that stays
//! available during maintenance, and a blocking client.
//!
//! ```
//! use cpqx::engine::Engine;
//! use cpqx::graph::generate::gex;
//! use cpqx::net::{Client, Server, ServerOptions};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::build(gex(), 2));
//! let server = Server::bind(engine, "127.0.0.1:0", ServerOptions::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! assert_eq!(client.query("(f . f) & f^-1")?.pairs.len(), 3);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use cpqx_core as index;
pub use cpqx_engine as engine;
pub use cpqx_graph as graph;
pub use cpqx_matcher as matcher;
pub use cpqx_net as net;
pub use cpqx_obs as obs;
pub use cpqx_pathindex as pathindex;
pub use cpqx_query as query;
pub use cpqx_rpq as rpq;
pub use cpqx_store as store;
