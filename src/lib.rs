//! `cpqx` — a Rust reproduction of *Language-aware Indexing for Conjunctive
//! Path Queries* (Sasaki, Fletcher, Onizuka; ICDE 2022).
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`graph`] — directed edge-labeled graphs, generators, dataset stand-ins,
//! * [`query`] — the CPQ language: AST, parser, planner, evaluators, workloads,
//! * [`index`] — CPQx and iaCPQx, the paper's CPQ-aware path indexes,
//! * [`pathindex`] — the language-unaware Path/iaPath baseline (EDBT 2016),
//! * [`matcher`] — homomorphic subgraph-matching baselines (TurboHom++- and
//!   Tentris-style engines).
//!
//! # Quickstart
//!
//! ```
//! use cpqx::graph::generate::gex;
//! use cpqx::index::CpqxIndex;
//! use cpqx::query::parse_cpq;
//!
//! // The paper's running example: people and their followers in a triad.
//! let g = gex();
//! let index = CpqxIndex::build(&g, 2);
//! let f = g.label_named("f").unwrap();
//! let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
//! let result = index.evaluate(&g, &q);
//! assert_eq!(result.len(), 3); // (sue,zoe), (joe,sue), (zoe,joe)
//! let _ = f;
//! ```

#![warn(missing_docs)]

pub use cpqx_core as index;
pub use cpqx_graph as graph;
pub use cpqx_matcher as matcher;
pub use cpqx_pathindex as pathindex;
pub use cpqx_query as query;
pub use cpqx_rpq as rpq;
