//! Crash-consistency differential harness.
//!
//! A durable engine commits a stream of random delta transactions, and
//! the harness then simulates a crash at **every** WAL record boundary
//! — plus mid-record, plus a flipped byte — by truncating/corrupting
//! the log and running read-only recovery ([`recover_state`]) on the
//! result. The recovered state must answer a query workload identically
//! to an in-memory reference engine that applied exactly the committed
//! prefix of transactions: nothing more (no torn tail leaks in),
//! nothing less (no committed transaction is lost).
//!
//! All randomness is seeded, so failures replay deterministically.

use cpqx_core::CpqxIndex;
use cpqx_engine::{Delta, DeltaOp, Engine, EngineOptions};
use cpqx_graph::{generate, Graph, Label};
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{Cpq, Template};
use cpqx_store::{durable_engine, recover_state, FsyncPolicy, StoreOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpqx-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seed_graph(seed: u64) -> Graph {
    generate::random_graph(&generate::RandomGraphConfig::social(50, 200, 3, seed))
}

fn engine_options() -> EngineOptions {
    EngineOptions { k: 2, ..EngineOptions::default() }
}

fn workload(g: &Graph, seed: u64) -> Vec<Cpq> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, seed);
    Template::ALL.iter().flat_map(|&t| gen.queries(t, 2, &probe)).collect()
}

/// One random, always-valid transaction against the current graph
/// shape. `vertices` tracks growth across the sequence so later
/// transactions may reference vertices earlier ones added. The first op
/// is always an `AddVertex` — a guaranteed state change — because the
/// engine skips the WAL append for all-no-op transactions and the
/// harness counts one record per transaction.
fn random_delta(rng: &mut StdRng, vertices: &mut u32, labels: u16, txn: usize) -> Delta {
    let n = rng.gen_range(2usize..6);
    let mut ops = Vec::with_capacity(n);
    *vertices += 1;
    ops.push(DeltaOp::AddVertex { name: format!("t{txn}-anchor") });
    for i in 1..n {
        let src = rng.gen_range(0..*vertices);
        let dst = rng.gen_range(0..*vertices);
        let label = Label(rng.gen_range(0..labels));
        ops.push(match rng.gen_range(0u32..12) {
            0..=4 => DeltaOp::InsertEdge { src, dst, label },
            5..=7 => DeltaOp::DeleteEdge { src, dst, label },
            8 => DeltaOp::ChangeEdgeLabel {
                src,
                dst,
                from: label,
                to: Label((label.0 + 1) % labels),
            },
            9 => {
                *vertices += 1;
                DeltaOp::AddVertex { name: format!("t{txn}-v{i}") }
            }
            10 => DeltaOp::DeleteVertex { vertex: src },
            // A no-op on full-CPQx engines, but it still travels the
            // WAL, so replay must tolerate it.
            _ => DeltaOp::InsertInterest {
                seq: cpqx_graph::LabelSeq::from_slice(&[label.fwd(), label.inv()]),
            },
        });
    }
    Delta::from(ops)
}

/// Asserts a recovered `(graph, index)` is indistinguishable from the
/// reference engine: same shape, same names, same answers.
fn assert_equivalent(graph: &Graph, index: &CpqxIndex, reference: &Engine, queries: &[Cpq]) {
    let snap = reference.snapshot();
    assert_eq!(graph.vertex_count(), snap.graph().vertex_count());
    assert_eq!(graph.edge_count(), snap.graph().edge_count());
    for v in 0..graph.vertex_count() {
        assert_eq!(graph.vertex_name(v), snap.graph().vertex_name(v), "name of vertex {v}");
    }
    for q in queries {
        assert_eq!(&index.evaluate(graph, q), &*reference.query(q), "diverged for {q:?}");
    }
}

/// The core harness: `TXNS` committed transactions, then a simulated
/// kill at every record boundary and inside every record.
#[test]
fn recovery_matches_committed_prefix_at_every_kill_point() {
    const TXNS: usize = 12;
    let dir = tmp("boundaries");
    let g0 = seed_graph(7);
    let labels = g0.base_label_count();
    let queries = workload(&g0, 0x5eed);
    assert!(queries.len() >= 8, "workload too small to be meaningful");

    // Commit the stream through a durable engine. Fsync policy does not
    // matter for simulated kills (we truncate files, not power): Never
    // keeps the test fast.
    let mut rng = StdRng::seed_from_u64(42);
    let mut vertices = g0.vertex_count();
    let mut deltas = Vec::with_capacity(TXNS);
    let mut boundaries = Vec::with_capacity(TXNS);
    let wal_path = dir.join("wal-1.log");
    {
        let start = durable_engine(
            &dir,
            StoreOptions { fsync: FsyncPolicy::Never },
            engine_options(),
            || g0.clone(),
        )
        .expect("fresh start");
        assert!(start.recovered.is_none());
        for txn in 0..TXNS {
            let delta = random_delta(&mut rng, &mut vertices, labels, txn);
            start.engine.apply_delta(&delta).expect("generated deltas are valid");
            deltas.push(delta);
            boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
        }
    }
    let full = std::fs::read(&wal_path).unwrap();
    assert_eq!(*boundaries.last().unwrap(), full.len() as u64);

    // Kill points, ascending so the reference engine advances in step:
    // each boundary, plus cuts 5 bytes into the following record and 1
    // byte before its end (both recover to the same boundary's prefix).
    let mut kill_points = vec![(0u64, 0usize)];
    for (i, &b) in boundaries.iter().enumerate() {
        let prev = if i == 0 { 0 } else { boundaries[i - 1] };
        for cut in [prev + 5, b - 1] {
            if cut > prev && cut < b {
                kill_points.push((cut, i));
            }
        }
        kill_points.push((b, i + 1));
    }
    kill_points.sort_unstable();
    kill_points.dedup();

    let (reference, _) = Engine::with_options(g0.clone(), engine_options());
    let mut applied = 0usize;
    for (cut, committed) in kill_points {
        while applied < committed {
            reference.apply_delta(&deltas[applied]).unwrap();
            applied += 1;
        }
        std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
        let (graph, index, info) = recover_state(&dir)
            .expect("recovery after a torn tail must succeed")
            .expect("the store exists");
        assert_eq!(
            info.replayed_transactions, committed as u64,
            "kill at byte {cut} must recover exactly the committed prefix"
        );
        assert_eq!(
            info.dropped_wal_bytes,
            cut - boundaries.get(committed.wrapping_sub(1)).copied().unwrap_or(0)
        );
        assert_equivalent(&graph, &index, &reference, &queries);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte mid-log is indistinguishable from a torn tail:
/// recovery serves the prefix before the corrupt record and drops the
/// rest, never erroring and never serving corrupt data.
#[test]
fn recovery_drops_suffix_after_bitflip() {
    const TXNS: usize = 8;
    let dir = tmp("bitflip");
    let g0 = seed_graph(11);
    let labels = g0.base_label_count();
    let queries = workload(&g0, 0xf11);

    let mut rng = StdRng::seed_from_u64(1234);
    let mut vertices = g0.vertex_count();
    let mut deltas = Vec::new();
    let mut boundaries = Vec::new();
    let wal_path = dir.join("wal-1.log");
    {
        let start = durable_engine(
            &dir,
            StoreOptions { fsync: FsyncPolicy::Never },
            engine_options(),
            || g0.clone(),
        )
        .unwrap();
        for txn in 0..TXNS {
            let delta = random_delta(&mut rng, &mut vertices, labels, txn);
            start.engine.apply_delta(&delta).unwrap();
            deltas.push(delta);
            boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
        }
    }
    let full = std::fs::read(&wal_path).unwrap();

    // Flip one byte inside each record in turn (framing byte 0 of the
    // record and a payload byte near its middle).
    for hit in 0..TXNS {
        let rec_start = if hit == 0 { 0 } else { boundaries[hit - 1] } as usize;
        let rec_end = boundaries[hit] as usize;
        for at in [rec_start, rec_start + (rec_end - rec_start) / 2] {
            let mut bytes = full.clone();
            bytes[at] ^= 0x20;
            std::fs::write(&wal_path, &bytes).unwrap();
            let (graph, index, info) = recover_state(&dir).unwrap().unwrap();
            assert_eq!(info.replayed_transactions, hit as u64);
            assert!(info.dropped_wal_bytes > 0);
            let (reference, _) = Engine::with_options(g0.clone(), engine_options());
            for d in &deltas[..hit] {
                reference.apply_delta(d).unwrap();
            }
            assert_equivalent(&graph, &index, &reference, &queries);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end across checkpoints: with a small WAL-bytes threshold the
/// run spans several snapshot generations (each written incrementally),
/// and both a clean restart and a torn-tail restart recover the full
/// committed state.
#[test]
fn recovery_across_incremental_checkpoints() {
    const TXNS: usize = 40;
    let dir = tmp("checkpoints");
    // Big enough to span many topology/name chunks, so a small delta
    // leaves most of them pointer-shared and checkpoints demonstrably
    // incremental.
    let g0 = generate::random_graph(&generate::RandomGraphConfig::social(2000, 8000, 3, 23));
    let labels = g0.base_label_count();
    let queries = workload(&g0, 0xabc);

    let mut options = engine_options();
    options.durability.checkpoint_wal_bytes = Some(512);
    let mut rng = StdRng::seed_from_u64(99);
    let mut vertices = g0.vertex_count();
    let mut deltas = Vec::new();
    let (snapshots, skipped) = {
        let start =
            durable_engine(&dir, StoreOptions::default(), options.clone(), || g0.clone()).unwrap();
        for txn in 0..TXNS {
            let delta = random_delta(&mut rng, &mut vertices, labels, txn);
            start.engine.apply_delta(&delta).unwrap();
            deltas.push(delta);
        }
        let stats = start.engine.stats();
        assert_eq!(stats.wal_appends, TXNS as u64);
        assert!(stats.wal_bytes > 0);
        (stats.snapshots_written, stats.snapshot_chunks_skipped)
    };
    assert!(snapshots >= 2, "threshold of 512 bytes must checkpoint repeatedly, got {snapshots}");
    assert!(skipped > 0, "small deltas must leave most chunks shared across checkpoints");

    let (reference, _) = Engine::with_options(g0.clone(), engine_options());
    for d in &deltas {
        reference.apply_delta(d).unwrap();
    }

    // Clean restart.
    let (graph, index, info) = recover_state(&dir).unwrap().unwrap();
    assert!(info.generation >= 2);
    assert_equivalent(&graph, &index, &reference, &queries);

    // Restart again *through the full durable path* and keep writing:
    // the recovered engine must accept appends and checkpoint again.
    {
        let start =
            durable_engine(&dir, StoreOptions::default(), options, || unreachable!()).unwrap();
        let recovered = start.recovered.expect("second boot recovers");
        assert_eq!(recovered.edge_count, reference.snapshot().graph().edge_count() as u64);
        // Recovery must leave its span tree in the recorder: the restart
        // path is instrumented like any serving pipeline.
        let traces = start.engine.obs().traces();
        let recovery = traces
            .iter()
            .find(|t| t.kind == cpqx_obs::TraceKind::Recovery)
            .expect("recovery trace recorded");
        for stage in [
            cpqx_obs::Stage::RecoverManifest,
            cpqx_obs::Stage::RecoverChunks,
            cpqx_obs::Stage::RecoverReplay,
        ] {
            assert!(recovery.span(stage).is_some(), "missing {} span", stage.name());
        }
        let extra = random_delta(&mut rng, &mut vertices, labels, TXNS);
        start.engine.apply_delta(&extra).unwrap();
        reference.apply_delta(&extra).unwrap();
        assert_equivalent(
            start.engine.snapshot().graph(),
            start.engine.snapshot().index(),
            &reference,
            &queries,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
