//! Crash recovery: latest valid snapshot + WAL tail → a serving engine.
//!
//! Recovery is the inverse of the write path, in three steps:
//!
//! 1. **Load** the live manifest's snapshot: reassemble the graph from
//!    its topology/name chunk records ([`Graph::from_chunk_parts`]
//!    rebuilds the derived pair segments) and the index from its class
//!    chunk records ([`CpqxIndex::from_class_records`] rebuilds `Il2c`
//!    and pair → class) — **no index construction happens**; restart
//!    cost is I/O plus replay.
//! 2. **Replay** the WAL tail the manifest points at, applying each
//!    logged transaction through the engine's own
//!    [`cpqx_engine::apply_ops`] — the same lazy maintenance procedures
//!    that ran before the crash, so the recovered index is the one the
//!    engine would have served. A torn or corrupt record ends the
//!    committed prefix; the tail beyond it is dropped, never fatal.
//! 3. **Install** the result as epoch 0 via
//!    [`Engine::with_recovered`] and attach a [`Store`] resuming at the
//!    recovered position, so the next write appends where the log left
//!    off and the next checkpoint snapshots incrementally against the
//!    recovered generation.

use crate::manifest;
use crate::snapshot::{
    decode_class_chunk, decode_header, decode_name_chunk, decode_topology_chunk, read_record,
};
use crate::store::{Retained, Store, StoreOptions};
use crate::wal;
use cpqx_core::CpqxIndex;
use cpqx_engine::{apply_ops, Engine, EngineOptions};
use cpqx_graph::Graph;
use std::path::Path;
use std::sync::Arc;

/// Why recovery failed. Torn WAL tails are *not* errors (they are the
/// expected shape of a crash); these are genuine inconsistencies —
/// unreadable files, checksum-failing snapshot records, or a log that
/// contradicts the snapshot it should extend.
#[derive(Debug)]
pub enum RecoverError {
    /// An I/O error outside any record framing.
    Io(std::io::Error),
    /// A store file exists but its contents are invalid.
    Corrupt {
        /// The offending file.
        file: String,
        /// What was wrong with it.
        what: String,
    },
    /// A committed (checksum-valid) WAL transaction failed to decode or
    /// re-apply against the snapshot it should extend.
    Replay {
        /// Zero-based index of the transaction in replay order.
        txn: usize,
        /// Why it failed.
        reason: String,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "i/o error during recovery: {e}"),
            RecoverError::Corrupt { file, what } => write!(f, "corrupt store file {file}: {what}"),
            RecoverError::Replay { txn, reason } => {
                write!(f, "WAL replay failed at transaction {txn}: {reason}")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What recovery restored (see [`DurableStart::recovered`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered {
    /// The snapshot generation the state was loaded from.
    pub generation: u64,
    /// Committed WAL transactions replayed on top of the snapshot.
    pub replayed_transactions: u64,
    /// Torn-tail bytes dropped from the end of the log (0 after a clean
    /// shutdown).
    pub dropped_wal_bytes: u64,
    /// Vertices in the recovered graph.
    pub vertex_count: u32,
    /// Base edges in the recovered graph.
    pub edge_count: u64,
    /// Wall-clock of the manifest read + validation.
    pub manifest_time: std::time::Duration,
    /// Wall-clock of chunk decode + graph/index reassembly.
    pub chunks_time: std::time::Duration,
    /// Wall-clock of the WAL tail replay.
    pub replay_time: std::time::Duration,
}

/// A durable engine, started: the engine (serving the recovered or
/// seeded state as epoch 0), the attached store, and what recovery
/// found.
pub struct DurableStart {
    /// The engine, with the store already attached as its durability
    /// sink.
    pub engine: Engine,
    /// The store persisting into the data directory (the same `Arc` the
    /// engine holds).
    pub store: Arc<Store>,
    /// `Some` when state was recovered from disk; `None` when the
    /// directory was fresh and the engine was built from the seed.
    pub recovered: Option<Recovered>,
}

/// Everything [`durable_engine`] needs beyond the public
/// [`recover_state`] view: the pre-replay retained image and the WAL
/// resume position.
struct FullRecovery {
    graph: Graph,
    index: CpqxIndex,
    retained: Retained,
    active_wal_gen: u64,
    active_wal_committed: u64,
    bytes_since_checkpoint: u64,
    info: Recovered,
}

fn corrupt(path: &Path, what: impl Into<String>) -> RecoverError {
    RecoverError::Corrupt { file: path.display().to_string(), what: what.into() }
}

fn recover_full(dir: &Path) -> Result<Option<FullRecovery>, RecoverError> {
    let t_manifest = std::time::Instant::now();
    let Some(m) = manifest::load_current(dir)? else { return Ok(None) };
    let mpath = dir.join(format!("manifest-{}", m.gen));
    let manifest_time = t_manifest.elapsed();

    // 1. Reassemble the snapshot state chunk by chunk.
    let t_chunks = std::time::Instant::now();
    let header = decode_header(&read_record(dir, m.header)?).map_err(|e| corrupt(&mpath, e))?;
    if header.topo_chunks != m.topo.len()
        || header.name_chunks != m.names.len()
        || header.class_chunks != m.classes.len()
    {
        return Err(corrupt(&mpath, "chunk tables disagree with snapshot header"));
    }
    let mut topology = Vec::with_capacity(m.topo.len());
    for (i, loc) in m.topo.iter().enumerate() {
        let (ci, start, rows) =
            decode_topology_chunk(&read_record(dir, *loc)?).map_err(|e| corrupt(&mpath, e))?;
        if ci != i {
            return Err(corrupt(&mpath, format!("topology chunk {ci} filed under index {i}")));
        }
        topology.push((start, rows));
    }
    let mut names = Vec::with_capacity(m.names.len());
    for (i, loc) in m.names.iter().enumerate() {
        let (ci, chunk) =
            decode_name_chunk(&read_record(dir, *loc)?).map_err(|e| corrupt(&mpath, e))?;
        if ci != i {
            return Err(corrupt(&mpath, format!("name chunk {ci} filed under index {i}")));
        }
        names.push(chunk);
    }
    let graph = Graph::from_chunk_parts(header.label_names, topology, names)
        .map_err(|e| corrupt(&mpath, format!("graph reassembly failed: {e}")))?;
    let mut class_chunks = Vec::with_capacity(m.classes.len());
    for (i, loc) in m.classes.iter().enumerate() {
        let (ci, records) = decode_class_chunk(header.k, &read_record(dir, *loc)?)
            .map_err(|e| corrupt(&mpath, e))?;
        if ci != i {
            return Err(corrupt(&mpath, format!("class chunk {ci} filed under index {i}")));
        }
        class_chunks.push(records);
    }
    let index = CpqxIndex::from_class_records(header.k, header.interests, class_chunks)
        .map_err(|e| corrupt(&mpath, format!("index reassembly failed: {e}")))?;
    let chunks_time = t_chunks.elapsed();

    // The retained image must alias the chunks of the state the engine
    // will serve, so the next incremental checkpoint sees unchanged
    // chunks as pointer-identical. Clone *before* replay mutates.
    let retained = Retained {
        graph: graph.clone(),
        index: index.clone(),
        topo: m.topo.clone(),
        names: m.names.clone(),
        classes: m.classes.clone(),
    };

    // 2. Replay the committed WAL tail.
    let t_replay = std::time::Instant::now();
    let mut graph = graph;
    let mut index = index;
    let segments: Vec<u64> =
        wal::list_segments(dir)?.into_iter().filter(|g| *g >= m.wal_gen).collect();
    let mut replayed = 0u64;
    let mut dropped = 0u64;
    let mut since_checkpoint = 0u64;
    let mut active = (m.wal_gen, 0u64);
    for gen in segments {
        let path = wal::segment_path(dir, gen);
        let scan = wal::scan_segment(&path)?;
        dropped += scan.dropped_bytes;
        let skip_to = if gen == m.wal_gen { m.wal_offset } else { 0 };
        let mut at = 0u64;
        for payload in &scan.records {
            let rec_len = 8 + payload.len() as u64;
            if at >= skip_to {
                let ops = wal::decode_ops(&graph, payload)
                    .map_err(|reason| RecoverError::Replay { txn: replayed as usize, reason })?;
                apply_ops(&mut graph, &mut index, &ops).map_err(|e| RecoverError::Replay {
                    txn: replayed as usize,
                    reason: format!("op {} rejected: {}", e.op_index, e.reason),
                })?;
                replayed += 1;
                since_checkpoint += rec_len;
            }
            at += rec_len;
        }
        active = (gen, scan.valid_len);
    }

    let info = Recovered {
        generation: m.gen,
        replayed_transactions: replayed,
        dropped_wal_bytes: dropped,
        vertex_count: graph.vertex_count(),
        edge_count: graph.edge_count() as u64,
        manifest_time,
        chunks_time,
        replay_time: t_replay.elapsed(),
    };
    Ok(Some(FullRecovery {
        graph,
        index,
        retained,
        active_wal_gen: active.0,
        active_wal_committed: active.1,
        bytes_since_checkpoint: since_checkpoint,
        info,
    }))
}

/// Read-only recovery: loads the latest valid snapshot and replays the
/// committed WAL tail **without opening anything for writing or
/// truncating torn tails** — the state a [`durable_engine`] call would
/// serve, as a pure function of the directory. `Ok(None)` means the
/// directory holds no store. The crash-consistency harness is built on
/// this: it can probe the same directory at many simulated crash points
/// without the probes disturbing each other.
pub fn recover_state(
    dir: impl AsRef<Path>,
) -> Result<Option<(Graph, CpqxIndex, Recovered)>, RecoverError> {
    Ok(recover_full(dir.as_ref())?.map(|r| (r.graph, r.index, r.info)))
}

/// Opens a durable engine on `dir`, creating the directory on first
/// use.
///
/// * If `dir` holds a store: recover (snapshot + WAL tail), install as
///   epoch 0 — the seed closure is **not** called, and `options.k` /
///   `options.interests` are overridden by the persisted index's so
///   rebuilds reproduce the recovered configuration.
/// * If `dir` is fresh: build the engine from `seed()` under `options`,
///   then bootstrap the store with a full generation-1 snapshot (the
///   WAL alone cannot reconstruct a seed state, so durability starts
///   with a checkpoint).
///
/// Either way the returned engine has the store attached: every
/// subsequent typed delta transaction is logged before it installs, and
/// checkpoints follow `options.durability.checkpoint_wal_bytes`.
///
/// A directory with WAL segments but no valid manifest is an error, not
/// a fresh start — silently reseeding would discard logged data.
pub fn durable_engine(
    dir: impl AsRef<Path>,
    store_options: StoreOptions,
    mut options: EngineOptions,
    seed: impl FnOnce() -> Graph,
) -> Result<DurableStart, RecoverError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    if let Some(r) = recover_full(dir)? {
        options.k = r.index.k();
        options.interests = r.index.interests().map(|lq| lq.iter().copied().collect());
        let engine = Engine::with_recovered(r.graph, r.index, options);
        let store = Arc::new(Store::resume(
            dir,
            store_options,
            r.active_wal_gen,
            r.active_wal_committed,
            r.bytes_since_checkpoint,
            Some(r.retained),
        )?);
        engine.attach_durability(store.clone());
        // Restart timings land in the recorder like any other pipeline,
        // so METRICS exposes recovery stages alongside serving stages.
        engine.obs().record_recovery(
            r.info.manifest_time,
            r.info.chunks_time,
            r.info.replay_time,
            engine.epoch(),
        );
        return Ok(DurableStart { engine, store, recovered: Some(r.info) });
    }
    if !wal::list_segments(dir)?.is_empty() {
        return Err(RecoverError::Corrupt {
            file: dir.display().to_string(),
            what: "WAL segments present but no valid manifest".into(),
        });
    }
    let (engine, _report) = Engine::with_options(seed(), options);
    let snap = engine.snapshot();
    let store = Arc::new(Store::create(dir, store_options, snap.graph(), snap.index())?);
    drop(snap);
    engine.attach_durability(store.clone());
    Ok(DurableStart { engine, store, recovered: None })
}
