//! The append-only write-ahead log.
//!
//! One WAL *segment* (`wal-<gen>.log`) holds the delta transactions
//! committed since the snapshot of the same generation; a checkpoint
//! rotates to a fresh segment. Each record is one transaction:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is [`crate::crc32`] over the payload and the payload is
//! the wire protocol's DELTA request frame
//! ([`cpqx_net::proto::encode_request`] of `Request::Delta`) — the one
//! codec the project already has for typed delta ops, so the log format
//! inherits the protocol's tests. Labels travel as names (resolved
//! against the graph on replay); vertex ids are literal, which is sound
//! because the engine logs ops *post-validation* under its writer lock.
//!
//! Recovery scans a segment front to back and stops at the first
//! truncated or checksum-failing record: everything before it is the
//! committed prefix, everything after is a torn tail from a crash
//! mid-append and is dropped (never an error).

use crate::crc32;
use cpqx_engine::DeltaOp;
use cpqx_graph::{ExtLabel, Graph, LabelSeq, MAX_SEQ_LEN};
use cpqx_net::proto::{decode_request, encode_request, Request, WireOp, WireSeqLabel};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// When the WAL file is flushed to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — every acknowledged transaction
    /// survives power loss. The default, and the slowest.
    #[default]
    Always,
    /// `fsync` every `n`-th append: bounded loss window, most of the
    /// throughput of [`FsyncPolicy::Never`].
    EveryN(u64),
    /// Never `fsync` on append (the OS flushes when it pleases; a
    /// checkpoint still syncs). For benchmarks and tests.
    Never,
}

/// Bound on a single WAL record payload. A scanned length prefix above
/// it is treated as tail corruption, not an allocation request; mirrors
/// the wire protocol's default frame bound.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

/// `dir/wal-<gen>.log`.
pub(crate) fn segment_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen}.log"))
}

/// The generations of every WAL segment present in `dir`, ascending.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
            if let Ok(gen) = rest.parse::<u64>() {
                gens.push(gen);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// The open, appendable tail segment of the log.
pub(crate) struct WalWriter {
    file: File,
    appends_since_sync: u64,
}

impl WalWriter {
    /// Opens segment `gen` for appending, truncating it to
    /// `committed_len` first (dropping a torn tail found by recovery).
    pub(crate) fn open(dir: &Path, gen: u64, committed_len: u64) -> io::Result<WalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(segment_path(dir, gen))?;
        file.set_len(committed_len)?;
        let mut w = WalWriter { file, appends_since_sync: 0 };
        use std::io::Seek;
        w.file.seek(io::SeekFrom::End(0))?;
        Ok(w)
    }

    /// Appends one framed record and applies the fsync policy. Returns
    /// the bytes written (framing included).
    pub(crate) fn append(&mut self, payload: &[u8], fsync: FsyncPolicy) -> io::Result<u64> {
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        self.file.write_all(&rec)?;
        self.appends_since_sync += 1;
        match fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(rec.len() as u64)
    }

    /// Forces the segment to stable storage.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.appends_since_sync = 0;
        self.file.sync_data()
    }
}

/// What scanning one WAL segment found.
pub(crate) struct WalScan {
    /// The payloads of every intact record, in append order.
    pub(crate) records: Vec<Vec<u8>>,
    /// File length of the committed prefix (where appends may resume).
    pub(crate) valid_len: u64,
    /// Bytes past the committed prefix — a torn tail from a crash
    /// mid-append (or trailing corruption), dropped by recovery.
    pub(crate) dropped_bytes: u64,
}

/// Scans a segment front to back, stopping at the first truncated or
/// checksum-failing record (committed-prefix semantics). A missing file
/// reads as an empty segment: rotation creates segments lazily, so a
/// crash between manifest install and first append is indistinguishable
/// from "no transactions yet".
pub(crate) fn scan_segment(path: &Path) -> io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(header) = bytes.get(at..at + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len as usize) else { break };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        at += 8 + len as usize;
    }
    Ok(WalScan { records, valid_len: at as u64, dropped_bytes: (bytes.len() - at) as u64 })
}

/// Encodes one committed transaction as a WAL record payload: the wire
/// DELTA frame of `ops` with labels resolved to names against `graph`
/// (the post-apply state, so every label the ops reference is present).
pub fn encode_ops(graph: &Graph, ops: &[DeltaOp]) -> Vec<u8> {
    let name = |l: cpqx_graph::Label| graph.label_names()[l.0 as usize].clone();
    let seq = |s: &LabelSeq| {
        s.iter()
            .map(|l| WireSeqLabel { inverse: l.is_inverse(), label: name(l.base()) })
            .collect::<Vec<_>>()
    };
    let wire = ops
        .iter()
        .map(|op| match op {
            DeltaOp::InsertEdge { src, dst, label } => {
                WireOp::InsertEdge { src: *src, dst: *dst, label: name(*label) }
            }
            DeltaOp::DeleteEdge { src, dst, label } => {
                WireOp::DeleteEdge { src: *src, dst: *dst, label: name(*label) }
            }
            DeltaOp::ChangeEdgeLabel { src, dst, from, to } => {
                WireOp::ChangeEdgeLabel { src: *src, dst: *dst, from: name(*from), to: name(*to) }
            }
            DeltaOp::AddVertex { name } => WireOp::AddVertex { name: name.clone() },
            DeltaOp::DeleteVertex { vertex } => WireOp::DeleteVertex { vertex: *vertex },
            DeltaOp::InsertInterest { seq: s } => WireOp::InsertInterest { seq: seq(s) },
            DeltaOp::DeleteInterest { seq: s } => WireOp::DeleteInterest { seq: seq(s) },
        })
        .collect();
    encode_request(&Request::Delta(wire))
}

/// Decodes a WAL record payload back into typed delta ops, resolving
/// label names against `graph`. Replay applies transactions in log
/// order, and deltas never create labels, so resolving against the
/// snapshot's label table is sound for the whole tail.
pub fn decode_ops(graph: &Graph, payload: &[u8]) -> Result<Vec<DeltaOp>, String> {
    let req = decode_request(payload).map_err(|e| format!("bad DELTA frame: {e:?}"))?;
    let Request::Delta(wire) = req else {
        return Err("WAL record is not a DELTA frame".into());
    };
    let label = |name: &str| {
        graph.label_named(name).ok_or_else(|| format!("unknown label {name:?} in WAL record"))
    };
    let seq = |steps: &[WireSeqLabel]| -> Result<LabelSeq, String> {
        if steps.len() > MAX_SEQ_LEN {
            return Err(format!("interest sequence of length {} in WAL record", steps.len()));
        }
        let ext = steps
            .iter()
            .map(|s| label(&s.label).map(|l| if s.inverse { l.inv() } else { l.fwd() }))
            .collect::<Result<Vec<ExtLabel>, String>>()?;
        Ok(LabelSeq::from_slice(&ext))
    };
    wire.iter()
        .map(|op| {
            Ok(match op {
                WireOp::InsertEdge { src, dst, label: l } => {
                    DeltaOp::InsertEdge { src: *src, dst: *dst, label: label(l)? }
                }
                WireOp::DeleteEdge { src, dst, label: l } => {
                    DeltaOp::DeleteEdge { src: *src, dst: *dst, label: label(l)? }
                }
                WireOp::ChangeEdgeLabel { src, dst, from, to } => DeltaOp::ChangeEdgeLabel {
                    src: *src,
                    dst: *dst,
                    from: label(from)?,
                    to: label(to)?,
                },
                WireOp::AddVertex { name } => DeltaOp::AddVertex { name: name.clone() },
                WireOp::DeleteVertex { vertex } => DeltaOp::DeleteVertex { vertex: *vertex },
                WireOp::InsertInterest { seq: s } => DeltaOp::InsertInterest { seq: seq(s)? },
                WireOp::DeleteInterest { seq: s } => DeltaOp::DeleteInterest { seq: seq(s)? },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate::gex;
    use cpqx_graph::Label;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpqx-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<Vec<DeltaOp>> {
        vec![
            vec![
                DeltaOp::InsertEdge { src: 0, dst: 3, label: Label(0) },
                DeltaOp::DeleteEdge { src: 1, dst: 2, label: Label(1) },
            ],
            vec![DeltaOp::AddVertex { name: "n9".into() }],
            vec![
                DeltaOp::ChangeEdgeLabel { src: 2, dst: 0, from: Label(0), to: Label(1) },
                DeltaOp::DeleteVertex { vertex: 4 },
                DeltaOp::InsertInterest {
                    seq: LabelSeq::from_slice(&[Label(0).fwd(), Label(1).inv()]),
                },
                DeltaOp::DeleteInterest { seq: LabelSeq::single(Label(1).fwd()) },
            ],
        ]
    }

    #[test]
    fn ops_roundtrip_through_record_payload() {
        let g = gex();
        for ops in sample_ops() {
            let payload = encode_ops(&g, &ops);
            assert_eq!(decode_ops(&g, &payload).unwrap(), ops);
        }
    }

    #[test]
    fn decode_rejects_foreign_labels_and_frames() {
        let g = gex();
        let other = {
            let mut b = cpqx_graph::GraphBuilder::new();
            b.add_edge_named("a", "b", "x");
            b.build()
        };
        let payload =
            encode_ops(&other, &[DeltaOp::InsertEdge { src: 0, dst: 1, label: Label(0) }]);
        // `x` is not a label of gex(): replay against the wrong graph
        // must fail loudly, not mis-resolve.
        assert!(decode_ops(&g, &payload).unwrap_err().contains("unknown label"));
        assert!(decode_ops(&g, &encode_request(&Request::Ping)).is_err());
        assert!(decode_ops(&g, b"garbage").is_err());
    }

    #[test]
    fn segment_roundtrip_and_torn_tail() {
        let dir = tmp("torn");
        let g = gex();
        let payloads: Vec<Vec<u8>> = sample_ops().iter().map(|ops| encode_ops(&g, ops)).collect();
        let mut w = WalWriter::open(&dir, 1, 0).unwrap();
        let mut total = 0;
        for p in &payloads {
            total += w.append(p, FsyncPolicy::EveryN(2)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let path = segment_path(&dir, 1);
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records, payloads);
        assert_eq!(scan.valid_len, total);
        assert_eq!(scan.dropped_bytes, 0);

        // Truncate mid-record: the last record becomes a torn tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records, payloads[..2].to_vec());
        assert!(scan.dropped_bytes > 0);

        // Reopening at the committed prefix drops the tail and appends
        // resume cleanly.
        let mut w = WalWriter::open(&dir, 1, scan.valid_len).unwrap();
        w.append(&payloads[0], FsyncPolicy::Always).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2], payloads[0]);

        // A flipped byte in the middle ends the committed prefix there.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert!(scan.records.len() < 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_scans_empty() {
        let dir = tmp("missing");
        let scan = scan_segment(&segment_path(&dir, 7)).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
