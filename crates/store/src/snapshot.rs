//! Chunk-per-record snapshot files.
//!
//! A snapshot file (`snap-<gen>.dat`) is a sequence of framed records —
//! the same `[len][crc][payload]` framing as the WAL — each persisting
//! one copy-on-write unit of the engine state:
//!
//! * a **header** record: the graph's label table, the index's `k` and
//!   mode (full / interest-aware with its interest set), and the three
//!   chunk counts;
//! * one record per graph **topology chunk** (adjacency rows; the
//!   derived pair segments are rebuilt on load by
//!   [`cpqx_graph::Graph::from_chunk_parts`]);
//! * one record per vertex-**name chunk**;
//! * one record per index **class chunk**, whose payload is exactly
//!   [`cpqx_core::CpqxIndex::save_class_chunk`]'s output (so its
//!   per-class layout — and validation — is the `cpqx-core` serializer,
//!   not a second format).
//!
//! Because the persisted unit *is* the copy-on-write unit, an
//! incremental snapshot writes only records for chunks whose `Arc`
//! changed since the previous generation and points the manifest at the
//! previous generation's records for the rest.

use crate::crc32;
use crate::manifest::ChunkLoc;
use crate::recover::RecoverError;
use cpqx_core::serialize::ClassRecord;
use cpqx_core::CpqxIndex;
use cpqx_graph::{Graph, LabelSeq, VertexId, MAX_SEQ_LEN};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Record kinds (first payload byte).
const KIND_HEADER: u8 = 0;
const KIND_TOPOLOGY: u8 = 1;
const KIND_NAMES: u8 = 2;
const KIND_CLASSES: u8 = 3;

/// Bound on a single snapshot record payload (a corrupt length prefix
/// must not become an allocation request).
const MAX_RECORD: u32 = 256 * 1024 * 1024;

/// `dir/snap-<gen>.dat`.
pub(crate) fn snap_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap-{gen}.dat"))
}

/// Appends framed records to a new generation's snapshot file.
pub(crate) struct SnapshotWriter {
    file: File,
    gen: u64,
    offset: u64,
}

impl SnapshotWriter {
    /// Creates `snap-<gen>.dat` (truncating a leftover from an earlier
    /// crashed checkpoint of the same generation, which no manifest can
    /// reference).
    pub(crate) fn create(dir: &Path, gen: u64) -> io::Result<SnapshotWriter> {
        Ok(SnapshotWriter { file: File::create(snap_path(dir, gen))?, gen, offset: 0 })
    }

    /// Appends one framed record, returning where it landed.
    pub(crate) fn write_record(&mut self, payload: &[u8]) -> io::Result<ChunkLoc> {
        let loc = ChunkLoc { gen: self.gen, offset: self.offset };
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.offset += 8 + payload.len() as u64;
        Ok(loc)
    }

    /// Forces the file to stable storage (must happen before the
    /// manifest referencing its records installs).
    pub(crate) fn finish(self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Reads and checksum-verifies the record at `loc`.
pub(crate) fn read_record(dir: &Path, loc: ChunkLoc) -> Result<Vec<u8>, RecoverError> {
    let path = snap_path(dir, loc.gen);
    let corrupt = |what: &str| RecoverError::Corrupt {
        file: path.display().to_string(),
        what: format!("{what} (record at offset {})", loc.offset),
    };
    let mut f = File::open(&path)?;
    f.seek(io::SeekFrom::Start(loc.offset))?;
    let mut header = [0u8; 8];
    f.read_exact(&mut header).map_err(|_| corrupt("truncated record framing"))?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_RECORD {
        return Err(corrupt("record length out of range"));
    }
    let mut payload = vec![0u8; len as usize];
    f.read_exact(&mut payload).map_err(|_| corrupt("truncated record payload"))?;
    if crc32(&payload) != crc {
        return Err(corrupt("record checksum mismatch"));
    }
    Ok(payload)
}

// ------------------------------------------------------ payload codecs --

struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self.buf.get(self.at..self.at + n).ok_or("truncated snapshot record")?;
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn count(&mut self) -> Result<usize, String> {
        // Any count prefixes at least one byte per element; a count
        // larger than the bytes left is self-inconsistent.
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at {
            return Err("self-inconsistent count in snapshot record".into());
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.count()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "non-UTF-8 string".into())
    }

    fn kind(&mut self, expected: u8) -> Result<(), String> {
        let k = self.u8()?;
        if k != expected {
            return Err(format!("record kind {k}, expected {expected}"));
        }
        Ok(())
    }

    fn done(self) -> Result<(), String> {
        if self.at != self.buf.len() {
            return Err("trailing bytes in snapshot record".into());
        }
        Ok(())
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_seq(out: &mut Vec<u8>, s: &LabelSeq) {
    out.push(s.len() as u8);
    for l in s.iter() {
        out.extend_from_slice(&l.0.to_le_bytes());
    }
}

fn get_seq(c: &mut Cur<'_>) -> Result<LabelSeq, String> {
    let n = c.u8()? as usize;
    if n > MAX_SEQ_LEN {
        return Err("interest sequence too long".into());
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(cpqx_graph::ExtLabel(c.u16()?));
    }
    Ok(LabelSeq::from_slice(&labels))
}

/// The decoded header record.
pub(crate) struct Header {
    pub(crate) k: usize,
    pub(crate) interests: Option<BTreeSet<LabelSeq>>,
    pub(crate) label_names: Vec<String>,
    pub(crate) topo_chunks: usize,
    pub(crate) name_chunks: usize,
    pub(crate) class_chunks: usize,
}

/// Encodes the header record for the state `(graph, index)`.
pub(crate) fn encode_header(graph: &Graph, index: &CpqxIndex) -> Vec<u8> {
    let mut out = vec![KIND_HEADER];
    out.extend_from_slice(&(index.k() as u32).to_le_bytes());
    match index.interests() {
        None => out.push(0),
        Some(lq) => {
            out.push(1);
            out.extend_from_slice(&(lq.len() as u32).to_le_bytes());
            for s in lq {
                put_seq(&mut out, s);
            }
        }
    }
    let labels = graph.label_names();
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for name in labels {
        put_str(&mut out, name);
    }
    out.extend_from_slice(&(graph.topology_chunk_count() as u32).to_le_bytes());
    out.extend_from_slice(&(graph.name_chunk_count() as u32).to_le_bytes());
    out.extend_from_slice(&(index.class_chunk_count() as u32).to_le_bytes());
    out
}

/// Decodes a header record.
pub(crate) fn decode_header(payload: &[u8]) -> Result<Header, String> {
    let mut c = Cur::new(payload);
    c.kind(KIND_HEADER)?;
    let k = c.u32()? as usize;
    let interests = match c.u8()? {
        0 => None,
        1 => {
            let n = c.count()?;
            let mut lq = BTreeSet::new();
            for _ in 0..n {
                lq.insert(get_seq(&mut c)?);
            }
            Some(lq)
        }
        _ => return Err("bad mode byte in snapshot header".into()),
    };
    let nl = c.count()?;
    let label_names = (0..nl).map(|_| c.str()).collect::<Result<Vec<_>, _>>()?;
    let h = Header {
        k,
        interests,
        label_names,
        topo_chunks: c.u32()? as usize,
        name_chunks: c.u32()? as usize,
        class_chunks: c.u32()? as usize,
    };
    c.done()?;
    Ok(h)
}

/// Encodes topology chunk `i` of `graph`: the adjacency rows only —
/// pair segments and counts are derived state, rebuilt on load.
pub(crate) fn encode_topology_chunk(graph: &Graph, i: usize) -> Vec<u8> {
    let (start, rows) = graph.topology_chunk(i);
    let mut out = vec![KIND_TOPOLOGY];
    out.extend_from_slice(&(i as u32).to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for (ext, tgt) in row {
            out.extend_from_slice(&ext.to_le_bytes());
            out.extend_from_slice(&tgt.to_le_bytes());
        }
    }
    out
}

/// Decodes a topology chunk record into
/// `(chunk index, start vertex, adjacency rows)`.
pub(crate) type TopologyChunk = (usize, VertexId, Vec<Vec<(u16, VertexId)>>);

/// Decodes a topology chunk record (see [`encode_topology_chunk`]).
pub(crate) fn decode_topology_chunk(payload: &[u8]) -> Result<TopologyChunk, String> {
    let mut c = Cur::new(payload);
    c.kind(KIND_TOPOLOGY)?;
    let i = c.u32()? as usize;
    let start = c.u32()?;
    let nrows = c.count()?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let n = c.count()?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            let ext = c.u16()?;
            let tgt = c.u32()?;
            row.push((ext, tgt));
        }
        rows.push(row);
    }
    c.done()?;
    Ok((i, start, rows))
}

/// Encodes vertex-name chunk `i` of `graph`.
pub(crate) fn encode_name_chunk(graph: &Graph, i: usize) -> Vec<u8> {
    let names = graph.name_chunk(i);
    let mut out = vec![KIND_NAMES];
    out.extend_from_slice(&(i as u32).to_le_bytes());
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in names {
        put_str(&mut out, name);
    }
    out
}

/// Decodes a name chunk record into `(chunk index, names)`.
pub(crate) fn decode_name_chunk(payload: &[u8]) -> Result<(usize, Vec<String>), String> {
    let mut c = Cur::new(payload);
    c.kind(KIND_NAMES)?;
    let i = c.u32()? as usize;
    let n = c.count()?;
    let names = (0..n).map(|_| c.str()).collect::<Result<Vec<_>, _>>()?;
    c.done()?;
    Ok((i, names))
}

/// Encodes index class chunk `i`: the record body past the kind byte
/// and chunk index is exactly [`CpqxIndex::save_class_chunk`]'s output.
pub(crate) fn encode_class_chunk(index: &CpqxIndex, i: usize) -> Vec<u8> {
    let mut out = vec![KIND_CLASSES];
    out.extend_from_slice(&(i as u32).to_le_bytes());
    index.save_class_chunk(i, &mut out).expect("writing to a Vec cannot fail");
    out
}

/// Decodes a class chunk record into `(chunk index, class records)`,
/// delegating per-class validation to the `cpqx-core` serializer.
pub(crate) fn decode_class_chunk(
    k: usize,
    payload: &[u8],
) -> Result<(usize, Vec<ClassRecord>), String> {
    let mut c = Cur::new(payload);
    c.kind(KIND_CLASSES)?;
    let i = c.u32()? as usize;
    let body = &payload[c.at..];
    let records = CpqxIndex::load_class_chunk(k, body).map_err(|e| e.to_string())?;
    Ok((i, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate::gex;

    #[test]
    fn payload_codecs_roundtrip() {
        let g = gex();
        let idx = CpqxIndex::build(&g, 2);
        let h = decode_header(&encode_header(&g, &idx)).unwrap();
        assert_eq!(h.k, 2);
        assert_eq!(h.interests, None);
        assert_eq!(h.label_names, g.label_names());
        assert_eq!(h.topo_chunks, g.topology_chunk_count());
        assert_eq!(h.name_chunks, g.name_chunk_count());
        assert_eq!(h.class_chunks, idx.class_chunk_count());

        for i in 0..g.topology_chunk_count() {
            let (ci, start, rows) = decode_topology_chunk(&encode_topology_chunk(&g, i)).unwrap();
            let (want_start, want_rows) = g.topology_chunk(i);
            assert_eq!((ci, start), (i, want_start));
            assert_eq!(rows, want_rows);
        }
        for i in 0..g.name_chunk_count() {
            let (ci, names) = decode_name_chunk(&encode_name_chunk(&g, i)).unwrap();
            assert_eq!(ci, i);
            assert_eq!(names, g.name_chunk(i));
        }
        let mut chunks = Vec::new();
        for i in 0..idx.class_chunk_count() {
            let (ci, records) = decode_class_chunk(2, &encode_class_chunk(&idx, i)).unwrap();
            assert_eq!(ci, i);
            chunks.push(records);
        }
        let rebuilt = CpqxIndex::from_class_records(2, None, chunks).unwrap();
        assert_eq!(rebuilt.class_chunk_count(), idx.class_chunk_count());
    }

    #[test]
    fn record_io_verifies_checksums() {
        let dir = std::env::temp_dir().join(format!("cpqx-snaprec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut w = SnapshotWriter::create(&dir, 3).unwrap();
        let a = w.write_record(b"first record").unwrap();
        let b = w.write_record(b"second record, longer").unwrap();
        w.finish().unwrap();
        assert_eq!(read_record(&dir, a).unwrap(), b"first record");
        assert_eq!(read_record(&dir, b).unwrap(), b"second record, longer");

        // Flip a payload byte of the second record: its read fails, the
        // first record is unaffected.
        let path = snap_path(&dir, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = b.offset as usize + 8;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_record(&dir, b), Err(RecoverError::Corrupt { .. })));
        assert_eq!(read_record(&dir, a).unwrap(), b"first record");

        // A dangling location past the end of the file.
        let past = ChunkLoc { gen: 3, offset: bytes.len() as u64 + 100 };
        assert!(read_record(&dir, past).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
