//! The generation manifest: the store's root pointer.
//!
//! A manifest (`manifest-<gen>`) describes one complete snapshot
//! generation: where every chunk record of the graph + index lives
//! (possibly in an *older* generation's snapshot file — that is what
//! makes snapshots incremental) and the WAL position the snapshot
//! covers, i.e. where replay must start. `CURRENT` names the live
//! manifest; both are installed by write-to-temp + rename, so a crash
//! mid-checkpoint leaves the previous generation intact. Every manifest
//! is CRC-framed and recovery falls back to scanning for the newest
//! *valid* manifest when `CURRENT` is missing or points at garbage.

use crate::crc32;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Where one persisted chunk record lives: byte `offset` inside
/// generation `gen`'s snapshot file. An incremental snapshot reuses the
/// previous generation's location for every unchanged chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkLoc {
    /// Snapshot generation whose file holds the record.
    pub gen: u64,
    /// Byte offset of the record's framing header in that file.
    pub offset: u64,
}

/// One snapshot generation's table of contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The generation this manifest describes.
    pub gen: u64,
    /// First WAL segment not covered by the snapshot: replay starts at
    /// segment `wal_gen`, byte `wal_offset`, and continues through any
    /// later segments.
    pub wal_gen: u64,
    /// Byte offset within segment `wal_gen` where replay starts.
    pub wal_offset: u64,
    /// The snapshot header record (label table, `k`, mode, counts).
    pub header: ChunkLoc,
    /// Topology chunk records, in chunk order.
    pub topo: Vec<ChunkLoc>,
    /// Vertex-name chunk records, in chunk order.
    pub names: Vec<ChunkLoc>,
    /// Index class-chunk records, in chunk order.
    pub classes: Vec<ChunkLoc>,
}

const MAGIC: &[u8; 4] = b"CPQM";
const VERSION: u32 = 1;

fn manifest_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("manifest-{gen}"))
}

fn put_locs(out: &mut Vec<u8>, locs: &[ChunkLoc]) {
    out.extend_from_slice(&(locs.len() as u32).to_le_bytes());
    for l in locs {
        out.extend_from_slice(&l.gen.to_le_bytes());
        out.extend_from_slice(&l.offset.to_le_bytes());
    }
}

fn encode(m: &Manifest) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&VERSION.to_le_bytes());
    body.extend_from_slice(&m.gen.to_le_bytes());
    body.extend_from_slice(&m.wal_gen.to_le_bytes());
    body.extend_from_slice(&m.wal_offset.to_le_bytes());
    body.extend_from_slice(&m.header.gen.to_le_bytes());
    body.extend_from_slice(&m.header.offset.to_le_bytes());
    put_locs(&mut body, &m.topo);
    put_locs(&mut body, &m.names);
    put_locs(&mut body, &m.classes);
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let s = self.buf.get(self.at..self.at + n).ok_or("truncated manifest")?;
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn locs(&mut self) -> Result<Vec<ChunkLoc>, String> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at {
            // Each loc is 16 bytes; a count above the remaining byte
            // count is self-inconsistent — reject before allocating.
            return Err("manifest chunk table over-long".into());
        }
        (0..n).map(|_| Ok(ChunkLoc { gen: self.u64()?, offset: self.u64()? })).collect()
    }
}

fn decode(bytes: &[u8]) -> Result<Manifest, String> {
    let header = bytes.get(..8).ok_or("manifest shorter than its framing")?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let body = bytes.get(8..8 + len).ok_or("manifest body truncated")?;
    if crc32(body) != crc {
        return Err("manifest checksum mismatch".into());
    }
    let mut c = Cur { buf: body, at: 0 };
    if c.take(4)? != MAGIC {
        return Err("bad manifest magic".into());
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(format!("manifest format version {version}, expected {VERSION}"));
    }
    Ok(Manifest {
        gen: c.u64()?,
        wal_gen: c.u64()?,
        wal_offset: c.u64()?,
        header: ChunkLoc { gen: c.u64()?, offset: c.u64()? },
        topo: c.locs()?,
        names: c.locs()?,
        classes: c.locs()?,
    })
}

/// Atomically replaces `dir/<name>` with `contents` (temp + rename,
/// both synced).
fn install_file(dir: &Path, name: &str, contents: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(name))?;
    // Make the rename durable; directory fsync can be unsupported on
    // some filesystems, in which case the rename is still atomic,
    // merely not yet on stable storage.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Persists `m` as `manifest-<gen>` and repoints `CURRENT` at it. Both
/// installs are atomic; a crash between them is healed by the fallback
/// scan (the new manifest simply wins by generation).
pub(crate) fn install(dir: &Path, m: &Manifest) -> io::Result<()> {
    install_file(dir, &format!("manifest-{}", m.gen), &encode(m))?;
    install_file(dir, "CURRENT", format!("manifest-{}\n", m.gen).as_bytes())
}

/// The generations of every manifest present in `dir`, ascending.
pub(crate) fn list(dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("manifest-") {
            if let Ok(gen) = rest.parse::<u64>() {
                gens.push(gen);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Loads the live manifest: the one `CURRENT` names, or — when
/// `CURRENT` is missing, unreadable, or points at a corrupt file — the
/// newest generation that still decodes. `Ok(None)` means the directory
/// holds no valid manifest at all (a fresh store).
pub(crate) fn load_current(dir: &Path) -> io::Result<Option<Manifest>> {
    if let Ok(current) = std::fs::read_to_string(dir.join("CURRENT")) {
        if let Some(gen) = current.trim().strip_prefix("manifest-").and_then(|g| g.parse().ok()) {
            if let Some(m) = load_gen(dir, gen)? {
                return Ok(Some(m));
            }
        }
    }
    for gen in list(dir)?.into_iter().rev() {
        if let Some(m) = load_gen(dir, gen)? {
            return Ok(Some(m));
        }
    }
    Ok(None)
}

fn load_gen(dir: &Path, gen: u64) -> io::Result<Option<Manifest>> {
    let bytes = match std::fs::read(manifest_path(dir, gen)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(decode(&bytes).ok().filter(|m| m.gen == gen))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(gen: u64) -> Manifest {
        Manifest {
            gen,
            wal_gen: gen,
            wal_offset: 0,
            header: ChunkLoc { gen, offset: 0 },
            topo: vec![ChunkLoc { gen: 1, offset: 40 }, ChunkLoc { gen, offset: 993 }],
            names: vec![ChunkLoc { gen: 1, offset: 512 }],
            classes: vec![ChunkLoc { gen, offset: 1200 }],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpqx-manifest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_current_pointer() {
        let dir = tmp("roundtrip");
        assert_eq!(load_current(&dir).unwrap(), None);
        install(&dir, &sample(1)).unwrap();
        install(&dir, &sample(2)).unwrap();
        assert_eq!(load_current(&dir).unwrap(), Some(sample(2)));
        assert_eq!(list(&dir).unwrap(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fallback_scan_survives_bad_current_and_corrupt_manifest() {
        let dir = tmp("fallback");
        install(&dir, &sample(1)).unwrap();
        install(&dir, &sample(2)).unwrap();

        // CURRENT pointing at a generation that never got written.
        std::fs::write(dir.join("CURRENT"), "manifest-9\n").unwrap();
        assert_eq!(load_current(&dir).unwrap(), Some(sample(2)));

        // CURRENT gone entirely.
        std::fs::remove_file(dir.join("CURRENT")).unwrap();
        assert_eq!(load_current(&dir).unwrap(), Some(sample(2)));

        // Newest manifest corrupted: the previous generation wins.
        let path = dir.join("manifest-2");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_current(&dir).unwrap(), Some(sample(1)));

        // Nothing valid left.
        std::fs::remove_file(dir.join("manifest-1")).unwrap();
        assert_eq!(load_current(&dir).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
