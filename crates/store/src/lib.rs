//! `cpqx-store` — the opt-in durability layer for the cpqx engine.
//!
//! Everything the engine serves lives in memory; this crate makes it
//! survive a crash. Three cooperating pieces (on-disk format spec in
//! `STORAGE.md`):
//!
//! * [`wal`] — an append-only write-ahead log of typed delta
//!   transactions. Records reuse the wire protocol's DELTA request
//!   codec (`cpqx-net`), wrapped in per-record length + CRC32 framing;
//!   a torn or truncated tail is dropped on recovery, never fatal.
//! * [`snapshot`] — chunk-per-record snapshots of the copy-on-write
//!   `Graph` + `CpqxIndex`. An incremental snapshot writes only the
//!   chunks that changed since the last one (detected by `Arc` pointer
//!   identity, the same rule as `cow_diff`) and reuses the previous
//!   generation's records for the rest.
//! * [`manifest`] + [`recover`] — a generation manifest tying each
//!   snapshot to the WAL position it covers, and recovery = load the
//!   latest valid snapshot, replay the WAL tail through the engine's
//!   own delta-application path, install as epoch 0.
//!
//! The [`Store`] type implements the engine's `DurabilitySink` trait:
//! attach it with `Engine::attach_durability` (or use
//! [`recover::durable_engine`] which wires everything up) and every
//! typed delta transaction is logged before its snapshot installs,
//! with checkpoints triggered by the engine's WAL-bytes threshold.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manifest;
pub mod recover;
pub mod snapshot;
pub mod wal;

mod store;

pub use recover::{durable_engine, recover_state, DurableStart, RecoverError, Recovered};
pub use store::{Store, StoreOptions};
pub use wal::FsyncPolicy;

/// CRC32 (ISO-HDLC / zlib polynomial, reflected) over `bytes` — the
/// checksum used by every framed record in the store's on-disk files.
/// Hand-rolled table-driven implementation: the build environment is
/// offline, so no external crc crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"cpqx-store record payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
