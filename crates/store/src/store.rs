//! The [`Store`]: the concrete `DurabilitySink` tying WAL, snapshots
//! and manifest together behind the engine's durability seam.

use crate::manifest::{self, ChunkLoc, Manifest};
use crate::snapshot::{
    encode_class_chunk, encode_header, encode_name_chunk, encode_topology_chunk, snap_path,
    SnapshotWriter,
};
use crate::wal::{self, FsyncPolicy, WalWriter};
use cpqx_core::CpqxIndex;
use cpqx_engine::{CheckpointReport, DeltaOp, DurabilitySink};
use cpqx_graph::Graph;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Store-side durability knobs (the *policy* knob — when to checkpoint —
/// lives with the engine, in `EngineOptions::durability`).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreOptions {
    /// When WAL appends are flushed to stable storage.
    pub fsync: FsyncPolicy,
}

/// The retained image of the last persisted generation: `Arc`-sharing
/// clones of the graph + index as checkpointed, plus where each chunk
/// record landed. Because every engine mutation goes through
/// `Arc::make_mut` and these clones keep each chunk's refcount above
/// one, a chunk that is still pointer-identical at the next checkpoint
/// is byte-identical on disk — the record location can be reused.
pub(crate) struct Retained {
    pub(crate) graph: Graph,
    pub(crate) index: CpqxIndex,
    pub(crate) topo: Vec<ChunkLoc>,
    pub(crate) names: Vec<ChunkLoc>,
    pub(crate) classes: Vec<ChunkLoc>,
}

struct Inner {
    wal: WalWriter,
    /// Current generation: the live manifest's, and the active WAL
    /// segment's.
    gen: u64,
    last: Option<Retained>,
}

/// Durable storage for one engine: an append-only WAL plus incremental
/// chunked snapshots under one directory. Implements
/// [`cpqx_engine::DurabilitySink`]; obtain one wired to a recovered (or
/// freshly seeded) engine via [`crate::durable_engine`].
pub struct Store {
    dir: PathBuf,
    options: StoreOptions,
    wal_bytes: AtomicU64,
    inner: Mutex<Inner>,
}

impl Store {
    /// Assembles a store over an already-recovered (or just
    /// bootstrapped) directory; `wal_committed` is the committed prefix
    /// of segment `gen` (a torn tail beyond it is truncated away here).
    pub(crate) fn resume(
        dir: &Path,
        options: StoreOptions,
        gen: u64,
        wal_committed: u64,
        bytes_since_checkpoint: u64,
        last: Option<Retained>,
    ) -> io::Result<Store> {
        let wal = WalWriter::open(dir, gen, wal_committed)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            options,
            wal_bytes: AtomicU64::new(bytes_since_checkpoint),
            inner: Mutex::new(Inner { wal, gen, last }),
        })
    }

    /// Bootstraps a fresh directory: writes a full generation-1
    /// snapshot of `(graph, index)` (the WAL cannot reconstruct the
    /// seed state, so durability starts with a checkpoint) and opens
    /// segment 1 for appends.
    pub(crate) fn create(
        dir: &Path,
        options: StoreOptions,
        graph: &Graph,
        index: &CpqxIndex,
    ) -> io::Result<Store> {
        let (retained, _report) = write_generation(dir, 1, graph, index, None)?;
        Store::resume(dir, options, 1, 0, 0, Some(retained))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current snapshot generation (grows by one per checkpoint).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().gen
    }

    /// Best-effort cleanup after a checkpoint: drops WAL segments,
    /// manifests and snapshot files the new generation no longer
    /// references. Failures are ignored — stale files cost disk, not
    /// correctness, and the next checkpoint retries.
    fn collect_garbage(&self, m: &Manifest) {
        let referenced: std::collections::BTreeSet<u64> = std::iter::once(m.header.gen)
            .chain(m.topo.iter().map(|l| l.gen))
            .chain(m.names.iter().map(|l| l.gen))
            .chain(m.classes.iter().map(|l| l.gen))
            .collect();
        if let Ok(gens) = wal::list_segments(&self.dir) {
            for gen in gens {
                if gen < m.wal_gen {
                    let _ = std::fs::remove_file(wal::segment_path(&self.dir, gen));
                }
            }
        }
        if let Ok(gens) = manifest::list(&self.dir) {
            for gen in gens {
                if gen < m.gen {
                    let _ = std::fs::remove_file(self.dir.join(format!("manifest-{gen}")));
                }
            }
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(rest) = name.strip_prefix("snap-").and_then(|r| r.strip_suffix(".dat"))
                {
                    if let Ok(gen) = rest.parse::<u64>() {
                        if gen < m.gen && !referenced.contains(&gen) {
                            let _ = std::fs::remove_file(snap_path(&self.dir, gen));
                        }
                    }
                }
            }
        }
    }
}

impl DurabilitySink for Store {
    fn append(&self, graph: &Graph, ops: &[DeltaOp]) -> io::Result<u64> {
        let payload = wal::encode_ops(graph, ops);
        let mut inner = self.inner.lock().unwrap();
        let bytes = inner.wal.append(&payload, self.options.fsync)?;
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(bytes)
    }

    fn wal_bytes_since_checkpoint(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    fn checkpoint(&self, graph: &Graph, index: &CpqxIndex) -> io::Result<CheckpointReport> {
        let mut inner = self.inner.lock().unwrap();
        // Everything appended so far must be on disk before the snapshot
        // that supersedes it claims coverage.
        inner.wal.sync()?;
        let gen = inner.gen + 1;
        let (retained, report) =
            write_generation(&self.dir, gen, graph, index, inner.last.as_ref())?;
        // Rotate the log: the new manifest points replay at segment
        // `gen`, which starts empty.
        inner.wal = WalWriter::open(&self.dir, gen, 0)?;
        inner.gen = gen;
        inner.last = Some(retained);
        self.wal_bytes.store(0, Ordering::Relaxed);
        let m = manifest::load_current(&self.dir)?.expect("just-installed manifest must load");
        self.collect_garbage(&m);
        Ok(report)
    }
}

/// Writes generation `gen`: a snapshot file holding the header record
/// plus every chunk record *not* reusable from `last`, and the manifest
/// tying the generation together (WAL coverage starts at segment `gen`,
/// offset 0). Returns the retained image for the next increment and the
/// written/skipped tally.
fn write_generation(
    dir: &Path,
    gen: u64,
    graph: &Graph,
    index: &CpqxIndex,
    last: Option<&Retained>,
) -> io::Result<(Retained, CheckpointReport)> {
    let mut w = SnapshotWriter::create(dir, gen)?;
    let header = w.write_record(&encode_header(graph, index))?;
    let mut report = CheckpointReport::default();
    let mut chunk = |w: &mut SnapshotWriter,
                     reuse: Option<ChunkLoc>,
                     encode: &dyn Fn() -> Vec<u8>|
     -> io::Result<ChunkLoc> {
        if let Some(loc) = reuse {
            report.chunks_skipped += 1;
            Ok(loc)
        } else {
            report.chunks_written += 1;
            w.write_record(&encode())
        }
    };
    let mut topo = Vec::with_capacity(graph.topology_chunk_count());
    for i in 0..graph.topology_chunk_count() {
        let reuse = last
            .filter(|r| graph.topology_chunk_shared_with(&r.graph, i))
            .and_then(|r| r.topo.get(i).copied());
        topo.push(chunk(&mut w, reuse, &|| encode_topology_chunk(graph, i))?);
    }
    let mut names = Vec::with_capacity(graph.name_chunk_count());
    for i in 0..graph.name_chunk_count() {
        let reuse = last
            .filter(|r| graph.name_chunk_shared_with(&r.graph, i))
            .and_then(|r| r.names.get(i).copied());
        names.push(chunk(&mut w, reuse, &|| encode_name_chunk(graph, i))?);
    }
    let mut classes = Vec::with_capacity(index.class_chunk_count());
    for i in 0..index.class_chunk_count() {
        let reuse = last
            .filter(|r| index.class_chunk_shared_with(&r.index, i))
            .and_then(|r| r.classes.get(i).copied());
        classes.push(chunk(&mut w, reuse, &|| encode_class_chunk(index, i))?);
    }
    w.finish()?;
    let m = Manifest {
        gen,
        wal_gen: gen,
        wal_offset: 0,
        header,
        topo: topo.clone(),
        names: names.clone(),
        classes: classes.clone(),
    };
    manifest::install(dir, &m)?;
    let retained = Retained { graph: graph.clone(), index: index.clone(), topo, names, classes };
    Ok((retained, report))
}
