//! Build-equivalence differential harness for the fully parallel build
//! pipeline: random graphs + random interest sets are replayed through
//! the **sequential** builders (`CpqxIndex::build` /
//! `CpqxIndex::build_interest_aware`), the **sharded** full build
//! (`build_sharded`, parallel level-1 + per-range refinement) and the
//! **interest-sharded** build (`build_interest_sharded`) at 1–16
//! threads, asserting:
//!
//! * identical answers over the benchmark query sets (YAGO2/LUBM/WatDiv
//!   translations) on every pipeline at every thread count;
//! * the parallel level-1 pass yields a `RefinementBase` *structurally*
//!   equal to the sequential one (same `pair_blocks`, same `block_seqs`
//!   — not just query-equivalent);
//! * class counts are identical across thread counts for the sharded
//!   build (the merged partition is determined by the class invariant,
//!   not by the shard geometry), and the interest-sharded build matches
//!   the sequential interest build's class count *exactly* (both group
//!   by the same `(cyclicity, L≤k ∩ Lq)` key).

use cpqx_core::{CpqxIndex, RefinementBase};
use cpqx_engine::{build_interest_sharded, build_sharded, BuildOptions};
use cpqx_graph::generate::{gex, random_graph, RandomGraphConfig};
use cpqx_graph::{Graph, LabelSeq};
use cpqx_query::benchqueries::{lubm_queries, watdiv_queries, yago_queries, NamedQuery};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn bench_workload(g: &Graph, seed: u64) -> Vec<NamedQuery> {
    let mut queries = yago_queries(g, seed);
    queries.extend(lubm_queries(g, seed + 1));
    queries.extend(watdiv_queries(g, seed + 2));
    queries
}

/// A deterministic interest set drawn from the graph's extended alphabet:
/// `picks` selects length-2 sequences by label index pair. Returns raw
/// (un-normalized) sequences, as a caller would supply them.
fn interest_set(g: &Graph, picks: &[(u16, u16)]) -> Vec<LabelSeq> {
    let labels: Vec<_> = g.ext_labels().collect();
    if labels.is_empty() {
        return Vec::new();
    }
    picks
        .iter()
        .map(|&(a, b)| {
            LabelSeq::from_slice(&[
                labels[a as usize % labels.len()],
                labels[b as usize % labels.len()],
            ])
        })
        .collect()
}

/// The full-coverage interest set: every length-2 sequence over the
/// graph's extended alphabet (at k=2 this makes iaCPQx index everything
/// CPQx does).
fn full_coverage_interests(g: &Graph) -> Vec<LabelSeq> {
    let labels: Vec<_> = g.ext_labels().collect();
    labels
        .iter()
        .flat_map(|&a| labels.iter().map(move |&b| LabelSeq::from_slice(&[a, b])))
        .collect()
}

/// The tentpole assertion bundle: replays one graph + interest set
/// through all three pipelines at every thread count.
fn check_build_equivalence(g: &Graph, k: usize, interests: &[LabelSeq], seed: u64) {
    let queries = bench_workload(g, seed);
    assert!(!queries.is_empty());

    // Parallel level-1 is structurally identical to sequential.
    let seq_base = RefinementBase::new(g);
    for &threads in &THREAD_COUNTS[1..] {
        let par_base = RefinementBase::with_threads(g, threads);
        assert_eq!(
            seq_base.level1_pair_blocks(),
            par_base.level1_pair_blocks(),
            "level-1 pair_blocks diverge at {threads} threads"
        );
        assert_eq!(
            seq_base.level1_block_seqs(),
            par_base.level1_block_seqs(),
            "level-1 block_seqs diverge at {threads} threads"
        );
    }

    // Full CPQx: sequential vs sharded at every thread count.
    let sequential = CpqxIndex::build(g, k);
    let mut sharded_classes: Option<usize> = None;
    for &threads in &THREAD_COUNTS {
        let sharded =
            build_sharded(g, k, BuildOptions { shards: Some(threads), threads: Some(threads) });
        assert_eq!(sharded.pair_count(), sequential.pair_count(), "{threads} threads");
        // The merged class partition is determined by the (cyclicity,
        // L≤k) invariant alone, so every shard geometry produces the
        // same class count.
        let classes = sharded.stats().classes;
        match sharded_classes {
            None => sharded_classes = Some(classes),
            Some(c) => {
                assert_eq!(classes, c, "sharded class count varies with thread count {threads}")
            }
        }
        assert!(classes <= sequential.stats().classes, "merge can only coarsen");
        for nq in &queries {
            assert_eq!(
                sharded.evaluate(g, &nq.query),
                sequential.evaluate(g, &nq.query),
                "query {} diverged at {threads} threads (k={k})",
                nq.name
            );
        }
    }

    // Interest-aware: sequential vs interest-sharded at every thread
    // count — identical class counts, identical answers.
    let ia_seq = CpqxIndex::build_interest_aware(g, k, interests.iter().copied());
    for &threads in &THREAD_COUNTS {
        let ia_par = build_interest_sharded(
            g,
            k,
            interests.iter().copied(),
            BuildOptions { shards: Some(threads), threads: Some(threads) },
        );
        assert!(ia_par.is_interest_aware());
        assert_eq!(ia_par.interests(), ia_seq.interests(), "{threads} threads");
        assert_eq!(ia_par.pair_count(), ia_seq.pair_count(), "{threads} threads");
        assert_eq!(
            ia_par.stats().classes,
            ia_seq.stats().classes,
            "interest class count diverged at {threads} threads"
        );
        for nq in &queries {
            assert_eq!(
                ia_par.evaluate(g, &nq.query),
                ia_seq.evaluate(g, &nq.query),
                "interest query {} diverged at {threads} threads (k={k})",
                nq.name
            );
        }
    }
}

#[test]
fn gex_across_k_and_interest_sets() {
    let g = gex();
    let labels: Vec<_> = g.ext_labels().collect();
    let ff = LabelSeq::from_slice(&[labels[0], labels[0]]);
    for k in 1..=3 {
        check_build_equivalence(&g, k, &[ff], 7);
    }
    check_build_equivalence(&g, 2, &[], 11);
    check_build_equivalence(&g, 2, &full_coverage_interests(&g), 13);
}

#[test]
fn empty_and_edgeless_graphs() {
    let empty = cpqx_graph::GraphBuilder::new().build();
    let mut b = cpqx_graph::GraphBuilder::new();
    b.ensure_vertices(6);
    b.ensure_labels(2);
    let edgeless = b.build();
    for g in [&empty, &edgeless] {
        for &threads in &THREAD_COUNTS {
            let opts = BuildOptions { shards: Some(threads), threads: Some(threads) };
            assert_eq!(build_sharded(g, 2, opts).pair_count(), 0);
            assert_eq!(build_interest_sharded(g, 2, [], opts).pair_count(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The randomized tentpole property: random social graphs and random
    /// interest subsets (including the occasional empty pick list) replay
    /// identically through all three build pipelines at 1–16 threads.
    #[test]
    fn random_graphs_and_interest_sets(
        graph_seed in 0u64..10_000,
        workload_seed in 0u64..10_000,
        picks in prop::collection::vec((0u16..8, 0u16..8), 0..5),
    ) {
        let g = random_graph(&RandomGraphConfig::social(60, 260, 3, graph_seed));
        let interests = interest_set(&g, &picks);
        check_build_equivalence(&g, 2, &interests, workload_seed);
    }

    /// Uniform topology, separate seed space: catches balancing-sensitive
    /// bugs (uniform graphs produce very even ranges, social ones skewed).
    #[test]
    fn random_uniform_graphs(graph_seed in 0u64..10_000) {
        let g = random_graph(&RandomGraphConfig::uniform(80, 320, 3, graph_seed));
        let interests = full_coverage_interests(&g);
        check_build_equivalence(&g, 2, &interests, graph_seed);
    }
}
