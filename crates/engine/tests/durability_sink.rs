//! The engine side of the durability seam, driven through a mock
//! [`DurabilitySink`]: write-ahead ordering (append before install, an
//! append failure aborts the transaction), the WAL-bytes checkpoint
//! trigger, and the stats gauges — contracts the `cpqx-store`
//! integration tests exercise only on the happy path.

use cpqx_core::CpqxIndex;
use cpqx_engine::{CheckpointReport, Delta, DeltaOp, DurabilitySink, Engine, EngineOptions};
use cpqx_graph::generate::gex;
use cpqx_graph::{Graph, Label};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Records every interaction; `fail_appends` makes the next append
/// return an I/O error.
#[derive(Default)]
struct MockSink {
    appends: Mutex<Vec<(usize, usize)>>, // (ops in txn, graph edge count at append)
    bytes: AtomicU64,
    fail_appends: AtomicBool,
    checkpoints: AtomicU64,
}

impl DurabilitySink for MockSink {
    fn append(&self, graph: &Graph, ops: &[DeltaOp]) -> io::Result<u64> {
        if self.fail_appends.load(Ordering::Relaxed) {
            return Err(io::Error::other("disk on fire"));
        }
        self.appends.lock().unwrap().push((ops.len(), graph.edge_count()));
        let bytes = 10 * ops.len() as u64;
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok(bytes)
    }

    fn wal_bytes_since_checkpoint(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn checkpoint(&self, _graph: &Graph, _index: &CpqxIndex) -> io::Result<CheckpointReport> {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        Ok(CheckpointReport { chunks_written: 3, chunks_skipped: 7 })
    }
}

fn engine_with_sink(options: EngineOptions) -> (Engine, std::sync::Arc<MockSink>) {
    let (engine, _) = Engine::with_options(gex(), options);
    let sink = std::sync::Arc::new(MockSink::default());
    engine.attach_durability(sink.clone());
    (engine, sink)
}

#[test]
fn appends_carry_the_transaction_and_feed_the_gauges() {
    let (engine, sink) = engine_with_sink(EngineOptions { k: 2, ..EngineOptions::default() });
    let edges = engine.snapshot().graph().edge_count();

    // gex has no joe→sue follow edge, so 1→0 is a genuine insert.
    let delta = Delta::new().add_vertex("w").insert_edge(1, 0, Label(0));
    engine.apply_delta(&delta).expect("valid delta");

    // One append, carrying both ops, against the post-apply graph (the
    // record must describe the state the install will serve).
    assert_eq!(*sink.appends.lock().unwrap(), vec![(2, edges + 1)]);
    let stats = engine.stats();
    assert_eq!(stats.wal_appends, 1);
    assert_eq!(stats.wal_bytes, 20);
    assert_eq!(stats.snapshots_written, 0);

    // All-no-op transactions install nothing and must not be logged:
    // 0→1 (sue→joe) already exists in gex.
    let noop = Delta::new().insert_edge(0, 1, Label(0));
    let report = engine.apply_delta(&noop).expect("no-op delta is valid");
    assert_eq!(report.applied, 0);
    assert_eq!(engine.stats().wal_appends, 1);

    // Single-op convenience methods route through typed ops, so they
    // are durable too...
    assert!(engine.delete_edge(1, 0, Label(0)));
    assert_eq!(engine.stats().wal_appends, 2);

    // ...but closure-style transactions bypass the log by design (see
    // STORAGE.md): a new epoch installs, nothing is appended.
    let epoch = engine.epoch();
    engine.update(|_g, _idx| ());
    assert_eq!(engine.epoch(), epoch + 1);
    assert_eq!(engine.stats().wal_appends, 2);
}

#[test]
fn append_failure_aborts_the_transaction() {
    let (engine, sink) = engine_with_sink(EngineOptions { k: 2, ..EngineOptions::default() });
    let before_epoch = engine.epoch();
    let before_edges = engine.snapshot().graph().edge_count();

    sink.fail_appends.store(true, Ordering::Relaxed);
    let err = engine
        .apply_delta(&Delta::new().insert_edge(1, 0, Label(0)))
        .expect_err("append failure must reject the delta");
    assert!(err.reason.contains("WAL append failed"), "got: {}", err.reason);

    // Nothing installed, nothing counted: the snapshot is exactly the
    // pre-delta one.
    assert_eq!(engine.epoch(), before_epoch);
    assert_eq!(engine.snapshot().graph().edge_count(), before_edges);
    assert_eq!(engine.stats().wal_appends, 0);

    // The engine stays writable once the sink recovers.
    sink.fail_appends.store(false, Ordering::Relaxed);
    engine.apply_delta(&Delta::new().insert_edge(1, 0, Label(0))).expect("sink healthy again");
    assert_eq!(engine.epoch(), before_epoch + 1);
}

#[test]
fn checkpoint_fires_on_the_wal_bytes_threshold() {
    let mut options = EngineOptions { k: 2, ..EngineOptions::default() };
    options.durability.checkpoint_wal_bytes = Some(25);
    let (engine, sink) = engine_with_sink(options);

    // 2 ops = 20 mock bytes: under the threshold, no checkpoint.
    engine.apply_delta(&Delta::new().add_vertex("a").add_vertex("b")).expect("valid delta");
    assert_eq!(sink.checkpoints.load(Ordering::Relaxed), 0);

    // Next transaction pushes past 25 bytes: checkpoint inside the txn,
    // report lands in the gauges.
    engine.apply_delta(&Delta::new().add_vertex("c")).expect("valid delta");
    assert_eq!(sink.checkpoints.load(Ordering::Relaxed), 1);
    let stats = engine.stats();
    assert_eq!(stats.snapshots_written, 1);
    assert_eq!(stats.snapshot_chunks_skipped, 7);
}
