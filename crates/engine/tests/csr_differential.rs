//! Differential harness for the CSR read faces: every query answered
//! through the CSR fast paths must be byte-identical to the chunked-row
//! executor and to the hash-set reference oracle — across benchmark
//! queries, all templates, random CPQ trees, mutation-then-read
//! sequences, and concurrent readers. Also pins the snapshot-install
//! economics: untouched chunks carry their built faces across
//! `apply_delta` by `Arc` pointer, so a delta never re-pays CSR builds
//! it didn't invalidate.

use cpqx_core::CpqxIndex;
use cpqx_engine::delta::Delta;
use cpqx_engine::{Engine, EngineOptions, ExecOptions};
use cpqx_graph::{generate, ExtLabel, Graph, GraphBuilder};
use cpqx_query::eval::eval_reference;
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{benchqueries, Cpq, Template};
use rand::{Rng, SeedableRng};

/// A random social graph rebuilt with a tiny chunk weight so chunk
/// boundaries — and therefore per-chunk CSR faces — fall inside the data.
fn chunky_graph(vertices: u32, edges: usize, seed: u64) -> Graph {
    let g = generate::random_graph(&generate::RandomGraphConfig::social(vertices, edges, 3, seed));
    let mut b = GraphBuilder::new();
    for v in g.vertices() {
        b.vertex(g.vertex_name(v));
    }
    for l in g.labels() {
        b.label(g.label_name(l));
    }
    for (v, u, l) in g.base_edges() {
        b.add_edge(v, u, l);
    }
    b.build_with_chunk_weight(64)
}

fn csr_off() -> ExecOptions {
    ExecOptions { csr_faces: false, ..ExecOptions::default() }
}

/// CSR-face evaluation vs chunked-row evaluation vs the oracle, over the
/// three benchmark query sets and every template.
#[test]
fn csr_matches_rows_on_benchqueries_and_templates() {
    let g = chunky_graph(220, 900, 11);
    let idx = CpqxIndex::build(&g, 2);
    let mut queries: Vec<(String, Cpq)> = Vec::new();
    for nq in benchqueries::yago_queries(&g, 3)
        .into_iter()
        .chain(benchqueries::lubm_queries(&g, 4))
        .chain(benchqueries::watdiv_queries(&g, 5))
    {
        queries.push((nq.name, nq.query));
    }
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 17);
    for &t in &Template::ALL {
        for (i, q) in gen.queries(t, 2, &probe).into_iter().enumerate() {
            queries.push((format!("{}#{i}", t.name()), q));
        }
    }
    for (name, q) in &queries {
        let oracle = eval_reference(&g, q);
        assert_eq!(idx.evaluate_with_options(&g, q, csr_off()), oracle, "{name} rows vs oracle");
        assert_eq!(
            idx.evaluate_with_options(&g, q, ExecOptions::default()),
            oracle,
            "{name} csr vs oracle"
        );
    }
}

/// Random CPQ ASTs (not just templates): the structural fuzz of the core
/// crate, replayed through both read paths.
#[test]
fn csr_matches_rows_on_random_cpq_trees() {
    fn random_cpq(rng: &mut impl Rng, depth: usize, nl: u16) -> Cpq {
        if depth == 0 || rng.gen_bool(0.4) {
            if rng.gen_bool(0.08) {
                Cpq::Id
            } else {
                Cpq::ext(ExtLabel(rng.gen_range(0..nl)))
            }
        } else if rng.gen_bool(0.5) {
            Cpq::Join(
                Box::new(random_cpq(rng, depth - 1, nl)),
                Box::new(random_cpq(rng, depth - 1, nl)),
            )
        } else {
            Cpq::Conj(
                Box::new(random_cpq(rng, depth - 1, nl)),
                Box::new(random_cpq(rng, depth - 1, nl)),
            )
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(29);
    let g = chunky_graph(150, 600, 13);
    let idx = CpqxIndex::build(&g, 2);
    for i in 0..80 {
        let q = random_cpq(&mut rng, 3, g.ext_label_count());
        let rows = idx.evaluate_with_options(&g, &q, csr_off());
        let csr = idx.evaluate_with_options(&g, &q, ExecOptions::default());
        assert_eq!(csr, rows, "fuzz case {i}: {q:?}");
        assert_eq!(csr, eval_reference(&g, &q), "fuzz case {i} vs oracle: {q:?}");
    }
}

/// Mutate-then-read through the engine: after every delta the freshly
/// installed snapshot must answer from the *new* topology (no stale CSR
/// face can leak through the install), while a reader pinned on the old
/// snapshot keeps the old answers.
#[test]
fn mutated_snapshots_never_serve_stale_faces() {
    let g = chunky_graph(200, 800, 19);
    let (engine, _) = Engine::with_options(
        g,
        EngineOptions { k: 2, result_cache_capacity: 0, ..EngineOptions::default() },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let probe_queries: Vec<Cpq> = {
        let snap = engine.snapshot();
        let probe = GraphProbe(snap.graph());
        let mut gen = WorkloadGen::new(snap.graph(), 23);
        Template::ALL.iter().flat_map(|&t| gen.queries(t, 1, &probe)).collect()
    };
    for round in 0..6 {
        let before = engine.snapshot();
        before.graph().ensure_csr(); // warm faces, then mutate
        let labels: Vec<_> = before.graph().labels().collect();
        let n = before.graph().vertex_count();
        let delta = if round % 3 == 2 {
            let (v, u, l) = before.graph().base_edges().next().unwrap();
            Delta::new().delete_edge(v, u, l)
        } else {
            Delta::new().insert_edge(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                labels[rng.gen_range(0..labels.len())],
            )
        };
        engine.apply_delta(&delta).unwrap();
        let after = engine.snapshot();
        for q in &probe_queries {
            assert_eq!(
                after.evaluate(q),
                eval_reference(after.graph(), q),
                "round {round}: stale read after the delta"
            );
            assert_eq!(
                before.evaluate(q),
                eval_reference(before.graph(), q),
                "round {round}: pinned reader drifted"
            );
        }
    }
}

/// Untouched chunks keep their built CSR faces across a delta install:
/// the new snapshot's cache `Arc`-shares with the old wherever the
/// topology chunk itself was shared, so a small write re-pays face
/// construction only where it invalidated.
#[test]
fn snapshot_install_shares_untouched_faces() {
    let g = chunky_graph(300, 1200, 7);
    let (engine, _) = Engine::with_options(
        g,
        EngineOptions { k: 2, result_cache_capacity: 0, ..EngineOptions::default() },
    );
    let before = engine.snapshot();
    before.graph().ensure_csr();
    let (v, u, l) = before.graph().base_edges().next().unwrap();
    engine.apply_delta(&Delta::new().delete_edge(v, u, l)).unwrap();
    let after = engine.snapshot();
    let bg = before.graph();
    let ag = after.graph();
    assert_eq!(bg.topology_chunk_count(), ag.topology_chunk_count());
    let mut shared = 0usize;
    for i in 0..ag.topology_chunk_count() {
        if ag.topology_chunk_shared_with(bg, i) {
            assert!(
                ag.csr_shared_with(bg, i),
                "untouched chunk {i} must carry its face across the install"
            );
            shared += 1;
        } else {
            assert!(!ag.csr_built(i), "touched chunk {i} must drop its face");
        }
    }
    assert!(shared > 0, "a one-edge delta must leave most chunks shared");
}

/// Concurrent readers racing lazy face builds on a shared snapshot, at
/// 1, 4, 8 and 16 threads: every thread gets the oracle's answer.
#[test]
fn concurrent_csr_reads_agree_with_oracle() {
    let g = chunky_graph(180, 700, 31);
    let idx = CpqxIndex::build(&g, 2);
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 37);
    let queries: Vec<Cpq> = Template::ALL.iter().flat_map(|&t| gen.queries(t, 1, &probe)).collect();
    let expected: Vec<Vec<cpqx_graph::Pair>> =
        queries.iter().map(|q| eval_reference(&g, q)).collect();
    for threads in [1usize, 4, 8, 16] {
        let fresh = g.clone(); // clone shares chunks but we re-race builds
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for (q, want) in queries.iter().zip(&expected) {
                        assert_eq!(
                            &idx.evaluate_with_options(&fresh, q, ExecOptions::default()),
                            want
                        );
                    }
                });
            }
        });
    }
}

/// The engine-level ablation seam: an engine built with `csr_faces:
/// false` serves the same answers as the default engine.
#[test]
fn engine_exec_options_seam_is_answer_invariant() {
    let g = chunky_graph(160, 650, 43);
    let (on, _) = Engine::with_options(g.clone(), EngineOptions { k: 2, ..Default::default() });
    let (off, _) =
        Engine::with_options(g, EngineOptions { k: 2, exec: csr_off(), ..Default::default() });
    let snap = on.snapshot();
    let probe = GraphProbe(snap.graph());
    let mut gen = WorkloadGen::new(snap.graph(), 53);
    for &t in &Template::ALL {
        for q in gen.queries(t, 2, &probe) {
            assert_eq!(on.query(&q), off.query(&q), "{}", t.name());
        }
    }
}
