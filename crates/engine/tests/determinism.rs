//! Sharded-parallel build determinism: for every workload the repository
//! ships — the benchmark query sets (YAGO2/LUBM/WatDiv translations) and
//! random template workloads — the sharded build must answer exactly like
//! the sequential `CpqxIndex::build`, at every shard count, on the
//! paper's example graph and on generated graphs of both topologies.

use cpqx_core::CpqxIndex;
use cpqx_engine::{build_sharded, BuildOptions};
use cpqx_graph::generate::{gex, random_graph, RandomGraphConfig};
use cpqx_graph::Graph;
use cpqx_query::benchqueries::{lubm_queries, watdiv_queries, yago_queries, NamedQuery};
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{Cpq, Template};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn bench_workload(g: &Graph, seed: u64) -> Vec<NamedQuery> {
    let mut queries = yago_queries(g, seed);
    queries.extend(lubm_queries(g, seed + 1));
    queries.extend(watdiv_queries(g, seed + 2));
    queries
}

fn assert_build_equivalence(g: &Graph, k: usize, queries: &[(String, Cpq)]) {
    assert!(!queries.is_empty(), "workload must not be empty");
    let sequential = CpqxIndex::build(g, k);
    for shards in SHARD_COUNTS {
        let sharded = build_sharded(g, k, BuildOptions { shards: Some(shards), threads: Some(4) });
        assert_eq!(sharded.pair_count(), sequential.pair_count(), "{shards} shards");
        assert_eq!(sharded.k(), sequential.k());
        for (name, q) in queries {
            assert_eq!(
                sharded.evaluate(g, q),
                sequential.evaluate(g, q),
                "query {name} diverged at {shards} shards (k={k})"
            );
            assert_eq!(
                sharded.evaluate_first(g, q).is_some(),
                sequential.evaluate_first(g, q).is_some(),
                "first-answer emptiness diverged for {name} at {shards} shards"
            );
        }
    }
}

fn named(queries: Vec<NamedQuery>) -> Vec<(String, Cpq)> {
    queries.into_iter().map(|nq| (nq.name, nq.query)).collect()
}

#[test]
fn benchqueries_agree_on_gex() {
    let g = gex();
    for k in 1..=3 {
        assert_build_equivalence(&g, k, &named(bench_workload(&g, 7)));
    }
}

#[test]
fn benchqueries_agree_on_social_graph() {
    let g = random_graph(&RandomGraphConfig::social(150, 700, 4, 21));
    assert_build_equivalence(&g, 2, &named(bench_workload(&g, 5)));
}

#[test]
fn benchqueries_agree_on_uniform_graph() {
    let g = random_graph(&RandomGraphConfig::uniform(120, 500, 3, 33));
    assert_build_equivalence(&g, 2, &named(bench_workload(&g, 9)));
}

#[test]
fn template_workloads_agree_across_shard_counts() {
    let g = random_graph(&RandomGraphConfig::social(100, 450, 3, 5));
    let probe = GraphProbe(&g);
    let mut gen = WorkloadGen::new(&g, 13);
    let queries: Vec<(String, Cpq)> = Template::ALL
        .iter()
        .flat_map(|&t| {
            gen.queries(t, 3, &probe)
                .into_iter()
                .enumerate()
                .map(move |(i, q)| (format!("{}#{i}", t.name()), q))
        })
        .collect();
    assert_build_equivalence(&g, 2, &queries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property-tested over graph seeds and workload seeds: the bench
    /// workload generated for a random graph answers identically on the
    /// sequential and sharded builds.
    #[test]
    fn random_graphs_and_workloads_agree(
        graph_seed in 0u64..200,
        workload_seed in 0u64..200,
        shards in 2usize..9,
    ) {
        let g = random_graph(&RandomGraphConfig::social(70, 300, 3, graph_seed));
        let sequential = CpqxIndex::build(&g, 2);
        let sharded = build_sharded(
            &g,
            2,
            BuildOptions { shards: Some(shards), threads: Some(3) },
        );
        for nq in bench_workload(&g, workload_seed) {
            prop_assert_eq!(
                sharded.evaluate(&g, &nq.query),
                sequential.evaluate(&g, &nq.query),
                "query {} diverged (graph seed {}, {} shards)",
                nq.name,
                graph_seed,
                shards
            );
        }
    }
}

#[test]
fn stats_reflect_equivalent_pair_universe() {
    // Class counts may legitimately differ (merging by the class invariant
    // can coarsen block-signature classes), but the pair universe, k, and
    // per-pair sequences cannot.
    let g = random_graph(&RandomGraphConfig::social(90, 400, 3, 2));
    let sequential = CpqxIndex::build(&g, 2);
    let sharded = build_sharded(&g, 2, BuildOptions { shards: Some(4), threads: Some(4) });
    let (ss, ps) = (sequential.stats(), sharded.stats());
    assert_eq!(ss.pairs, ps.pairs);
    assert_eq!(ss.k, ps.k);
    assert!(ps.classes <= ss.classes, "sharded merge can only coarsen");
    for v in g.vertices() {
        for u in g.vertices() {
            let p = cpqx_graph::Pair::new(v, u);
            match (sequential.class_of(p), sharded.class_of(p)) {
                (None, None) => {}
                (Some(cs), Some(cp)) => {
                    assert_eq!(
                        sequential.class_sequences(cs),
                        sharded.class_sequences(cp),
                        "pair {p:?} carries different L≤k"
                    );
                    assert_eq!(sequential.class_is_loop(cs), sharded.class_is_loop(cp));
                }
                (a, b) => panic!("pair {p:?} indexed on one side only: {a:?} vs {b:?}"),
            }
        }
    }
}
