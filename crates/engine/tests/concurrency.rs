//! Concurrency: reader threads must serve correct, snapshot-consistent
//! answers while maintenance continuously installs new snapshots, and a
//! pinned snapshot must stay valid for as long as a reader holds it.

use cpqx_engine::{BatchOptions, Engine};
use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_graph::{Graph, Label};
use cpqx_query::eval::eval_reference;
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{Cpq, Template};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn test_graph(seed: u64) -> Graph {
    random_graph(&RandomGraphConfig::social(60, 260, 3, seed))
}

fn small_workload(g: &Graph, seed: u64) -> Vec<Cpq> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, seed);
    [Template::C2, Template::T, Template::C2i, Template::S]
        .iter()
        .flat_map(|&t| gen.queries(t, 2, &probe))
        .collect()
}

/// N reader threads hammer the engine while the writer applies edge
/// deletions and insertions. Every reader pins a snapshot per iteration
/// and checks the engine's answer for that snapshot against the naive
/// reference evaluated on that snapshot's graph — exact consistency, not
/// just absence of crashes.
#[test]
fn readers_stay_consistent_during_swaps() {
    const READERS: usize = 6;
    let g = test_graph(1);
    let queries = Arc::new(small_workload(&g, 11));
    assert!(!queries.is_empty());
    let engine = Arc::new(Engine::build(g, 2));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..READERS {
            let engine = Arc::clone(&engine);
            let queries = Arc::clone(&queries);
            let stop = Arc::clone(&stop);
            readers.push(scope.spawn(move || {
                let mut served = 0u64;
                let mut epochs_seen = std::collections::BTreeSet::new();
                while !stop.load(Ordering::Relaxed) {
                    let q = &queries[(served as usize + r) % queries.len()];
                    let snap = engine.snapshot();
                    epochs_seen.insert(snap.epoch());
                    let got = engine.query_on(&snap, q);
                    let expected = eval_reference(snap.graph(), q);
                    assert_eq!(*got, expected, "reader {r} diverged at epoch {}", snap.epoch());
                    served += 1;
                }
                (served, epochs_seen.len())
            }));
        }

        // Writer: churn edges sampled from the current snapshot, forcing
        // snapshot swaps under read load.
        let mut swaps = 0;
        for round in 0..30 {
            let snap = engine.snapshot();
            let g = snap.graph();
            let edges = cpqx_graph::generate::sample_edges(g, 3, round);
            for (v, u, l) in &edges {
                if engine.delete_edge(*v, *u, *l) {
                    swaps += 1;
                }
            }
            for (v, u, l) in &edges {
                if engine.insert_edge(*v, *u, *l) {
                    swaps += 1;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);

        let mut total_served = 0;
        let mut max_epochs = 0;
        for h in readers {
            let (served, epochs) = h.join().expect("reader panicked");
            total_served += served;
            max_epochs = max_epochs.max(epochs);
        }
        assert!(swaps > 0, "writer must actually install snapshots");
        assert_eq!(engine.epoch(), swaps as u64);
        assert!(total_served > 0, "readers must have served queries");
        assert!(
            max_epochs > 1,
            "at least one reader should observe multiple epochs ({total_served} served)"
        );
        assert_eq!(engine.stats().snapshot_swaps, swaps as u64);
    });
}

/// A pinned snapshot keeps answering with its own version even after many
/// later swaps (readers are never invalidated mid-flight).
#[test]
fn pinned_snapshot_survives_later_swaps() {
    let g = test_graph(2);
    let queries = small_workload(&g, 5);
    let engine = Engine::build(g, 2);
    let pinned = engine.snapshot();
    let before: Vec<_> = queries.iter().map(|q| pinned.evaluate(q)).collect();

    // Mutate heavily: delete a third of all edges.
    let snap = engine.snapshot();
    let edges: Vec<_> = snap.graph().base_edges().collect();
    for (i, &(v, u, l)) in edges.iter().enumerate() {
        if i % 3 == 0 {
            engine.delete_edge(v, u, l);
        }
    }
    assert!(engine.epoch() > 0);

    // The pinned snapshot still evaluates exactly as before…
    for (q, old) in queries.iter().zip(&before) {
        assert_eq!(pinned.evaluate(q), *old);
        assert_eq!(eval_reference(pinned.graph(), q), *old);
    }
    // …while the current snapshot reflects the deletions.
    let now = engine.snapshot();
    assert!(now.epoch() > pinned.epoch());
    for q in &queries {
        assert_eq!(*engine.query(q), eval_reference(now.graph(), q));
    }
}

/// Batches pin one snapshot: a concurrent writer cannot make a batch see
/// two different graph versions.
#[test]
fn batches_are_snapshot_consistent_under_writes() {
    let g = test_graph(3);
    let queries = small_workload(&g, 17);
    let engine = Arc::new(Engine::build(g, 2));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writer = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = engine.snapshot();
                    for (v, u, l) in cpqx_graph::generate::sample_edges(snap.graph(), 2, round) {
                        engine.delete_edge(v, u, l);
                        engine.insert_edge(v, u, l);
                    }
                    round += 1;
                }
            })
        };

        for _ in 0..12 {
            let out = engine.evaluate_batch(
                &queries,
                BatchOptions { threads: Some(4), ..BatchOptions::default() },
            );
            // All answers must be the reference answers of ONE epoch's
            // graph. Recompute against the epoch the batch reports.
            let snap = engine.snapshot();
            if snap.epoch() == out.epoch {
                for (q, r) in queries.iter().zip(&out.results) {
                    assert_eq!(**r, eval_reference(snap.graph(), q));
                }
            }
            assert_eq!(out.results.len(), queries.len());
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer panicked");
    });
}

/// Concurrent writers serialize; no update is lost.
#[test]
fn concurrent_writers_serialize() {
    let mut b = cpqx_graph::GraphBuilder::new();
    b.ensure_vertices(64);
    b.ensure_labels(1);
    b.add_edge(1, 0, Label(0)); // outside the writers' (even, even+1) pattern
    let g = b.build();
    let engine = Arc::new(Engine::build(g, 2));

    std::thread::scope(|scope| {
        for w in 0..4u32 {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for i in 0..8u32 {
                    let v = 2 * (8 * w + i);
                    assert!(engine.insert_edge(v, v + 1, Label(0)));
                }
            });
        }
    });

    // 4 writers × 8 inserts, all distinct edges → 32 swaps + every edge
    // present in the final snapshot.
    assert_eq!(engine.epoch(), 32);
    let snap = engine.snapshot();
    assert_eq!(snap.graph().edge_count(), 33);
    for w in 0..4u32 {
        for i in 0..8u32 {
            let v = 2 * (8 * w + i);
            assert!(snap.graph().has_edge(v, v + 1, Label(0).fwd()), "lost edge {v}");
        }
    }
}
