//! Structural-sharing properties of the copy-on-write write path: a
//! delta transaction's snapshot must share every untouched chunk with
//! the snapshot it replaced (`Arc::ptr_eq`, surfaced through
//! `cow_diff`), old-epoch readers pinned across the install must keep
//! answering from their version, and the `deep_clone_writes` comparison
//! switch must change cost only — never results.

use cpqx_engine::delta::Delta;
use cpqx_engine::{Engine, EngineOptions};
use cpqx_graph::{generate, Graph, GraphBuilder};
use cpqx_query::eval::eval_reference;
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{Cpq, Template};

/// A random social graph rebuilt with a tiny chunk weight so the COW
/// chunk boundaries fall *inside* the data even at test scale.
fn chunky_graph(vertices: u32, edges: usize, seed: u64) -> Graph {
    let g = generate::random_graph(&generate::RandomGraphConfig::social(vertices, edges, 3, seed));
    let mut b = GraphBuilder::new();
    for v in g.vertices() {
        b.vertex(g.vertex_name(v));
    }
    for l in g.labels() {
        b.label(g.label_name(l));
    }
    for (v, u, l) in g.base_edges() {
        b.add_edge(v, u, l);
    }
    b.build_with_chunk_weight(64)
}

fn workload(g: &Graph) -> Vec<Cpq> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, 7);
    Template::ALL.iter().flat_map(|&t| gen.queries(t, 2, &probe)).collect()
}

#[test]
fn small_delta_shares_untouched_chunks() {
    // A long path whose vertex ids are consecutive along the walk: the
    // pairs a mid-path edge flip can affect all live within distance k of
    // the endpoints, i.e. in a handful of adjacent id ranges — the
    // locality the chunked stores turn into structural sharing. (On
    // hub-heavy graphs one edge can legitimately touch classes in many
    // chunks; sharing then shows at real scale, not at 300 vertices.)
    let labels: Vec<String> = (0..4000).map(|i| format!("l{}", i % 3)).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let path = generate::labeled_path(&label_refs);
    let mut b = GraphBuilder::new();
    for v in path.vertices() {
        b.vertex(path.vertex_name(v));
    }
    for l in path.labels() {
        b.label(path.label_name(l));
    }
    for (v, u, l) in path.base_edges() {
        b.add_edge(v, u, l);
    }
    let g = b.build_with_chunk_weight(64);
    let (engine, _) = Engine::with_options(
        g,
        EngineOptions { k: 2, auto_rebuild_ratio: None, ..EngineOptions::default() },
    );
    let snap0 = engine.snapshot();
    assert!(snap0.graph().chunk_count() > 20, "test graph must span many chunks");
    assert!(snap0.index().chunk_count() > 2, "index must span several chunks/shards");

    let (v, u, l) = snap0.graph().base_edges().nth(2000).expect("mid-path edge");
    let report = engine
        .apply_delta(&Delta::new().delete_edge(v, u, l).insert_edge(v, u, l))
        .expect("valid delta");
    assert_eq!(report.applied, 2);

    let snap1 = engine.snapshot();
    let gd = snap1.graph().cow_diff(snap0.graph());
    // The edge touches at most the two endpoint chunks.
    assert!(gd.chunks_copied <= 2, "graph copied more than the endpoint chunks: {gd:?}");
    assert_eq!(gd.chunks_copied + gd.chunks_shared, snap1.graph().chunk_count());
    assert!(gd.chunks_shared > gd.chunks_copied, "most graph chunks must stay shared: {gd:?}");

    let id = snap1.index().cow_diff(snap0.index());
    assert!(id.chunks_shared > 0, "index stores must share untouched chunks: {id:?}");
    assert_eq!(id.chunks_copied + id.chunks_shared, snap1.index().chunk_count());

    // The engine's cumulative gauges agree with the per-snapshot diffs.
    let stats = engine.stats();
    assert_eq!(stats.cow_chunks_copied, (gd.chunks_copied + id.chunks_copied) as u64);
    assert_eq!(stats.cow_chunks_shared, (gd.chunks_shared + id.chunks_shared) as u64);
}

#[test]
fn pinned_old_epoch_readers_survive_writes() {
    let g = chunky_graph(200, 800, 23);
    let engine = Engine::build(g, 2);
    let snap0 = engine.snapshot();
    let queries = workload(snap0.graph());
    let expected0: Vec<_> = queries.iter().map(|q| eval_reference(snap0.graph(), q)).collect();

    // Stream several small deltas; after each install, the pinned epoch-0
    // snapshot must still answer exactly as before the writes — its
    // shared chunks are immutable, only the writer's copies moved on.
    for (i, &(v, u, l)) in generate::sample_edges(snap0.graph(), 6, 5).iter().enumerate() {
        engine.apply_delta(&Delta::new().delete_edge(v, u, l)).expect("valid delta");
        assert_eq!(engine.epoch(), i as u64 + 1);
        for (q, want) in queries.iter().zip(&expected0) {
            assert_eq!(&snap0.evaluate(q), want, "pinned reader torn at epoch {}", i + 1);
        }
    }
    // And the live snapshot matches sequential evaluation of the mutated
    // graph.
    let live = engine.snapshot();
    for q in &queries {
        assert_eq!(*engine.query(q), eval_reference(live.graph(), q), "{q:?}");
    }
}

#[test]
fn deep_clone_writes_change_cost_not_results() {
    let g = chunky_graph(120, 500, 31);
    let (cow, _) = Engine::with_options(
        g.clone(),
        EngineOptions { k: 2, auto_rebuild_ratio: None, ..EngineOptions::default() },
    );
    let (deep, _) = Engine::with_options(
        g,
        EngineOptions {
            k: 2,
            auto_rebuild_ratio: None,
            deep_clone_writes: true,
            ..EngineOptions::default()
        },
    );
    let edges = generate::sample_edges(cow.snapshot().graph(), 4, 9);
    for &(v, u, l) in &edges {
        let d = Delta::new().delete_edge(v, u, l).insert_edge(v, u, l);
        cow.apply_delta(&d).expect("cow delta");
        deep.apply_delta(&d).expect("deep delta");
    }
    let queries = workload(cow.snapshot().graph());
    for q in &queries {
        assert_eq!(*cow.query(q), *deep.query(q), "write paths diverged on {q:?}");
    }
    // The deep path shares nothing; the COW path must have kept sharing.
    let (cs, ds) = (cow.stats(), deep.stats());
    assert_eq!(ds.cow_chunks_shared, 0, "deep clones share nothing");
    assert!(cs.cow_chunks_shared > 0, "COW clones must share");
    assert!(cs.cow_chunks_copied < ds.cow_chunks_copied);
}

/// Engine-level regression for the empty-baseline fragmentation misfire:
/// an engine seeded with an edgeless graph and an aggressive rebuild
/// threshold must not thrash auto-rebuilds on its first inserts.
#[test]
fn empty_seeded_engine_does_not_thrash_rebuilds() {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(16);
    b.ensure_labels(2);
    let (engine, _) = Engine::with_options(
        b.build(),
        EngineOptions { k: 2, auto_rebuild_ratio: Some(1.5), ..EngineOptions::default() },
    );
    assert_eq!(engine.stats().baseline_classes, 0);
    // The first insert used to read as `ratio = class_slots` (baseline 0
    // fell into `.max(1)`), instantly tripping the 1.5 threshold. Now it
    // re-baselines: no rebuild, ratio exactly 1.0.
    let report = engine
        .apply_delta(&Delta::new().insert_edge(0, 1, cpqx_graph::Label(0)))
        .expect("valid delta");
    assert!(!report.rebuilt, "first growth must re-baseline, not rebuild");
    assert!((report.fragmentation_ratio - 1.0).abs() < 1e-9);
    let stats = engine.stats();
    assert_eq!(stats.auto_rebuilds, 0);
    assert!(stats.baseline_classes > 0, "baseline snapped to the first real classes");
    // Later growth fragments against that real baseline as usual (a
    // rebuild may then fire legitimately — that is policy, not thrash).
    for v in 1..15u32 {
        engine
            .apply_delta(&Delta::new().insert_edge(v, v + 1, cpqx_graph::Label(v as u16 % 2)))
            .expect("valid delta");
    }
    let stats = engine.stats();
    assert!(
        stats.auto_rebuilds < stats.delta_transactions,
        "not every transaction may rebuild: {stats}"
    );
    // Serving is correct on the grown graph.
    let snap = engine.snapshot();
    let q = cpqx_query::parse_cpq("l0 . l1", snap.graph()).unwrap();
    assert_eq!(*engine.query(&q), eval_reference(snap.graph(), &q));
}
