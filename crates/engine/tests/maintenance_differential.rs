//! Differential test harness for the typed delta write path
//! (model-based, in the style of RPQ-engine validation): random `Delta`
//! transactions stream through `Engine::apply_delta` (the lazy
//! maintenance path) while a reference copy of the graph receives the
//! same mutations and is **fully rebuilt** after every transaction —
//! the two must answer every workload query identically at every step,
//! whatever fragmentation the lazy path has accumulated and even when
//! the auto-rebuild threshold fires mid-sequence.
//!
//! All randomness comes from the deterministic proptest shim, so a CI
//! failure replays exactly (the shim prints the failing case number).

use cpqx_core::CpqxIndex;
use cpqx_engine::delta::{Delta, DeltaOp, OpOutcome};
use cpqx_engine::{Engine, EngineOptions};
use cpqx_graph::{generate, Graph, Label, LabelSeq};
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{Cpq, Template};
use proptest::prelude::*;

/// A raw op blueprint: mapped onto the *current* graph shape right
/// before each transaction, so vertex picks stay in range however many
/// vertices earlier transactions added.
type RawOp = (u8, u32, u32, u16);

fn raw_txn() -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((0u8..6, any::<u32>(), any::<u32>(), any::<u16>()), 4..16)
}

/// Lowers raw ops onto the current graph: vertex/label picks taken
/// modulo the live counts, with `AddVertex` ops extending the range for
/// later ops of the same transaction (exercising the in-delta id
/// visibility rule).
fn lower(raw: &[RawOp], g: &Graph, txn: usize) -> Delta {
    let labels = g.base_label_count();
    let mut vertices = g.vertex_count();
    let mut ops = Vec::with_capacity(raw.len());
    for (i, &(kind, a, b, l)) in raw.iter().enumerate() {
        let src = a % vertices;
        let dst = b % vertices;
        let label = Label(l % labels);
        ops.push(match kind {
            0 => DeltaOp::InsertEdge { src, dst, label },
            1 => DeltaOp::DeleteEdge { src, dst, label },
            2 => DeltaOp::ChangeEdgeLabel { src, dst, from: label, to: Label((l + 1) % labels) },
            3 => {
                vertices += 1;
                DeltaOp::AddVertex { name: format!("t{txn}-v{i}") }
            }
            4 => DeltaOp::DeleteVertex { vertex: src },
            // Insert an edge incident to the newest vertex so AddVertex
            // ops are not dead weight.
            _ => DeltaOp::InsertEdge { src: vertices - 1, dst, label },
        });
    }
    Delta::from(ops)
}

/// Applies the same semantics to the reference graph, without any index.
fn apply_to_reference(delta: &Delta, g: &mut Graph) {
    for op in delta.ops() {
        match op {
            DeltaOp::InsertEdge { src, dst, label } => {
                g.insert_edge(*src, *dst, *label);
            }
            DeltaOp::DeleteEdge { src, dst, label } => {
                g.remove_edge(*src, *dst, *label);
            }
            DeltaOp::ChangeEdgeLabel { src, dst, from, to } => {
                if g.remove_edge(*src, *dst, *from) {
                    g.insert_edge(*src, *dst, *to);
                }
            }
            DeltaOp::AddVertex { name } => {
                g.add_vertex(name.clone());
            }
            DeltaOp::DeleteVertex { vertex } => {
                g.isolate_vertex(*vertex);
            }
            DeltaOp::InsertInterest { .. } | DeltaOp::DeleteInterest { .. } => {}
        }
    }
}

fn workload(g: &Graph, seed: u64) -> Vec<Cpq> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, seed);
    Template::ALL.iter().flat_map(|&t| gen.queries(t, 2, &probe)).collect()
}

proptest! {
    // 32 cases × 8 transactions = 256 differentially verified random
    // transactions (the acceptance floor for this harness).
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn apply_delta_matches_full_rebuild(
        seed in 0u64..10_000,
        txns in prop::collection::vec(raw_txn(), 8..9),
    ) {
        let g0 = generate::random_graph(&generate::RandomGraphConfig::social(
            60, 240, 3, seed,
        ));
        let queries = workload(&g0, seed ^ 0x51);
        prop_assert!(queries.len() >= 8, "workload too small to be meaningful");
        // A low-ish threshold so some sequences cross it and the
        // differential also covers the auto-rebuild path.
        let (engine, _) = Engine::with_options(
            g0.clone(),
            EngineOptions { k: 2, auto_rebuild_ratio: Some(1.5), ..EngineOptions::default() },
        );
        let mut reference = g0;
        for (t, raw) in txns.iter().enumerate() {
            let delta = lower(raw, engine.snapshot().graph(), t);
            let report = engine.apply_delta(&delta).expect("lowered deltas are valid");
            apply_to_reference(&delta, &mut reference);
            prop_assert_eq!(report.epoch, engine.epoch(), "sole writer pins the epoch");
            // Model check: the engine's graph and the reference evolved
            // identically.
            let snap = engine.snapshot();
            prop_assert_eq!(snap.graph().vertex_count(), reference.vertex_count());
            prop_assert_eq!(snap.graph().edge_count(), reference.edge_count());
            // Differential check: lazy maintenance (possibly rebuilt by
            // the threshold) vs. a from-scratch build on the reference.
            let fresh = CpqxIndex::build(&reference, 2);
            for q in &queries {
                prop_assert_eq!(
                    &*engine.query(q),
                    &fresh.evaluate(&reference, q),
                    "txn {} diverged for {:?}",
                    t,
                    q
                );
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.delta_transactions, txns.len() as u64);
        prop_assert!(stats.fragmentation_ratio >= 1.0);
    }

}

// The same harness over the interest-aware index, with interest
// registration/removal mixed into the transactions; the reference
// rebuild uses the engine's own current interest set.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interest_aware_apply_delta_matches_full_rebuild(
        seed in 0u64..10_000,
        txns in prop::collection::vec(raw_txn(), 4..5),
    ) {
        let g0 = generate::random_graph(&generate::RandomGraphConfig::uniform(
            40, 160, 3, seed,
        ));
        let labels = g0.base_label_count();
        let interests: Vec<LabelSeq> = (0..labels)
            .map(|l| LabelSeq::from_slice(&[Label(l).fwd(), Label((l + 1) % labels).fwd()]))
            .collect();
        let queries = workload(&g0, seed ^ 0x77);
        let (engine, _) = Engine::with_options(
            g0.clone(),
            EngineOptions { k: 2, interests: Some(interests), ..EngineOptions::default() },
        );
        let mut reference = g0;
        for (t, raw) in txns.iter().enumerate() {
            let mut delta = lower(raw, engine.snapshot().graph(), t);
            // Mix in interest churn derived from the raw ops.
            let (_, a, b, l) = raw[0];
            let seq = LabelSeq::from_slice(&[
                Label((l % labels) as u16).fwd(),
                if a % 2 == 0 { Label((b % labels as u32) as u16).fwd() } else {
                    Label((b % labels as u32) as u16).inv()
                },
            ]);
            delta = if a % 3 == 0 { delta.delete_interest(seq) } else { delta.insert_interest(seq) };
            let report = engine.apply_delta(&delta).expect("lowered deltas are valid");
            apply_to_reference(&delta, &mut reference);
            let snap = engine.snapshot();
            let current_interests = snap
                .index()
                .interests()
                .expect("interest-aware engine")
                .iter()
                .copied()
                .collect::<Vec<_>>();
            let fresh =
                CpqxIndex::build_interest_aware(&reference, 2, current_interests);
            for q in &queries {
                prop_assert_eq!(
                    &*engine.query(q),
                    &fresh.evaluate(&reference, q),
                    "ia txn {} (epoch {}) diverged for {:?}",
                    t,
                    report.epoch,
                    q
                );
            }
        }
    }
}

/// The acceptance-scale scenario: on a 100k-edge generated graph, a
/// single 1 000-op delta transaction goes through the lazy path without
/// any full index rebuild (threshold not crossed), verified by the
/// engine's own counters, and serving answers still match a reference
/// evaluation.
#[test]
fn thousand_op_transaction_on_100k_edges_stays_lazy() {
    let g =
        generate::random_graph(&generate::RandomGraphConfig::uniform(50_000, 100_000, 8, 0xC0DE));
    assert_eq!(g.edge_count(), 100_000);
    let (engine, _) = Engine::with_options(
        g,
        EngineOptions { k: 2, auto_rebuild_ratio: Some(8.0), ..EngineOptions::default() },
    );
    let snap0 = engine.snapshot();
    // 500 existing edges, each deleted and re-inserted: 1 000 ops, all
    // of which are real (Applied) lazy updates.
    let victims = generate::sample_edges(snap0.graph(), 500, 7);
    let mut delta = Delta::new();
    for &(v, u, l) in &victims {
        delta = delta.delete_edge(v, u, l).insert_edge(v, u, l);
    }
    assert_eq!(delta.len(), 1_000);
    let report = engine.apply_delta(&delta).expect("valid transaction");
    assert_eq!(report.applied, 1_000);
    assert!(report.outcomes.iter().all(|o| *o == OpOutcome::Applied));
    assert!(!report.rebuilt, "below the threshold the transaction must stay lazy");
    assert_eq!(report.epoch, 1, "one install for the whole 1k-op transaction");

    let stats = engine.stats();
    assert_eq!(stats.delta_transactions, 1);
    assert_eq!(stats.lazy_update_ops, 1_000, "stats must count every lazy op");
    assert_eq!(stats.rebuilds, 0, "no full rebuild below the threshold");
    assert_eq!(stats.auto_rebuilds, 0);
    assert_eq!(stats.snapshot_swaps, 1);
    assert!(
        stats.fragmentation_ratio >= 1.0 && stats.fragmentation_ratio < 8.0,
        "churning 0.5% of edges must fragment mildly (got {})",
        stats.fragmentation_ratio
    );

    // Differential check without paying a second 100k-edge build: the
    // transaction deleted and re-inserted the same edges, so the final
    // graph equals the initial one and the (now fragmented) lazy index
    // must answer exactly like the untouched initial snapshot's index.
    let queries = workload(snap0.graph(), 3);
    assert!(queries.len() >= 6);
    for q in queries.iter().take(8) {
        assert_eq!(
            *engine.query(q),
            snap0.evaluate(q),
            "fragmented index disagrees with the pre-churn index for {q:?}"
        );
    }
}
