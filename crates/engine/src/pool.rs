//! Scoped-thread work-sharing helpers — re-exported from
//! [`cpqx_core::pool`].
//!
//! The helpers moved into the core crate so the index builders themselves
//! can parallelize (the level-1 pass of Algorithm 1 and the interest-aware
//! shard partitioning both run through `parallel_map`); the engine keeps
//! this module path so its own callers and downstream users are
//! unaffected.

pub use cpqx_core::pool::{default_threads, parallel_map, spawn_workers};
