//! Typed delta transactions — the engine's write path.
//!
//! A [`Delta`] is an ordered list of typed maintenance operations
//! ([`DeltaOp`]) applied atomically by [`crate::Engine::apply_delta`]:
//! the engine clones the current snapshot **once**, applies every op to
//! the clone via the paper's lazy maintenance procedures
//! (`cpqx_core::CpqxIndex::{insert_edge, delete_edge, …}`, Secs. IV-E /
//! V-C), and installs the result as one new snapshot. Compared to
//! issuing the ops individually this amortizes the clone + install +
//! cache-invalidation cost over the whole transaction, and compared to
//! rebuilding it does work proportional to the affected pairs only.
//!
//! Lazy maintenance fragments the index (classes are never merged;
//! Table VII), so every write transaction also checks the index's
//! fragmentation ratio against
//! [`crate::EngineOptions::auto_rebuild_ratio`] and defragments with a
//! full rebuild *inside the same transaction* when the threshold is
//! crossed — readers never observe the fragmented intermediate state,
//! and the lazy-update/rebuild tradeoff the paper measures becomes a
//! live serving policy, observable in [`crate::StatsReport`].
//!
//! Transactions are atomic: an invalid op (out-of-range vertex, unknown
//! label, over-long interest) aborts the whole delta with a
//! [`DeltaError`] naming the op, and no snapshot is installed. Valid
//! ops that change nothing (inserting an existing edge, registering an
//! interest on a full index) are reported per-op as
//! [`OpOutcome::Noop`].

use cpqx_core::CpqxIndex;
use cpqx_graph::{Graph, Label, LabelSeq, VertexId};

/// One typed maintenance operation inside a [`Delta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Insert the base edge `(src, dst, label)`.
    InsertEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
        /// Base edge label.
        label: Label,
    },
    /// Delete the base edge `(src, dst, label)`.
    DeleteEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
        /// Base edge label.
        label: Label,
    },
    /// Relabel the base edge `(src, dst, from)` to `to` (the paper
    /// handles label changes as delete + insert; the index does both
    /// lazily in one op).
    ChangeEdgeLabel {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
        /// Current label of the edge.
        from: Label,
        /// New label of the edge.
        to: Label,
    },
    /// Add an isolated vertex. The assigned id is reported back as
    /// [`OpOutcome::VertexAdded`], and later ops *in the same delta* may
    /// already reference it.
    AddVertex {
        /// Display name of the new vertex.
        name: String,
    },
    /// Delete a vertex by removing all incident edges (the id stays
    /// allocated but isolated, per the paper's vertex-deletion
    /// procedure). A no-op for already-isolated vertices.
    DeleteVertex {
        /// The vertex to isolate.
        vertex: VertexId,
    },
    /// iaCPQx only: register an interest sequence and index its pairs
    /// (Sec. V-C). A no-op on full CPQx engines, for length-1 sequences
    /// (always indexed), and for already-registered interests.
    InsertInterest {
        /// The label sequence to register.
        seq: LabelSeq,
    },
    /// iaCPQx only: drop an interest sequence from `Il2c` (Sec. V-C). A
    /// no-op when it was not registered.
    DeleteInterest {
        /// The label sequence to drop.
        seq: LabelSeq,
    },
}

/// An ordered, atomically applied list of [`DeltaOp`]s (see module
/// docs). Build one with the fluent helpers or collect ops yourself via
/// [`Delta::from`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// An empty transaction.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Appends an edge insertion.
    pub fn insert_edge(mut self, src: VertexId, dst: VertexId, label: Label) -> Self {
        self.ops.push(DeltaOp::InsertEdge { src, dst, label });
        self
    }

    /// Appends an edge deletion.
    pub fn delete_edge(mut self, src: VertexId, dst: VertexId, label: Label) -> Self {
        self.ops.push(DeltaOp::DeleteEdge { src, dst, label });
        self
    }

    /// Appends an edge relabel.
    pub fn change_edge_label(
        mut self,
        src: VertexId,
        dst: VertexId,
        from: Label,
        to: Label,
    ) -> Self {
        self.ops.push(DeltaOp::ChangeEdgeLabel { src, dst, from, to });
        self
    }

    /// Appends a vertex addition.
    pub fn add_vertex(mut self, name: impl Into<String>) -> Self {
        self.ops.push(DeltaOp::AddVertex { name: name.into() });
        self
    }

    /// Appends a vertex deletion.
    pub fn delete_vertex(mut self, vertex: VertexId) -> Self {
        self.ops.push(DeltaOp::DeleteVertex { vertex });
        self
    }

    /// Appends an interest registration.
    pub fn insert_interest(mut self, seq: LabelSeq) -> Self {
        self.ops.push(DeltaOp::InsertInterest { seq });
        self
    }

    /// Appends an interest removal.
    pub fn delete_interest(mut self, seq: LabelSeq) -> Self {
        self.ops.push(DeltaOp::DeleteInterest { seq });
        self
    }

    /// The ops of the transaction, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction is empty (applying it is a no-op).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl From<Vec<DeltaOp>> for Delta {
    fn from(ops: Vec<DeltaOp>) -> Self {
        Delta { ops }
    }
}

impl FromIterator<DeltaOp> for Delta {
    fn from_iter<T: IntoIterator<Item = DeltaOp>>(iter: T) -> Self {
        Delta { ops: iter.into_iter().collect() }
    }
}

/// What one op of an applied delta did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// The op changed the graph/index.
    Applied,
    /// The op was valid but changed nothing (duplicate insert, missing
    /// edge, unregistered interest, isolated vertex, …).
    Noop,
    /// An [`DeltaOp::AddVertex`] op allocated this vertex id.
    VertexAdded(VertexId),
}

impl OpOutcome {
    /// Whether this outcome mutated the state.
    pub fn changed(&self) -> bool {
        !matches!(self, OpOutcome::Noop)
    }
}

/// The result of a committed delta transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaReport {
    /// Per-op outcomes, in op order.
    pub outcomes: Vec<OpOutcome>,
    /// Ops that changed the state (`outcomes` entries with
    /// [`OpOutcome::changed`]).
    pub applied: usize,
    /// The epoch whose snapshot reflects the whole transaction — the
    /// installed epoch, or the unchanged current epoch when every op was
    /// a no-op (determined under the writer lock, so it is pinnable).
    pub epoch: u64,
    /// Whether the fragmentation threshold triggered a defragmenting
    /// rebuild inside this transaction.
    pub rebuilt: bool,
    /// The index's fragmentation ratio after the transaction (1.0 right
    /// after a rebuild).
    pub fragmentation_ratio: f64,
}

/// Why a delta transaction was rejected. Nothing was applied: the
/// engine's state is exactly as before the call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaError {
    /// Index of the offending op within the delta.
    pub op_index: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta op {} rejected: {}", self.op_index, self.reason)
    }
}

impl std::error::Error for DeltaError {}

/// Validates `ops` read-only against `g`: every vertex/label reference
/// must be in range, with `AddVertex` ops extending the vertex bound
/// for later ops of the same delta. The engine runs this against the
/// current snapshot *before* taking the writer lock and cloning, so a
/// delta that can only be rejected costs no clone and no lock hold;
/// vertex ids and the label table only grow, so a delta passing here
/// cannot fail when applied to the (possibly newer) clone.
pub fn validate_ops(g: &Graph, ops: &[DeltaOp]) -> Result<(), DeltaError> {
    let reject = |i: usize, reason: String| DeltaError { op_index: i, reason };
    let check_vertex = |v: VertexId, bound: u32, i: usize| {
        if v < bound {
            Ok(())
        } else {
            Err(reject(i, format!("vertex {v} out of range (graph has {bound})")))
        }
    };
    let check_label = |l: Label, i: usize| {
        if l.0 < g.base_label_count() {
            Ok(())
        } else {
            Err(reject(
                i,
                format!("label {} out of range (graph has {})", l.0, g.base_label_count()),
            ))
        }
    };
    let mut vertices = g.vertex_count();
    for (i, op) in ops.iter().enumerate() {
        match op {
            DeltaOp::InsertEdge { src, dst, label } | DeltaOp::DeleteEdge { src, dst, label } => {
                check_vertex(*src, vertices, i)?;
                check_vertex(*dst, vertices, i)?;
                check_label(*label, i)?;
            }
            DeltaOp::ChangeEdgeLabel { src, dst, from, to } => {
                check_vertex(*src, vertices, i)?;
                check_vertex(*dst, vertices, i)?;
                check_label(*from, i)?;
                check_label(*to, i)?;
            }
            DeltaOp::AddVertex { .. } => vertices += 1,
            DeltaOp::DeleteVertex { vertex } => check_vertex(*vertex, vertices, i)?,
            DeltaOp::InsertInterest { seq } => {
                for l in seq.iter() {
                    if l.0 >= g.ext_label_count() {
                        return Err(reject(i, format!("interest label {} out of range", l.0)));
                    }
                }
            }
            DeltaOp::DeleteInterest { .. } => {}
        }
    }
    Ok(())
}

/// Applies `ops` in order to a writable graph + index clone, validating
/// each op before it touches anything (the graph's mutators panic on
/// out-of-range arguments; a delta must turn those into typed errors).
/// Validation runs against the *evolving* clone, so an edge op may
/// reference a vertex an earlier `AddVertex` of the same delta created.
///
/// On error the clone is torn mid-delta — the caller (the engine's
/// write transaction) discards it without installing, which is what
/// makes deltas atomic. (The engine pre-validates with [`validate_ops`],
/// so for engine-driven deltas this is a second line of defense.)
pub fn apply_ops(
    g: &mut Graph,
    idx: &mut CpqxIndex,
    ops: &[DeltaOp],
) -> Result<Vec<OpOutcome>, DeltaError> {
    let reject = |i: usize, reason: String| DeltaError { op_index: i, reason };
    let check_vertex = |g: &Graph, v: VertexId, i: usize| {
        if v < g.vertex_count() {
            Ok(())
        } else {
            Err(reject(i, format!("vertex {v} out of range (graph has {})", g.vertex_count())))
        }
    };
    let check_label = |g: &Graph, l: Label, i: usize| {
        if l.0 < g.base_label_count() {
            Ok(())
        } else {
            Err(reject(
                i,
                format!("label {} out of range (graph has {})", l.0, g.base_label_count()),
            ))
        }
    };
    let mut outcomes = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let outcome = match op {
            DeltaOp::InsertEdge { src, dst, label } => {
                check_vertex(g, *src, i)?;
                check_vertex(g, *dst, i)?;
                check_label(g, *label, i)?;
                applied_if(idx.insert_edge(g, *src, *dst, *label))
            }
            DeltaOp::DeleteEdge { src, dst, label } => {
                check_vertex(g, *src, i)?;
                check_vertex(g, *dst, i)?;
                check_label(g, *label, i)?;
                applied_if(idx.delete_edge(g, *src, *dst, *label))
            }
            DeltaOp::ChangeEdgeLabel { src, dst, from, to } => {
                check_vertex(g, *src, i)?;
                check_vertex(g, *dst, i)?;
                check_label(g, *from, i)?;
                check_label(g, *to, i)?;
                applied_if(idx.change_edge_label(g, *src, *dst, *from, *to))
            }
            DeltaOp::AddVertex { name } => OpOutcome::VertexAdded(idx.add_vertex(g, name.clone())),
            DeltaOp::DeleteVertex { vertex } => {
                check_vertex(g, *vertex, i)?;
                if g.ext_degree(*vertex) == 0 {
                    OpOutcome::Noop
                } else {
                    idx.delete_vertex(g, *vertex);
                    OpOutcome::Applied
                }
            }
            DeltaOp::InsertInterest { seq } => {
                for l in seq.iter() {
                    if l.0 >= g.ext_label_count() {
                        return Err(reject(i, format!("interest label {} out of range", l.0)));
                    }
                }
                applied_if(idx.insert_interest(g, *seq))
            }
            DeltaOp::DeleteInterest { seq } => applied_if(idx.delete_interest(seq)),
        };
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

fn applied_if(changed: bool) -> OpOutcome {
    if changed {
        OpOutcome::Applied
    } else {
        OpOutcome::Noop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_ops() {
        let d = Delta::new()
            .add_vertex("x")
            .insert_edge(0, 1, Label(0))
            .delete_edge(1, 0, Label(1))
            .change_edge_label(0, 1, Label(0), Label(1))
            .delete_vertex(2)
            .insert_interest(LabelSeq::from_slice(&[Label(0).fwd(), Label(1).fwd()]))
            .delete_interest(LabelSeq::from_slice(&[Label(0).fwd(), Label(1).fwd()]));
        assert_eq!(d.len(), 7);
        assert!(!d.is_empty());
        assert!(matches!(d.ops()[0], DeltaOp::AddVertex { .. }));
        assert!(matches!(d.ops()[6], DeltaOp::DeleteInterest { .. }));
        assert_eq!(Delta::from(d.ops().to_vec()), d);
    }

    #[test]
    fn outcome_changed() {
        assert!(OpOutcome::Applied.changed());
        assert!(OpOutcome::VertexAdded(7).changed());
        assert!(!OpOutcome::Noop.changed());
    }
}
