//! A small dependency-free LRU cache for query results.
//!
//! Classic map + recency-queue design with *lazy* invalidation: every
//! touch pushes a fresh `(tick, key)` entry onto the queue and records the
//! tick in the map; eviction pops queue entries whose tick is stale until
//! it finds the true least-recently-used key. Amortized O(1) per
//! operation; the queue is compacted whenever it outgrows a small multiple
//! of the capacity, bounding memory.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A least-recently-used cache with a fixed entry capacity.
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: VecDeque<(u64, K)>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables the cache (every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            recency: VecDeque::new(),
            tick: 0,
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most-recently-used on a hit. Accepts
    /// any borrowed form of the key (e.g. `&str` for `String` keys).
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.tick += 1;
        let tick = self.tick;
        let owned = self.map.get_key_value(key)?.0.clone();
        match self.map.get_mut(key) {
            Some((_, last)) => {
                *last = tick;
                self.recency.push_back((tick, owned));
                self.compact_if_needed();
                self.map.get(key).map(|(v, _)| v)
            }
            None => None,
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if
    /// the cache is full. Returns whether the value was stored (a zero
    /// capacity stores nothing).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        self.recency.push_back((tick, key.clone()));
        let existed = self.map.insert(key, (value, tick)).is_some();
        if !existed && self.map.len() > self.capacity {
            self.evict_one();
        }
        self.compact_if_needed();
        true
    }

    /// Drops every entry (used when a new snapshot invalidates results).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    fn evict_one(&mut self) {
        while let Some((tick, key)) = self.recency.pop_front() {
            // Stale queue entry: the key was touched again later (or was
            // already removed).
            let is_current = self.map.get(&key).is_some_and(|&(_, last)| last == tick);
            if is_current {
                self.map.remove(&key);
                return;
            }
        }
    }

    fn compact_if_needed(&mut self) {
        if self.recency.len() > self.capacity.saturating_mul(4).max(64) {
            let map = &self.map;
            self.recency.retain(|(tick, key)| map.get(key).is_some_and(|&(_, last)| last == *tick));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now MRU
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        assert!(!c.insert("a", 1));
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn reinsert_at_capacity_evicts_nothing() {
        // Overwriting a resident key must not count as growth, so no
        // other entry may be evicted by it.
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("b", 20);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&20));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_order_tracks_repeated_gets() {
        // a,b,c inserted; touching a then b makes c the LRU victim, and a
        // second round of touches keeps rotating the victim correctly.
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        c.get(&"a");
        c.get(&"b");
        c.insert("d", 4); // evicts c
        assert_eq!(c.get(&"c"), None);
        c.get(&"a"); // order now: b, d, a
        c.insert("e", 5); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"d"), Some(&4));
        assert_eq!(c.get(&"e"), Some(&5));
    }

    #[test]
    fn capacity_one_keeps_only_newest() {
        let mut c = LruCache::new(1);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&"two"));
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_survives_heavy_traffic() {
        // Capacity 0 must stay empty (and not leak recency-queue memory)
        // under a long mixed get/insert workload.
        let mut c = LruCache::new(0);
        for i in 0..10_000u32 {
            c.insert(i % 7, i);
            assert_eq!(c.get(&(i % 7)), None);
        }
        assert!(c.is_empty());
    }

    #[test]
    fn get_on_missing_key_does_not_disturb_order() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"zzz"), None);
        c.insert("c", 3); // must evict a (untouched LRU), not b
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn stress_against_reference_model() {
        // Compare against a naive O(n) LRU model under a long random-ish
        // deterministic workload.
        let mut c = LruCache::new(8);
        let mut model: Vec<(u32, u32)> = Vec::new(); // (key, value), front = LRU
        let mut x: u64 = 0x1234_5678;
        for step in 0..20_000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 24) as u32;
            if x & 1 == 0 {
                // insert
                let val = step;
                c.insert(key, val);
                model.retain(|&(k, _)| k != key);
                model.push((key, val));
                if model.len() > 8 {
                    model.remove(0);
                }
            } else {
                let got = c.get(&key).copied();
                let want = model.iter().position(|&(k, _)| k == key).map(|i| {
                    let (k, v) = model.remove(i);
                    model.push((k, v));
                    v
                });
                assert_eq!(got, want, "step {step} key {key}");
            }
        }
        assert!(c.len() <= 8);
    }
}
