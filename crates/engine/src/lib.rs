//! `cpqx-engine` — sharded parallel index construction and a concurrent
//! query-serving layer over the CPQx index family.
//!
//! The core crates reproduce the paper faithfully but leave every caller
//! holding a bare [`cpqx_core::CpqxIndex`]: single-threaded construction,
//! no concurrency story, no caching. This crate adds the three layers a
//! serving deployment needs:
//!
//! 1. **Fully parallel build pipeline** ([`build`]): the shared level-1
//!    pass itself runs parallel per source range
//!    ([`cpqx_core::RefinementBase::with_threads`], structurally
//!    identical to the sequential pass), then — `P≤k` partitions exactly
//!    by source vertex — the Algorithm-1 refinement runs independently
//!    per source-range shard on a scoped thread pool; per-shard
//!    partitions merge by the class invariant `(cyclicity, L≤k)` into an
//!    index that is query-equivalent to the sequential build. The
//!    interest-aware variant shards the same way over label-weighted
//!    source ranges ([`build_interest_sharded`]).
//! 2. **Concurrent read path** ([`engine`]): an [`Engine`] holds the
//!    graph + index behind an atomically swappable [`Snapshot`] `Arc`.
//!    Maintenance (edge/vertex/interest updates, rebuilds) clones, applies
//!    the paper's lazy update procedures to the clone, and installs the
//!    result; in-flight readers keep the version they started with and
//!    are never blocked (snapshot isolation).
//! 3. **Serving layer** ([`engine`] + [`batch`]): a per-snapshot plan
//!    cache and a cross-query LRU result cache, both keyed on the
//!    *canonical* form of the query ([`cpqx_query::canonical`]) so
//!    syntactic variants share entries; a [`Engine::evaluate_batch`] API
//!    fanning a workload across a worker pool against one pinned
//!    snapshot; and hit-rate / p50 / p99 statistics ([`Engine::stats`]).
//!
//! ```
//! use cpqx_engine::{Engine, BatchOptions};
//! use cpqx_graph::generate::gex;
//! use cpqx_query::parse_cpq;
//!
//! let engine = Engine::build(gex(), 2);
//! let snap = engine.snapshot();
//! let q = parse_cpq("(f . f) & f^-1", snap.graph()).unwrap();
//! assert_eq!(engine.query(&q).len(), 3);   // executes
//! assert_eq!(engine.query(&q).len(), 3);   // served from cache
//! assert!(engine.stats().result_hit_rate > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod build;
pub mod cache;
pub mod delta;
pub mod durability;
pub mod engine;
pub mod pool;
pub mod stats;

pub use batch::{BatchOptions, BatchOutcome};
pub use build::{
    build_interest_sharded, build_interest_sharded_with_report, build_sharded,
    build_sharded_with_report, BuildOptions, BuildReport,
};
pub use cache::LruCache;
pub use cpqx_core::ExecOptions;
pub use delta::{apply_ops, validate_ops, Delta, DeltaError, DeltaOp, DeltaReport, OpOutcome};
pub use durability::{CheckpointReport, DurabilityOptions, DurabilitySink};
pub use engine::{Engine, EngineOptions, PlannedQuery, Snapshot};
pub use stats::{nearest_rank_quantile, StatsReport};
// Observability types callers configure or consume through the engine
// ([`EngineOptions::obs`], [`Engine::obs`]) — re-exported so engine
// users don't need a direct `cpqx-obs` dependency.
pub use cpqx_obs::{ObsOptions, Recorder};
