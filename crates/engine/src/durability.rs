//! The engine ⇄ durability-layer seam.
//!
//! The engine itself stays storage-free: it only knows a
//! [`DurabilitySink`] — attached via [`crate::Engine::attach_durability`]
//! — that it calls at two points of the write path:
//!
//! * **append**: under the writer lock, after a typed delta transaction
//!   applied cleanly to the transaction's clone and *before* the new
//!   snapshot installs — write-ahead ordering: a transaction is only
//!   acknowledged once it is on the log. An append failure aborts the
//!   transaction (nothing installs), so an acknowledged write is always
//!   a logged write.
//! * **checkpoint**: when the bytes appended since the last checkpoint
//!   exceed [`DurabilityOptions::checkpoint_wal_bytes`], mirroring the
//!   auto-rebuild trigger — the policy lives in the engine's options,
//!   the mechanism in the sink. Checkpoint failures are non-fatal (the
//!   WAL still covers every committed transaction; the next trigger
//!   retries), so a full disk degrades recovery time, not correctness.
//!
//! The concrete sink lives in the `cpqx-store` crate (WAL + chunked
//! snapshots + manifest); this trait is the dependency seam that lets
//! the store depend on the engine (and on `cpqx-net` for the record
//! codec) without a cycle.

use crate::delta::DeltaOp;
use cpqx_core::CpqxIndex;
use cpqx_graph::Graph;

/// Engine-side durability policy knobs (the mechanism knobs — fsync
/// policy, directory layout, compaction — live with the sink
/// implementation).
#[derive(Clone, Copy, Debug, Default)]
pub struct DurabilityOptions {
    /// Checkpoint trigger: when a write transaction leaves more than
    /// this many WAL bytes appended since the last checkpoint, the
    /// engine asks the sink to checkpoint (persist a snapshot and
    /// rotate the log) within the same transaction, before the install.
    /// `None` (the default) leaves checkpointing entirely to the caller.
    pub checkpoint_wal_bytes: Option<u64>,
}

/// What one checkpoint did — surfaced through the engine's
/// `snapshots_written` / `snapshot_chunks_skipped` gauges, and the
/// quantity the incremental-snapshot CI gate asserts on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Chunk records physically written to the snapshot.
    pub chunks_written: u64,
    /// Chunk records skipped because they are still shared (pointer-
    /// identical) with the previous snapshot generation.
    pub chunks_skipped: u64,
}

/// Where the engine logs committed write transactions (implemented by
/// `cpqx_store::Store`; see module docs for the call protocol).
pub trait DurabilitySink: Send + Sync {
    /// Appends one committed delta transaction to the log and returns
    /// the bytes appended. Called under the engine's writer lock, after
    /// `ops` applied cleanly to the transaction's clone and immediately
    /// before the resulting snapshot installs. `graph` is the
    /// *post-apply* state of that clone — label ids and (for
    /// `AddVertex`) vertex names resolve against it.
    fn append(&self, graph: &Graph, ops: &[DeltaOp]) -> std::io::Result<u64>;

    /// Bytes appended since the last successful checkpoint — the gauge
    /// the engine compares against
    /// [`DurabilityOptions::checkpoint_wal_bytes`].
    fn wal_bytes_since_checkpoint(&self) -> u64;

    /// Persists a snapshot of `graph` + `index` covering every append so
    /// far, then rotates the log. Called under the writer lock with the
    /// exact state about to install.
    fn checkpoint(&self, graph: &Graph, index: &CpqxIndex) -> std::io::Result<CheckpointReport>;
}
