//! Engine observability: counters, hit rates and latency percentiles.
//!
//! Counters are lock-free atomics bumped on the hot path; latencies go
//! into a fixed-size mutex-guarded reservoir (overwriting round-robin, so
//! percentiles reflect the most recent window without unbounded memory).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Size of the rolling latency window backing percentile estimates.
const LATENCY_WINDOW: usize = 8192;

/// The nearest-rank `p`-quantile of an ascending-sorted sample slice —
/// the **single** quantile definition the engine uses (query-latency
/// percentiles in [`EngineCounters::report`] and per-batch latency
/// quantiles in `BatchOutcome::latency_quantile` both route here, so the
/// two can never diverge again).
///
/// Semantics: `p` is clamped to `[0.0, 1.0]` (a non-finite `p` reads as
/// `0.0`); the returned sample is `sorted[round((len - 1) · p)]`, i.e.
/// `p = 0.0` is the minimum, `p = 1.0` the maximum, and `p = 0.5` the
/// (upper-biased) median. Returns `None` for an empty slice.
pub fn nearest_rank_quantile<T: Copy>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let p = if p.is_finite() { p.clamp(0.0, 1.0) } else { 0.0 };
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Some(sorted[idx])
}

/// Live counters owned by the engine. Cheap to bump concurrently; read
/// them through [`EngineCounters::report`].
///
/// Every field is a plain counter in the cpqx-analyze atomic-ordering
/// sense: all accesses are `Relaxed` (audited — nothing is published
/// through these values), and the rule keeps it that way.
#[derive(Default)]
pub struct EngineCounters {
    queries: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    snapshot_swaps: AtomicU64,
    invalidations: AtomicU64,
    admission_rejections: AtomicU64,
    delta_transactions: AtomicU64,
    lazy_update_ops: AtomicU64,
    rebuilds: AtomicU64,
    auto_rebuilds: AtomicU64,
    cow_chunks_copied: AtomicU64,
    cow_chunks_shared: AtomicU64,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_chunks_skipped: AtomicU64,
    latencies_us: Mutex<LatencyWindow>,
}

#[derive(Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
}

impl EngineCounters {
    pub(crate) fn record_query(&self, latency: Duration, result_hit: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if result_hit {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.result_misses.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut w = self.latencies_us.lock().unwrap();
        if w.samples.len() < LATENCY_WINDOW {
            // Fill phase: append, and derive the wrap cursor from the
            // length so the two can never desynchronize — the cursor
            // always names the slot holding the oldest sample once the
            // window is full.
            w.samples.push(us);
            w.next = w.samples.len() % LATENCY_WINDOW;
        } else {
            // Wrap phase: overwrite the oldest sample and advance past
            // it, keeping the cursor's invariant branch-locally instead
            // of relying on a shared post-branch increment.
            let at = w.next;
            w.samples[at] = us;
            w.next = (at + 1) % LATENCY_WINDOW;
        }
    }

    pub(crate) fn record_plan(&self, hit: bool) {
        if hit {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_swap(&self, invalidated: u64) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
        self.invalidations.fetch_add(invalidated, Ordering::Relaxed);
    }

    pub(crate) fn record_admission_rejected(&self) {
        self.admission_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delta(&self, applied_ops: u64) {
        self.delta_transactions.fetch_add(1, Ordering::Relaxed);
        self.lazy_update_ops.fetch_add(applied_ops, Ordering::Relaxed);
    }

    pub(crate) fn record_rebuild(&self, auto: bool) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        if auto {
            self.auto_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_cow(&self, copied: u64, shared: u64) {
        self.cow_chunks_copied.fetch_add(copied, Ordering::Relaxed);
        self.cow_chunks_shared.fetch_add(shared, Ordering::Relaxed);
    }

    pub(crate) fn record_wal(&self, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_checkpoint(&self, chunks_written: u64, chunks_skipped: u64) {
        // `chunks_written` is part of the checkpoint report but the gauge
        // the protocol exposes is snapshot count + skipped chunks; the
        // written side is recoverable as (total chunks - skipped) from
        // the snapshot itself.
        let _ = chunks_written;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        self.snapshot_chunks_skipped.fetch_add(chunks_skipped, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time view of the counters.
    pub fn report(&self) -> StatsReport {
        let mut latencies = self.latencies_us.lock().unwrap().samples.clone();
        latencies.sort_unstable();
        let pct = |p: f64| -> Duration {
            nearest_rank_quantile(&latencies, p).map_or(Duration::ZERO, Duration::from_micros)
        };
        let queries = self.queries.load(Ordering::Relaxed);
        let result_hits = self.result_hits.load(Ordering::Relaxed);
        let result_misses = self.result_misses.load(Ordering::Relaxed);
        let plan_hits = self.plan_hits.load(Ordering::Relaxed);
        let plan_misses = self.plan_misses.load(Ordering::Relaxed);
        StatsReport {
            queries,
            result_hits,
            result_misses,
            result_hit_rate: rate(result_hits, result_hits + result_misses),
            plan_hits,
            plan_misses,
            plan_hit_rate: rate(plan_hits, plan_hits + plan_misses),
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            invalidated_results: self.invalidations.load(Ordering::Relaxed),
            rejected_admissions: self.admission_rejections.load(Ordering::Relaxed),
            delta_transactions: self.delta_transactions.load(Ordering::Relaxed),
            lazy_update_ops: self.lazy_update_ops.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            auto_rebuilds: self.auto_rebuilds.load(Ordering::Relaxed),
            cow_chunks_copied: self.cow_chunks_copied.load(Ordering::Relaxed),
            cow_chunks_shared: self.cow_chunks_shared.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            snapshot_chunks_skipped: self.snapshot_chunks_skipped.load(Ordering::Relaxed),
            fragmentation_ratio: 0.0,
            class_slots: 0,
            baseline_classes: 0,
            build_level1: Duration::ZERO,
            build_level1_parallel: Duration::ZERO,
            build_interest_shards: Duration::ZERO,
            build_total: Duration::ZERO,
            latency_window: latencies.len(),
            p50: pct(0.50),
            p99: pct(0.99),
        }
    }
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Point-in-time engine statistics (see [`EngineCounters::report`]).
#[derive(Clone, Copy, Debug)]
pub struct StatsReport {
    /// Queries served (cached or not).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub result_hits: u64,
    /// Queries that executed against the index.
    pub result_misses: u64,
    /// `result_hits / queries`.
    pub result_hit_rate: f64,
    /// Plans reused from the snapshot's plan cache.
    pub plan_hits: u64,
    /// Plans lowered fresh.
    pub plan_misses: u64,
    /// `plan_hits / (plan_hits + plan_misses)`.
    pub plan_hit_rate: f64,
    /// Snapshots installed over the engine's lifetime (excluding the
    /// initial build).
    pub snapshot_swaps: u64,
    /// Result-cache entries dropped by snapshot swaps.
    pub invalidated_results: u64,
    /// Executed queries whose result the admission policy refused to
    /// cache because the estimated plan cost fell below
    /// `EngineOptions::result_admission_min_cost`.
    pub rejected_admissions: u64,
    /// Delta transactions committed via `Engine::apply_delta` (the
    /// single-op update helpers count too — they are one-op deltas).
    pub delta_transactions: u64,
    /// Individual delta ops applied through the lazy maintenance
    /// procedures (no-ops excluded).
    pub lazy_update_ops: u64,
    /// Full index rebuilds, manual (`Engine::rebuild`) and automatic.
    pub rebuilds: u64,
    /// Rebuilds triggered by `EngineOptions::auto_rebuild_ratio`.
    pub auto_rebuilds: u64,
    /// Copy-on-write chunks/shards physically copied by write
    /// transactions (cumulative, graph + index; rebuilds count all-new
    /// storage as copied). Together with [`StatsReport::cow_chunks_shared`]
    /// this shows whether writes stay O(changed): healthy small deltas
    /// copy a handful of chunks against a large shared remainder.
    pub cow_chunks_copied: u64,
    /// Copy-on-write chunks/shards still structurally shared with the
    /// replaced snapshot after each write transaction (cumulative).
    pub cow_chunks_shared: u64,
    /// Delta transactions appended to the write-ahead log (zero unless a
    /// durability sink is attached; see `Engine::attach_durability`).
    pub wal_appends: u64,
    /// Total payload + framing bytes those appends wrote.
    pub wal_bytes: u64,
    /// Snapshot checkpoints persisted by the WAL-bytes trigger.
    pub snapshots_written: u64,
    /// Chunk records those checkpoints skipped because the chunk was
    /// still shared (pointer-identical) with the previous snapshot
    /// generation — the incremental-snapshot savings gauge.
    pub snapshot_chunks_skipped: u64,
    /// Current `class_slots / baseline_classes` of the serving index
    /// (1.0 right after a build; grows under lazy maintenance). Filled
    /// by `Engine::stats` from the live snapshot; 0.0 when the report
    /// comes from bare counters.
    pub fragmentation_ratio: f64,
    /// Allocated class slots (tombstones included) of the serving index.
    pub class_slots: u64,
    /// Class count of the full build the serving index descends from.
    pub baseline_classes: u64,
    /// Wall-clock of the level-1 pass of the most recent full build
    /// (initial build, manual rebuild, or auto-rebuild; zero for
    /// interest-aware builds, which have no level-1 phase, or when the
    /// report comes from bare counters). Filled by `Engine::stats`.
    pub build_level1: Duration,
    /// Wall-clock spent inside level-1's parallel sections during the
    /// most recent full build (zero when level 1 ran single-threaded).
    pub build_level1_parallel: Duration,
    /// Wall-clock of the parallel interest-shard partitioning phase of
    /// the most recent build (interest-aware engines only).
    pub build_interest_shards: Duration,
    /// End-to-end wall-clock of the most recent full build.
    pub build_total: Duration,
    /// Latency samples currently in the rolling window.
    pub latency_window: usize,
    /// Median query latency over the window.
    pub p50: Duration,
    /// 99th-percentile query latency over the window.
    pub p99: Duration,
}

impl std::fmt::Display for StatsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} hit_rate={:.1}% plan_hit_rate={:.1}% swaps={} deltas={} lazy_ops={} \
             rebuilds={} frag={:.2} cow={}/{} wal[appends={} bytes={}] \
             snapshots[written={} skipped={}] \
             build[total={:?} level1={:?} l1par={:?} ia={:?}] p50={:?} p99={:?}",
            self.queries,
            self.result_hit_rate * 100.0,
            self.plan_hit_rate * 100.0,
            self.snapshot_swaps,
            self.delta_transactions,
            self.lazy_update_ops,
            self.rebuilds,
            self.fragmentation_ratio,
            self.cow_chunks_copied,
            self.cow_chunks_shared,
            self.wal_appends,
            self.wal_bytes,
            self.snapshots_written,
            self.snapshot_chunks_skipped,
            self.build_total,
            self.build_level1,
            self.build_level1_parallel,
            self.build_interest_shards,
            self.p50,
            self.p99,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_percentiles() {
        let c = EngineCounters::default();
        for i in 0..100u64 {
            c.record_query(Duration::from_micros(i + 1), i % 4 == 0);
        }
        c.record_plan(true);
        c.record_plan(false);
        c.record_swap(3);
        c.record_admission_rejected();
        c.record_admission_rejected();
        let r = c.report();
        assert_eq!(r.rejected_admissions, 2);
        assert_eq!(r.queries, 100);
        assert_eq!(r.result_hits, 25);
        assert!((r.result_hit_rate - 0.25).abs() < 1e-9);
        assert!((r.plan_hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(r.snapshot_swaps, 1);
        assert_eq!(r.invalidated_results, 3);
        assert!(r.p50 >= Duration::from_micros(40) && r.p50 <= Duration::from_micros(60));
        assert!(r.p99 >= r.p50);
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = EngineCounters::default().report();
        assert_eq!(r.queries, 0);
        assert_eq!(r.result_hit_rate, 0.0);
        assert_eq!(r.p50, Duration::ZERO);
    }

    #[test]
    fn nearest_rank_edge_cases() {
        // Empty: no quantile.
        assert_eq!(nearest_rank_quantile::<u64>(&[], 0.5), None);
        // Single sample: every p returns it.
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(nearest_rank_quantile(&[7u64], p), Some(7));
        }
        let sorted: Vec<u64> = (1..=100).collect();
        // Extremes hit the ends exactly.
        assert_eq!(nearest_rank_quantile(&sorted, 0.0), Some(1));
        assert_eq!(nearest_rank_quantile(&sorted, 1.0), Some(100));
        // Out-of-range p clamps instead of indexing out of bounds (this
        // was the divergence between the two pre-unification copies).
        assert_eq!(nearest_rank_quantile(&sorted, -3.0), Some(1));
        assert_eq!(nearest_rank_quantile(&sorted, 17.0), Some(100));
        assert_eq!(nearest_rank_quantile(&sorted, f64::NAN), Some(1));
        // Median and p99 are the nearest ranks.
        assert_eq!(nearest_rank_quantile(&sorted, 0.5), Some(51));
        assert_eq!(nearest_rank_quantile(&sorted, 0.99), Some(99));
    }

    #[test]
    fn build_timings_surface_in_display() {
        let mut r = EngineCounters::default().report();
        assert_eq!(r.build_total, Duration::ZERO);
        r.build_level1 = Duration::from_millis(7);
        r.build_level1_parallel = Duration::from_millis(5);
        r.build_interest_shards = Duration::from_millis(3);
        r.build_total = Duration::from_millis(11);
        let text = r.to_string();
        assert!(text.contains("build[total=11ms level1=7ms l1par=5ms ia=3ms]"), "{text}");
    }

    #[test]
    fn cow_counters_accumulate() {
        let c = EngineCounters::default();
        c.record_cow(3, 17);
        c.record_cow(1, 19);
        let r = c.report();
        assert_eq!(r.cow_chunks_copied, 4);
        assert_eq!(r.cow_chunks_shared, 36);
        assert!(r.to_string().contains("cow=4/36"));
    }

    #[test]
    fn durability_counters_accumulate() {
        let c = EngineCounters::default();
        c.record_wal(120);
        c.record_wal(88);
        c.record_checkpoint(3, 29);
        let r = c.report();
        assert_eq!(r.wal_appends, 2);
        assert_eq!(r.wal_bytes, 208);
        assert_eq!(r.snapshots_written, 1);
        assert_eq!(r.snapshot_chunks_skipped, 29);
        let text = r.to_string();
        assert!(text.contains("wal[appends=2 bytes=208]"), "{text}");
        assert!(text.contains("snapshots[written=1 skipped=29]"), "{text}");
    }

    #[test]
    fn window_wraps() {
        let c = EngineCounters::default();
        for i in 0..(LATENCY_WINDOW + 100) {
            c.record_query(Duration::from_micros(i as u64), false);
        }
        let r = c.report();
        assert_eq!(r.latency_window, LATENCY_WINDOW);
    }

    #[test]
    fn window_wrap_evicts_the_oldest_sample() {
        let c = EngineCounters::default();
        // Fill exactly to capacity with distinct values 0..WINDOW; the
        // wrap cursor must point back at slot 0 (the oldest sample).
        for i in 0..LATENCY_WINDOW {
            c.record_query(Duration::from_micros(i as u64), false);
        }
        {
            let w = c.latencies_us.lock().unwrap();
            assert_eq!(w.samples.len(), LATENCY_WINDOW);
            assert_eq!(w.next, 0, "cursor must target the oldest slot after the fill phase");
        }
        // One more sample: it must land on slot 0, evicting value 0 —
        // and only value 0.
        c.record_query(Duration::from_micros(LATENCY_WINDOW as u64), false);
        let w = c.latencies_us.lock().unwrap();
        assert_eq!(w.samples.len(), LATENCY_WINDOW);
        assert_eq!(w.samples[0], LATENCY_WINDOW as u64, "newest sample overwrites the oldest");
        assert_eq!(w.samples[1], 1, "second-oldest survives");
        assert_eq!(w.next, 1, "cursor advances past the overwritten slot");
        assert!(!w.samples.contains(&0), "the oldest sample is the one evicted");
    }
}
