//! The concurrent query-serving engine.
//!
//! An [`Engine`] owns an immutable [`Snapshot`] — graph + index + a plan
//! cache — behind an atomically swappable `Arc`. Readers clone the `Arc`
//! under a briefly-held read lock and then evaluate entirely lock-free on
//! the snapshot; maintenance clones the state, applies updates to the
//! clone, and *installs* a new snapshot, never blocking in-flight readers
//! (they finish on the version they started with — snapshot isolation).
//!
//! Writes go through **typed delta transactions** ([`crate::delta`]):
//! one clone + one install per [`Delta`] however many ops it carries,
//! each op applied by the paper's lazy maintenance procedures, with a
//! fragmentation-triggered automatic rebuild
//! ([`EngineOptions::auto_rebuild_ratio`]) as the defragmentation
//! backstop.
//!
//! Serving adds two caches:
//!
//! * a **plan cache** per snapshot: canonical query → cost-optimized
//!   [`Plan`] plus its cost estimate, from one optimizer pass (plans and
//!   costs depend on the index's statistics and interest set, so they
//!   live and die with the snapshot);
//! * an **LRU result cache** across queries, keyed by the canonical form
//!   of the query ([`cpqx_query::canonical`]) and tagged with the epoch it
//!   is valid for — a snapshot swap atomically invalidates it.
//!
//! All counters and latency percentiles are exported through
//! [`Engine::stats`].

use cpqx_core::{CpqxIndex, ExecOptions, Executor};
use cpqx_graph::{Graph, Label, LabelSeq, Pair, VertexId};
use cpqx_obs::{ObsOptions, Op, Recorder, Stage, TraceBuilder, TraceKind};
use cpqx_query::canonical::{cache_key, canonicalize};
use cpqx_query::{Cpq, Plan};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::build::{
    build_interest_sharded_with_report, build_sharded_with_report, BuildOptions, BuildReport,
};
use crate::cache::LruCache;
use crate::delta::{apply_ops, Delta, DeltaError, DeltaOp, DeltaReport};
use crate::durability::{DurabilityOptions, DurabilitySink};
use crate::stats::{EngineCounters, StatsReport};

/// Engine construction knobs.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Index path-length parameter `k`.
    pub k: usize,
    /// Sharding knobs for the initial build and [`Engine::rebuild`].
    pub build: BuildOptions,
    /// Result-cache capacity in entries (0 disables result caching).
    pub result_cache_capacity: usize,
    /// Per-snapshot plan-cache capacity in entries (0 disables plan
    /// caching). Bounded for the same reason as the result cache: a
    /// long-lived snapshot serving millions of distinct queries must not
    /// grow without bound.
    pub plan_cache_capacity: usize,
    /// Result-cache admission threshold: an executed query is admitted to
    /// the result cache only when its estimated plan cost
    /// ([`cpqx_core::estimate_plan_cost`]) is at least this value. `0.0`
    /// (the default) admits everything; raising it keeps cheap queries —
    /// which are faster to re-execute than the cache churn they cause —
    /// from evicting expensive ones. Rejections are counted in
    /// [`StatsReport::rejected_admissions`].
    pub result_admission_min_cost: f64,
    /// `Some(interests)` builds the interest-aware index (iaCPQx) instead
    /// of full CPQx. Both variants build sharded in parallel under the
    /// same [`BuildOptions`]: full CPQx over degree-balanced source
    /// ranges, iaCPQx over label-weighted ones
    /// ([`crate::build::build_interest_sharded`]).
    pub interests: Option<Vec<LabelSeq>>,
    /// Fragmentation threshold for automatic defragmentation: when a
    /// write transaction leaves the index with
    /// `class_slots / baseline_classes` *above* this ratio, the engine
    /// rebuilds the index from scratch inside the same transaction (one
    /// snapshot install; readers never see the fragmented intermediate).
    /// This is the lazy-update/rebuild tradeoff of the paper's Table VII
    /// as a serving policy. `None` disables auto-rebuild; the default
    /// (8.0) is far above the ratios ordinary churn produces (the paper
    /// measures 1.02–1.63 for up to 20% edge churn), so it only fires
    /// under sustained heavy write load.
    pub auto_rebuild_ratio: Option<f64>,
    /// Benchmark/regression switch: force every write transaction to
    /// deep-copy the whole graph + index instead of the structural-sharing
    /// clone — the pre-COW O(graph) write path. Results are identical;
    /// only cost differs. `maintenance_throughput` uses this to compare
    /// the two write paths so a regression back to O(graph) clones fails
    /// visibly in CI. Leave `false` in production.
    pub deep_clone_writes: bool,
    /// Durability policy: when a [`DurabilitySink`] is attached
    /// ([`Engine::attach_durability`]), this drives the engine-triggered
    /// checkpoint cadence. Irrelevant (and harmless) without a sink.
    pub durability: DurabilityOptions,
    /// Observability: trace sampling, slow-query log, histogram
    /// recording (see [`cpqx_obs::ObsOptions`]). Enabled by default —
    /// a recorded stage costs a few relaxed atomic adds; set
    /// `obs.enabled = false` to reduce every probe to a branch.
    pub obs: ObsOptions,
    /// Executor switches ([`cpqx_core::ExecOptions`]) applied to every
    /// query this engine serves. The defaults enable all optimizations
    /// (class-level conjunction, fused identity, CSR read faces);
    /// overriding them here turns the whole engine into the
    /// corresponding ablation, which is how the differential tests and
    /// the `fig06_csr`/`net_throughput` benches compare read paths under
    /// identical serving conditions.
    pub exec: ExecOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            k: 2,
            build: BuildOptions::default(),
            result_cache_capacity: 1024,
            plan_cache_capacity: 4096,
            result_admission_min_cost: 0.0,
            interests: None,
            auto_rebuild_ratio: Some(8.0),
            deep_clone_writes: false,
            durability: DurabilityOptions::default(),
            obs: ObsOptions::default(),
            exec: ExecOptions::default(),
        }
    }
}

/// A lowered plan together with its estimated execution cost, produced by
/// one pass of the cost-based optimizer
/// ([`cpqx_core::optimize_query_costed`]) — the unit the per-snapshot
/// plan cache stores, so the cost always describes the plan that actually
/// executes and the admission policy never re-estimates on a plan-cache
/// hit.
pub struct PlannedQuery {
    /// The physical plan the executor runs.
    pub plan: Plan,
    /// The plan's estimated cumulative execution cost.
    pub cost: f64,
}

/// An immutable, shareable point-in-time view: the graph, its index, the
/// epoch that produced it, and a plan cache scoped to it.
pub struct Snapshot {
    graph: Graph,
    index: CpqxIndex,
    epoch: u64,
    plans: Mutex<LruCache<String, Arc<PlannedQuery>>>,
    exec: ExecOptions,
}

impl Snapshot {
    fn new(
        graph: Graph,
        index: CpqxIndex,
        epoch: u64,
        plan_capacity: usize,
        exec: ExecOptions,
    ) -> Self {
        Snapshot { graph, index, epoch, plans: Mutex::new(LruCache::new(plan_capacity)), exec }
    }

    /// The snapshot's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The snapshot's index.
    pub fn index(&self) -> &CpqxIndex {
        &self.index
    }

    /// The engine epoch this snapshot was installed at (0 = initial
    /// build; each maintenance installation increments it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cost-optimized plan (with its cost estimate) for a canonical
    /// query, cached per snapshot (LRU, bounded by
    /// [`EngineOptions::plan_cache_capacity`]). Returns the planned query
    /// and whether it was a cache hit.
    pub fn plan_for(&self, key: &str, canonical: &Cpq) -> (Arc<PlannedQuery>, bool) {
        if let Some(p) = self.plans.lock().unwrap().get(key) {
            return (Arc::clone(p), true);
        }
        // Lower outside the lock: planning is pure and collisions are
        // idempotent (last insert wins with an identical plan).
        let (plan, cost) = cpqx_core::optimize_query_costed(&self.index, &self.graph, canonical);
        let planned = Arc::new(PlannedQuery { plan, cost });
        self.plans.lock().unwrap().insert(key.to_string(), Arc::clone(&planned));
        (planned, false)
    }

    /// Evaluates `q` against this snapshot, bypassing the result cache
    /// (still uses the snapshot's plan cache).
    pub fn evaluate(&self, q: &Cpq) -> Vec<Pair> {
        let canonical = canonicalize(q);
        let key = cache_key(&canonical);
        let (planned, _) = self.plan_for(&key, &canonical);
        Executor::with_options(&self.index, &self.graph, self.exec).run(&planned.plan)
    }
}

/// Result cache tagged with the epoch its entries are valid for.
struct TaggedResults {
    epoch: u64,
    cache: LruCache<String, Arc<Vec<Pair>>>,
}

/// The concurrent serving engine (see module docs).
pub struct Engine {
    current: RwLock<Arc<Snapshot>>,
    results: Mutex<TaggedResults>,
    counters: EngineCounters,
    /// Serializes writers: clone → mutate → install must not interleave.
    writer: Mutex<()>,
    /// Phase timings of the most recent full build (initial build,
    /// [`Engine::rebuild`], or an auto-rebuild) — surfaced through
    /// [`Engine::stats`].
    last_build: Mutex<BuildReport>,
    /// The attached durability sink, if any (see
    /// [`Engine::attach_durability`]). Consulted (one brief lock to
    /// clone the `Arc`) at the start of every logged write transaction.
    durability: Mutex<Option<Arc<dyn DurabilitySink>>>,
    /// The observability recorder: per-opcode/per-stage histograms,
    /// sampled traces, and the slow-query log. Shared with the network
    /// front-end (see [`Engine::obs`]); the histograms behind it are
    /// the source of [`StatsReport::p50`]/[`StatsReport::p99`].
    obs: Arc<Recorder>,
    options: EngineOptions,
}

impl Engine {
    /// Builds an engine over `graph` with default options and path
    /// parameter `k` (sharded parallel build).
    pub fn build(graph: Graph, k: usize) -> Engine {
        Engine::with_options(graph, EngineOptions { k, ..EngineOptions::default() }).0
    }

    /// Builds an engine with explicit options, returning the initial
    /// build's report (interest-aware engines build sharded too, through
    /// [`crate::build::build_interest_sharded`]).
    pub fn with_options(graph: Graph, options: EngineOptions) -> (Engine, BuildReport) {
        let (index, report) = match &options.interests {
            None => build_sharded_with_report(&graph, options.k, options.build),
            Some(lq) => build_interest_sharded_with_report(
                &graph,
                options.k,
                lq.iter().copied(),
                options.build,
            ),
        };
        let snapshot =
            Arc::new(Snapshot::new(graph, index, 0, options.plan_cache_capacity, options.exec));
        let engine = Engine {
            current: RwLock::new(snapshot),
            results: Mutex::new(TaggedResults {
                epoch: 0,
                cache: LruCache::new(options.result_cache_capacity),
            }),
            counters: EngineCounters::default(),
            writer: Mutex::new(()),
            last_build: Mutex::new(report),
            durability: Mutex::new(None),
            obs: Arc::new(Recorder::new(&options.obs)),
            options,
        };
        engine.record_build_obs(&report, 0);
        (engine, report)
    }

    /// Revives an engine from externally recovered state (a persisted
    /// snapshot plus its replayed WAL tail — see the `cpqx-store`
    /// crate's `recover` module): the given graph + index install as
    /// epoch 0 **without** a rebuild, which is the entire point of
    /// persisting the index — restart cost is I/O plus replay, not an
    /// index construction. Counters and build timings start fresh; like
    /// a loaded index, the recovered state begins a new fragmentation
    /// epoch.
    pub fn with_recovered(graph: Graph, index: CpqxIndex, options: EngineOptions) -> Engine {
        let snapshot =
            Arc::new(Snapshot::new(graph, index, 0, options.plan_cache_capacity, options.exec));
        Engine {
            current: RwLock::new(snapshot),
            results: Mutex::new(TaggedResults {
                epoch: 0,
                cache: LruCache::new(options.result_cache_capacity),
            }),
            counters: EngineCounters::default(),
            writer: Mutex::new(()),
            last_build: Mutex::new(BuildReport::default()),
            durability: Mutex::new(None),
            obs: Arc::new(Recorder::new(&options.obs)),
            options,
        }
    }

    /// Attaches a durability sink: from now on every typed delta
    /// transaction is appended to the sink **before** its snapshot
    /// installs (write-ahead ordering; see [`crate::durability`]), and
    /// [`EngineOptions::durability`] drives the checkpoint cadence.
    /// Replaces any previously attached sink.
    ///
    /// Note that closure transactions ([`Engine::update`]) carry no
    /// typed ops and therefore cannot be logged — durable deployments
    /// must write through [`Engine::apply_delta`] (as the single-op
    /// helpers and the network front-end do).
    pub fn attach_durability(&self, sink: Arc<dyn DurabilitySink>) {
        *self.durability.lock().unwrap() = Some(sink);
    }

    /// The attached durability sink, if any.
    fn sink(&self) -> Option<Arc<dyn DurabilitySink>> {
        self.durability.lock().unwrap().clone()
    }

    /// The current snapshot. Readers hold it as long as they like; a
    /// concurrent swap never invalidates it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// The current epoch (bumped by every maintenance installation).
    /// Always agrees with `self.snapshot().epoch()` — the epoch *is* the
    /// published snapshot's epoch, so there is no window where the two
    /// disagree.
    pub fn epoch(&self) -> u64 {
        self.current.read().unwrap().epoch()
    }

    /// The engine's construction options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The observability recorder: histograms, sampled traces, the
    /// slow-query log and observed-workload counts. The network
    /// front-end shares this recorder so wire-level stages (parse) and
    /// engine-level stages land in one place.
    pub fn obs(&self) -> &Arc<Recorder> {
        &self.obs
    }

    /// Feeds one build report's phase timings into the recorder (the
    /// shard phase unifies `refine` for full builds and
    /// `interest_shards` for interest-aware ones — exactly one of the
    /// two is non-zero per report).
    fn record_build_obs(&self, report: &BuildReport, epoch: u64) {
        self.obs.record_build(
            report.level1,
            report.refine + report.interest_shards,
            report.merge,
            report.total,
            epoch,
        );
    }

    /// Serves `q` from the result cache or by evaluating it on the
    /// current snapshot. The returned `Arc` is shared with the cache.
    pub fn query(&self, q: &Cpq) -> Arc<Vec<Pair>> {
        let snap = self.snapshot();
        self.query_on(&snap, q)
    }

    /// Serves `q` against an explicitly held snapshot — the consistency
    /// primitive batch evaluation builds on: all queries of a batch see
    /// one version. The result cache is consulted only while it is still
    /// tagged with `snap`'s epoch.
    pub fn query_on(&self, snap: &Snapshot, q: &Cpq) -> Arc<Vec<Pair>> {
        let mut trace = self.obs.begin(TraceKind::Query);
        let out = self.query_traced(snap, q, trace.as_mut());
        if let Some(tb) = trace {
            self.obs.finish(tb);
        }
        out
    }

    /// [`Engine::query_on`] with an externally owned trace: the network
    /// front-end begins the trace before parsing (so the parse span is
    /// part of the same tree) and finishes it after the response is
    /// built. The engine attaches the canonical key and epoch and
    /// contributes the cache-probe / plan / eval spans.
    pub fn query_traced(
        &self,
        snap: &Snapshot,
        q: &Cpq,
        mut trace: Option<&mut TraceBuilder>,
    ) -> Arc<Vec<Pair>> {
        let t0 = Instant::now();
        let canonical = canonicalize(q);
        let key = cache_key(&canonical);
        if let Some(tb) = trace.as_deref_mut() {
            tb.set_key(&key);
            tb.set_epoch(snap.epoch());
        }
        let probe = self.obs.timer();
        {
            let mut res = self.results.lock().unwrap();
            if res.epoch == snap.epoch() {
                if let Some(hit) = res.cache.get(&key) {
                    let hit = Arc::clone(hit);
                    drop(res);
                    self.obs.stage(Stage::CacheProbe, probe, trace.as_deref_mut());
                    self.note_query(t0.elapsed(), true);
                    return hit;
                }
            }
        }
        self.obs.stage(Stage::CacheProbe, probe, trace.as_deref_mut());
        let plan_timer = self.obs.timer();
        let (planned, plan_hit) = snap.plan_for(&key, &canonical);
        self.obs.stage(Stage::Plan, plan_timer, trace.as_deref_mut());
        self.counters.record_plan(plan_hit);
        let eval_timer = self.obs.timer();
        let out = Arc::new(
            Executor::with_options(snap.index(), snap.graph(), snap.exec).run(&planned.plan),
        );
        self.obs.stage(Stage::Eval, eval_timer, trace);
        if planned.cost >= self.options.result_admission_min_cost {
            let mut res = self.results.lock().unwrap();
            // Tag check: a swap may have happened while we executed; a
            // result from the old snapshot must not populate the new
            // epoch's cache.
            if res.epoch == snap.epoch() {
                res.cache.insert(key, Arc::clone(&out));
            }
        } else {
            self.counters.record_admission_rejected();
        }
        self.note_query(t0.elapsed(), false);
        out
    }

    /// Evaluates `q` on the current snapshot without touching the result
    /// cache (used by benches to measure uncached latency).
    pub fn query_uncached(&self, q: &Cpq) -> Vec<Pair> {
        let t0 = Instant::now();
        let snap = self.snapshot();
        let out = snap.evaluate(q);
        self.note_query(t0.elapsed(), false);
        out
    }

    /// Accounts one served query in both latency sinks: the reservoir
    /// (cross-check) and the opcode histogram (source of p50/p99).
    /// Every query-serving path must route through here so the two
    /// stay comparable.
    pub(crate) fn note_query(&self, dur: Duration, cache_hit: bool) {
        self.counters.record_query(dur, cache_hit);
        self.obs.record_op(Op::Query, dur);
    }

    /// Applies a typed delta transaction: clones the current state
    /// **once**, applies every [`DeltaOp`] to the clone via the paper's
    /// lazy maintenance procedures, and installs the result as one new
    /// snapshot — the engine's primary write path (single-op helpers and
    /// the network front-end's UPDATE/DELTA frames all route through
    /// it). Atomic: an invalid op rejects the whole delta with a
    /// [`DeltaError`] and installs nothing.
    ///
    /// After applying, the index's fragmentation ratio is checked
    /// against [`EngineOptions::auto_rebuild_ratio`]; crossing it
    /// triggers a defragmenting full rebuild *within the same
    /// transaction*, so readers go straight from the pre-delta snapshot
    /// to the rebuilt one. Lazy-vs-rebuild accounting lands in
    /// [`StatsReport`] (`delta_transactions`, `lazy_update_ops`,
    /// `rebuilds`, `auto_rebuilds`, `fragmentation_ratio`).
    pub fn apply_delta(&self, delta: &Delta) -> Result<DeltaReport, DeltaError> {
        // Reject invalid deltas read-only against the current snapshot,
        // before the write transaction takes the lock and pays the
        // clone. Vertex ids and the label table only grow, so a delta
        // passing here cannot fail against the clone below.
        crate::delta::validate_ops(self.snapshot().graph(), delta.ops())?;
        let txn_timer = self.obs.timer();
        let (result, epoch, rebuilt, ratio) = self
            .write_txn(Some(delta.ops()), |g, idx| match apply_ops(g, idx, delta.ops()) {
                Ok(outcomes) => {
                    let applied = outcomes.iter().filter(|o| o.changed()).count();
                    (Ok((outcomes, applied)), applied > 0)
                }
                Err(e) => (Err(e), false),
            })
            .map_err(|e| DeltaError {
                op_index: 0,
                reason: format!("durability: WAL append failed: {e}"),
            })?;
        let (outcomes, applied) = result?;
        self.counters.record_delta(applied as u64);
        if let Some(t0) = txn_timer {
            self.obs.record_op(Op::Delta, t0.elapsed());
        }
        Ok(DeltaReport { outcomes, applied, epoch, rebuilt, fragmentation_ratio: ratio })
    }

    /// Applies a maintenance transaction given as a closure: clones the
    /// current state, runs `f` on the clone (graph + index stay
    /// consistent through the [`CpqxIndex`] maintenance API), installs
    /// the result as a new snapshot, and invalidates the result cache.
    /// Readers are never blocked; concurrent writers serialize. Returns
    /// `f`'s output and the new epoch. Prefer [`Engine::apply_delta`]
    /// where the ops are expressible as typed [`DeltaOp`]s — it gets
    /// per-op outcomes and lazy-update accounting for free.
    pub fn update<R>(&self, f: impl FnOnce(&mut Graph, &mut CpqxIndex) -> R) -> (R, u64) {
        let (out, epoch, _, _) = self
            .write_txn(None, |g, idx| (f(g, idx), true))
            .expect("unlogged transactions perform no I/O");
        (out, epoch)
    }

    /// Inserts a base edge (lazy index maintenance; see
    /// [`CpqxIndex::insert_edge`]). Returns `false` if it already existed
    /// (no snapshot is installed in that case either).
    ///
    /// # Panics
    /// Panics if the vertices or label are out of range (use
    /// [`Engine::apply_delta`] for a non-panicking, typed-error path).
    pub fn insert_edge(&self, v: VertexId, u: VertexId, l: Label) -> bool {
        self.insert_edge_with_epoch(v, u, l).0
    }

    /// Like [`Engine::insert_edge`], additionally returning the epoch the
    /// caller may pin: the epoch this update installed, or (for no-ops)
    /// the epoch the no-op was decided against. Read under the writer
    /// lock, so a concurrent writer can never make the pair stale — the
    /// seam the network front-end's `UPDATE_ACK` relies on.
    pub fn insert_edge_with_epoch(&self, v: VertexId, u: VertexId, l: Label) -> (bool, u64) {
        self.one_op(DeltaOp::InsertEdge { src: v, dst: u, label: l })
    }

    /// Deletes a base edge (lazy index maintenance). Returns `false` if
    /// it did not exist.
    ///
    /// # Panics
    /// Panics if the vertices or label are out of range.
    pub fn delete_edge(&self, v: VertexId, u: VertexId, l: Label) -> bool {
        self.delete_edge_with_epoch(v, u, l).0
    }

    /// Like [`Engine::delete_edge`] with the pinnable epoch (see
    /// [`Engine::insert_edge_with_epoch`]).
    pub fn delete_edge_with_epoch(&self, v: VertexId, u: VertexId, l: Label) -> (bool, u64) {
        self.one_op(DeltaOp::DeleteEdge { src: v, dst: u, label: l })
    }

    /// Registers an interest sequence on an interest-aware engine (see
    /// [`CpqxIndex::insert_interest`]). Returns `false` for sequences
    /// the index cannot register (full CPQx engine, length outside
    /// `2..=k`, already registered).
    ///
    /// # Panics
    /// Panics if the sequence names a label the graph lacks (use
    /// [`Engine::apply_delta`] for a non-panicking, typed-error path).
    pub fn insert_interest(&self, seq: LabelSeq) -> bool {
        self.one_op(DeltaOp::InsertInterest { seq }).0
    }

    /// Drops an interest sequence on an interest-aware engine.
    pub fn delete_interest(&self, seq: &LabelSeq) -> bool {
        self.one_op(DeltaOp::DeleteInterest { seq: *seq }).0
    }

    /// A single-op delta transaction (the legacy update surface).
    fn one_op(&self, op: DeltaOp) -> (bool, u64) {
        let report = self
            .apply_delta(&Delta::from(vec![op]))
            .unwrap_or_else(|e| panic!("invalid single-op update: {e}"));
        (report.applied > 0, report.epoch)
    }

    /// Rebuilds the index from the current graph (defragmentation after
    /// lazy maintenance), using the sharded parallel builder for both
    /// index variants. Returns the build report.
    pub fn rebuild(&self) -> BuildReport {
        let _writer = self.writer.lock().unwrap();
        let snap = self.snapshot();
        let graph = snap.graph.clone();
        let (index, report) = self.build_fresh(&graph, snap.index.interests().cloned());
        self.counters.record_rebuild(false);
        let epoch = self.install(graph, index);
        // Recorded only after the install: a concurrent stats() must never
        // pair this build's timings with the gauges of the snapshot it is
        // about to replace.
        *self.last_build.lock().unwrap() = report;
        self.record_build_obs(&report, epoch);
        report
    }

    /// Builds a fresh (minimal-partition) index over `graph`, sharded for
    /// both variants (source-range shards for full CPQx, label-weighted
    /// interest shards for iaCPQx) — shared by the initial build path,
    /// [`Engine::rebuild`] and the auto-rebuild trigger. Callers record
    /// the report into `last_build` themselves, *after* installing the
    /// snapshot the build produced, so [`Engine::stats`] never pairs a
    /// build's timings with the gauges of the snapshot it replaced.
    fn build_fresh(
        &self,
        graph: &Graph,
        interests: Option<BTreeSet<LabelSeq>>,
    ) -> (CpqxIndex, BuildReport) {
        match interests {
            None => build_sharded_with_report(graph, self.options.k, self.options.build),
            Some(lq) => build_interest_sharded_with_report(
                graph,
                self.options.k,
                lq.iter().copied(),
                self.options.build,
            ),
        }
    }

    /// Engine statistics: query counts, cache hit rates, swap counts,
    /// maintenance/fragmentation accounting, copy-on-write sharing and
    /// latency percentiles.
    pub fn stats(&self) -> StatsReport {
        // Pin the snapshot *before* reading the counters: the counter
        // report then describes a state at least as old as the gauges, so
        // one report never mixes gauges from a snapshot that a
        // counter-visible write transaction has already replaced. (The
        // converse skew — counters advancing right after the pin — only
        // over-reports activity, never attributes gauges to the wrong
        // snapshot.)
        let snap = self.snapshot();
        let mut report = self.counters.report();
        // O(1) fragmentation gauges only — the full report's live-class
        // scan is too expensive for a stats endpoint polled by monitors.
        report.fragmentation_ratio = snap.index().fragmentation_ratio();
        report.class_slots = snap.index().class_slots() as u64;
        report.baseline_classes = snap.index().baseline_class_count() as u64;
        // Phase timings of the most recent full build (initial, manual
        // rebuild, or auto-rebuild) — how the serving layer observes the
        // parallel build pipeline.
        let build = *self.last_build.lock().unwrap();
        report.build_level1 = build.level1;
        report.build_level1_parallel = build.level1_parallel;
        report.build_interest_shards = build.interest_shards;
        report.build_total = build.total;
        // p50/p99 come from the log-bucketed opcode histogram (exact
        // counts, no reservoir truncation) whenever the recorder has
        // data; the reservoir values computed above remain as the
        // fallback for a disabled recorder — and as the independent
        // cross-check [`Engine::reservoir_report`] exposes to tests.
        let h = self.obs.op_snapshot(Op::Query);
        if h.count() > 0 {
            if let Some(p50) = h.quantile(0.5) {
                report.p50 = Duration::from_micros(p50);
            }
            if let Some(p99) = h.quantile(0.99) {
                report.p99 = Duration::from_micros(p99);
            }
        }
        report
    }

    /// The counters' report with **reservoir-based** p50/p99 (the
    /// pre-histogram source): kept as an independent cross-check so
    /// tests can assert the histogram quantiles agree with the sampled
    /// reservoir to within one log bucket. Gauges (fragmentation, build
    /// timings) are zero here — use [`Engine::stats`] for the full
    /// report.
    pub fn reservoir_report(&self) -> StatsReport {
        self.counters.report()
    }

    /// The single write-transaction core every mutating path funnels
    /// through (`apply_delta`, `update`, and via them the single-op
    /// helpers): under the writer lock, clone the current state once,
    /// run `f` on the clone, and — iff `f` reports a change — install
    /// the result as one new snapshot. Before installing, the
    /// fragmentation ratio is checked against
    /// [`EngineOptions::auto_rebuild_ratio`]; crossing it replaces the
    /// fragmented clone with a fresh build of the same graph, still
    /// within the single install, so no reader ever observes the
    /// fragmented intermediate. Returns `f`'s output, the pinnable
    /// epoch (installed, or unchanged for no-ops), whether an
    /// auto-rebuild fired, and the fragmentation ratio after the
    /// transaction.
    ///
    /// `log_ops` carries the transaction's typed ops for the durability
    /// sink (if one is attached): they are appended to the WAL after `f`
    /// succeeds and **before** the install — write-ahead ordering — and
    /// an append failure aborts the transaction with the I/O error
    /// (nothing installs). Closure transactions pass `None` and can
    /// never fail. After a successful append (and a possible
    /// auto-rebuild), crossing
    /// [`DurabilityOptions::checkpoint_wal_bytes`] triggers a sink
    /// checkpoint of the exact state about to install; checkpoint
    /// failures are non-fatal (the WAL still covers everything, the
    /// next trigger retries).
    fn write_txn<R>(
        &self,
        log_ops: Option<&[DeltaOp]>,
        f: impl FnOnce(&mut Graph, &mut CpqxIndex) -> (R, bool),
    ) -> Result<(R, u64, bool, f64), std::io::Error> {
        let _writer = self.writer.lock().unwrap();
        let mut trace = self.obs.begin(TraceKind::Delta);
        let snap = self.snapshot();
        // The clone is O(#chunks): all heavyweight storage is structurally
        // shared with the snapshot and copied chunk-by-chunk on first
        // touch (`deep_clone_writes` forces the pre-COW full copy for
        // benchmark comparison).
        let clone_timer = self.obs.timer();
        let (mut graph, mut index) = if self.options.deep_clone_writes {
            (snap.graph.deep_clone(), snap.index.deep_clone())
        } else {
            (snap.graph.clone(), snap.index.clone())
        };
        self.obs.stage(Stage::Clone, clone_timer, trace.as_mut());
        let maintain_timer = self.obs.timer();
        let (out, changed) = f(&mut graph, &mut index);
        self.obs.stage(Stage::Maintain, maintain_timer, trace.as_mut());
        if !changed {
            if let Some(mut tb) = trace {
                tb.set_epoch(snap.epoch());
                self.obs.finish(tb);
            }
            return Ok((out, snap.epoch(), false, index.fragmentation_ratio()));
        }
        let sink = match (log_ops, self.sink()) {
            (Some(ops), Some(sink)) => {
                let wal_timer = self.obs.timer();
                let bytes = sink.append(&graph, ops)?;
                self.obs.stage(Stage::WalAppend, wal_timer, trace.as_mut());
                self.counters.record_wal(bytes);
                Some(sink)
            }
            _ => None,
        };
        let rebuild_report = match self.options.auto_rebuild_ratio {
            Some(threshold) if index.fragmentation_ratio() > threshold => {
                let (fresh, report) = self.build_fresh(&graph, index.interests().cloned());
                index = fresh;
                self.counters.record_rebuild(true);
                Some(report)
            }
            _ => None,
        };
        // Copy-on-write accounting against the snapshot being replaced: a
        // rebuild naturally reads as all-copied, a small delta as a few
        // copied chunks over a large shared remainder.
        let cow = graph.cow_diff(&snap.graph).merge(index.cow_diff(&snap.index));
        self.counters.record_cow(cow.chunks_copied as u64, cow.chunks_shared as u64);
        if let (Some(sink), Some(limit)) = (&sink, self.options.durability.checkpoint_wal_bytes) {
            if sink.wal_bytes_since_checkpoint() > limit {
                // Checkpoints the exact (possibly auto-rebuilt) state the
                // install below publishes. Failure is non-fatal: the WAL
                // retains full coverage and the next trigger retries.
                if let Ok(report) = sink.checkpoint(&graph, &index) {
                    self.counters.record_checkpoint(report.chunks_written, report.chunks_skipped);
                }
            }
        }
        let ratio = index.fragmentation_ratio();
        let install_timer = self.obs.timer();
        let epoch = self.install(graph, index);
        self.obs.stage(Stage::Install, install_timer, trace.as_mut());
        if let Some(report) = rebuild_report {
            // After the install, for the same reason as Engine::rebuild.
            *self.last_build.lock().unwrap() = report;
            self.record_build_obs(&report, epoch);
        }
        if let Some(mut tb) = trace {
            tb.set_epoch(epoch);
            self.obs.finish(tb);
        }
        Ok((out, epoch, rebuild_report.is_some(), ratio))
    }

    /// Installs a new current snapshot (caller holds the writer lock).
    /// Invalidate-then-install ordering: between the two steps readers
    /// run uncached against the old snapshot, but no stale entry can ever
    /// be served for the new epoch.
    fn install(&self, graph: Graph, index: CpqxIndex) -> u64 {
        let epoch = self.epoch() + 1;
        {
            let mut res = self.results.lock().unwrap();
            let dropped = res.cache.len() as u64;
            res.epoch = epoch;
            res.cache.clear();
            self.counters.record_swap(dropped);
        }
        let snapshot =
            Snapshot::new(graph, index, epoch, self.options.plan_cache_capacity, self.options.exec);
        *self.current.write().unwrap() = Arc::new(snapshot);
        epoch
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Engine")
            .field("epoch", &snap.epoch())
            .field("index", snap.index())
            .field("stats", &self.stats().to_string())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    fn gex_engine() -> Engine {
        Engine::build(generate::gex(), 2)
    }

    #[test]
    fn serves_correct_answers() {
        let engine = gex_engine();
        let snap = engine.snapshot();
        let q = parse_cpq("(f . f) & f^-1", snap.graph()).unwrap();
        let expected = eval_reference(snap.graph(), &q);
        assert_eq!(*engine.query(&q), expected);
        // Second serve: result-cache hit, same answer.
        assert_eq!(*engine.query(&q), expected);
        let stats = engine.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.result_hits, 1);
        assert!(stats.result_hit_rate > 0.49);
    }

    #[test]
    fn semantically_equal_queries_share_cache_entries() {
        let engine = gex_engine();
        let g = engine.snapshot();
        let a = parse_cpq("(f . f) & f^-1", g.graph()).unwrap();
        let b = parse_cpq("f^-1 & (f . (f . id))", g.graph()).unwrap();
        engine.query(&a);
        engine.query(&b);
        let stats = engine.stats();
        assert_eq!(stats.result_hits, 1, "canonicalization must unify {a:?} and {b:?}");
    }

    #[test]
    fn maintenance_swaps_snapshots_and_invalidates() {
        let engine = gex_engine();
        let snap0 = engine.snapshot();
        let g0 = snap0.graph();
        let q = parse_cpq("f . f", g0).unwrap();
        let before = engine.query(&q);
        let (sue, joe) = (g0.vertex_named("sue").unwrap(), g0.vertex_named("joe").unwrap());
        let f = g0.label_named("f").unwrap();
        assert!(engine.delete_edge(sue, joe, f));
        assert_eq!(engine.epoch(), 1);
        // Old snapshot still fully queryable (readers are not blocked).
        assert_eq!(snap0.evaluate(&q), *before);
        // New snapshot reflects the deletion and matches the reference.
        let snap1 = engine.snapshot();
        let expected = eval_reference(snap1.graph(), &q);
        assert_eq!(*engine.query(&q), expected);
        assert_ne!(*before, expected, "deletion must change this answer");
        assert_eq!(engine.stats().snapshot_swaps, 1);
        // No-op maintenance installs nothing.
        assert!(!engine.delete_edge(sue, joe, f));
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn update_with_epoch_reports_the_installed_version() {
        let engine = gex_engine();
        let snap = engine.snapshot();
        let g0 = snap.graph();
        let (sue, joe) = (g0.vertex_named("sue").unwrap(), g0.vertex_named("joe").unwrap());
        let f = g0.label_named("f").unwrap();
        assert_eq!(engine.delete_edge_with_epoch(sue, joe, f), (true, 1));
        // No-op: not applied, epoch pinned to the version the decision
        // was made against.
        assert_eq!(engine.delete_edge_with_epoch(sue, joe, f), (false, 1));
        assert_eq!(engine.insert_edge_with_epoch(sue, joe, f), (true, 2));
        assert_eq!(engine.epoch(), 2);
    }

    #[test]
    fn update_transaction_batches_changes() {
        let engine = gex_engine();
        let snap = engine.snapshot();
        let f = snap.graph().label_named("f").unwrap();
        let (applied, epoch) = engine.update(|g, idx| {
            let a = idx.add_vertex(g, "newbie");
            let sue = g.vertex_named("sue").unwrap();
            idx.insert_edge(g, a, sue, f) && idx.insert_edge(g, sue, a, f)
        });
        assert!(applied);
        assert_eq!(epoch, 1);
        let snap1 = engine.snapshot();
        let q = parse_cpq("(f . f) & id", snap1.graph()).unwrap();
        assert_eq!(*engine.query(&q), eval_reference(snap1.graph(), &q));
    }

    #[test]
    fn rebuild_defragments() {
        let engine = gex_engine();
        let snap = engine.snapshot();
        let g0 = snap.graph();
        let f = g0.label_named("f").unwrap();
        let (sue, joe) = (g0.vertex_named("sue").unwrap(), g0.vertex_named("joe").unwrap());
        engine.delete_edge(sue, joe, f);
        engine.insert_edge(sue, joe, f);
        let fragmented = engine.snapshot().index().class_slots();
        let report = engine.rebuild();
        assert!(report.shards >= 1);
        let rebuilt = engine.snapshot();
        assert!(rebuilt.index().class_slots() <= fragmented);
        let q = parse_cpq("(f . f) & f^-1", rebuilt.graph()).unwrap();
        assert_eq!(*engine.query(&q), eval_reference(rebuilt.graph(), &q));
    }

    #[test]
    fn interest_aware_engine_serves_and_maintains() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let ff = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
        let (engine, report) = Engine::with_options(
            g,
            EngineOptions { k: 2, interests: Some(vec![ff]), ..EngineOptions::default() },
        );
        // Interest-aware engines build sharded too: the report describes
        // the interest-shard phase instead of level-1/refine.
        assert!(report.shards >= 1);
        assert_eq!(report.level1, std::time::Duration::ZERO);
        let snap = engine.snapshot();
        assert!(snap.index().is_interest_aware());
        let q = parse_cpq("(f . f) & f^-1", snap.graph()).unwrap();
        assert_eq!(*engine.query(&q), eval_reference(snap.graph(), &q));
        let v = g_label_seq(&engine);
        assert!(engine.insert_interest(v));
        assert_eq!(engine.epoch(), 1);
        assert!(engine.rebuild().shards >= 1);
        let q2 = parse_cpq("(f^-1 . f) & id", engine.snapshot().graph()).unwrap();
        assert_eq!(*engine.query(&q2), eval_reference(engine.snapshot().graph(), &q2));
    }

    fn g_label_seq(engine: &Engine) -> LabelSeq {
        let snap = engine.snapshot();
        let f = snap.graph().label_named("f").unwrap();
        LabelSeq::from_slice(&[f.inv(), f.fwd()])
    }

    #[test]
    fn plan_cache_hits_within_a_snapshot() {
        let engine = gex_engine();
        let snap = engine.snapshot();
        let q = parse_cpq("f . f . f", snap.graph()).unwrap();
        engine.query_uncached(&q);
        engine.query_uncached(&q);
        // query_uncached bypasses result caching but shares the snapshot
        // plan cache via Snapshot::evaluate.
        assert_eq!(engine.stats().result_hits, 0);
    }

    #[test]
    fn admission_policy_rejects_cheap_queries() {
        let g = generate::gex();
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions {
                k: 2,
                result_admission_min_cost: f64::INFINITY,
                ..EngineOptions::default()
            },
        );
        let snap = engine.snapshot();
        let q = parse_cpq("(f . f) & f^-1", snap.graph()).unwrap();
        let expected = eval_reference(snap.graph(), &q);
        assert_eq!(*engine.query(&q), expected);
        assert_eq!(*engine.query(&q), expected, "rejection must not change answers");
        let stats = engine.stats();
        assert_eq!(stats.result_hits, 0, "nothing may be admitted");
        assert_eq!(stats.rejected_admissions, 2);
    }

    #[test]
    fn admission_policy_separates_by_cost() {
        // A threshold between the costs of a trivial and a compound query
        // must cache the latter but not the former.
        let g = generate::gex();
        let snap_graph = g.clone();
        let idx = cpqx_core::CpqxIndex::build(&snap_graph, 2);
        let cheap = parse_cpq("f", &snap_graph).unwrap();
        let pricey = parse_cpq("(f . f) & f^-1", &snap_graph).unwrap();
        let cheap_cost = cpqx_core::estimate_plan_cost(&idx, &snap_graph, &cheap);
        let pricey_cost = cpqx_core::estimate_plan_cost(&idx, &snap_graph, &pricey);
        assert!(cheap_cost < pricey_cost, "{cheap_cost} !< {pricey_cost}");
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions {
                k: 2,
                result_admission_min_cost: (cheap_cost + pricey_cost) / 2.0,
                ..EngineOptions::default()
            },
        );
        engine.query(&cheap);
        engine.query(&cheap);
        engine.query(&pricey);
        engine.query(&pricey);
        let stats = engine.stats();
        assert_eq!(stats.result_hits, 1, "only the compound query is cached");
        assert_eq!(stats.rejected_admissions, 2);
    }

    #[test]
    fn delta_transaction_applies_atomically_with_per_op_outcomes() {
        use crate::delta::{Delta, OpOutcome};
        let engine = gex_engine();
        let snap = engine.snapshot();
        let g0 = snap.graph();
        let f = g0.label_named("f").unwrap();
        let v = g0.label_named("v").unwrap();
        let (sue, joe) = (g0.vertex_named("sue").unwrap(), g0.vertex_named("joe").unwrap());
        let new_id = g0.vertex_count();
        let delta = Delta::new()
            .add_vertex("newbie")
            .insert_edge(new_id, sue, f) // references the vertex added above
            .insert_edge(sue, joe, f) // already exists: noop
            .change_edge_label(sue, joe, f, v)
            .delete_edge(joe, sue, v); // never existed: noop
        let report = engine.apply_delta(&delta).expect("valid delta");
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.outcomes[0], OpOutcome::VertexAdded(new_id));
        assert_eq!(report.outcomes[1], OpOutcome::Applied);
        assert_eq!(report.outcomes[2], OpOutcome::Noop);
        assert_eq!(report.outcomes[3], OpOutcome::Applied);
        assert_eq!(report.outcomes[4], OpOutcome::Noop);
        assert_eq!(report.applied, 3);
        // One transaction = one install, whatever the op count.
        assert_eq!(report.epoch, 1);
        assert_eq!(engine.epoch(), 1);
        assert!(!report.rebuilt);
        assert!(report.fragmentation_ratio >= 1.0);
        let snap1 = engine.snapshot();
        for text in ["f . f", "v . v^-1", "(f . f) & f^-1"] {
            let q = parse_cpq(text, snap1.graph()).unwrap();
            assert_eq!(*engine.query(&q), eval_reference(snap1.graph(), &q), "{text}");
        }
        let stats = engine.stats();
        assert_eq!(stats.delta_transactions, 1);
        assert_eq!(stats.lazy_update_ops, 3);
        assert_eq!(stats.rebuilds, 0);

        // An invalid op rejects the whole delta: nothing installed, even
        // for the valid prefix.
        let bad = Delta::new().delete_edge(sue, joe, v).insert_edge(u32::MAX, sue, f);
        let err = engine.apply_delta(&bad).expect_err("out-of-range vertex");
        assert_eq!(err.op_index, 1);
        assert_eq!(engine.epoch(), 1, "aborted delta must not install");
        let q = parse_cpq("v", engine.snapshot().graph()).unwrap();
        assert_eq!(
            *engine.query(&q),
            eval_reference(engine.snapshot().graph(), &q),
            "prefix of the aborted delta must not be visible"
        );

        // Empty deltas don't install either.
        let report = engine.apply_delta(&Delta::new()).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.applied, 0);
    }

    #[test]
    fn auto_rebuild_defragments_past_the_threshold() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(60, 240, 3, 5));
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions { k: 2, auto_rebuild_ratio: Some(1.02), ..EngineOptions::default() },
        );
        let baseline = engine.stats().baseline_classes;
        // Churn until the (very low) threshold trips.
        let snap = engine.snapshot();
        let edges: Vec<_> = snap.graph().base_edges().take(40).collect();
        let mut rebuilt_seen = false;
        for (v, u, l) in edges {
            let delta = crate::delta::Delta::new().delete_edge(v, u, l).insert_edge(v, u, l);
            let report = engine.apply_delta(&delta).unwrap();
            rebuilt_seen |= report.rebuilt;
            if report.rebuilt {
                assert!(
                    (report.fragmentation_ratio - 1.0).abs() < 1e-9,
                    "a rebuild restores the minimal partition"
                );
            }
        }
        assert!(rebuilt_seen, "threshold 1.02 must trip under churn");
        let stats = engine.stats();
        assert!(stats.auto_rebuilds >= 1);
        assert_eq!(stats.rebuilds, stats.auto_rebuilds);
        assert!(stats.baseline_classes > 0);
        assert!(baseline > 0);
        // Serving stays correct across the auto-rebuilds.
        let snap = engine.snapshot();
        let q =
            parse_cpq("0 . 1", snap.graph()).or_else(|_| parse_cpq("l0 . l1", snap.graph())).ok();
        if let Some(q) = q {
            assert_eq!(*engine.query(&q), eval_reference(snap.graph(), &q));
        }
    }

    #[test]
    fn interest_delta_ops_on_interest_aware_engine() {
        use crate::delta::OpOutcome;
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let ff = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
        let fif = LabelSeq::from_slice(&[f.inv(), f.fwd()]);
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions { k: 2, interests: Some(vec![ff]), ..EngineOptions::default() },
        );
        let delta = crate::delta::Delta::new()
            .insert_interest(fif)
            .insert_interest(ff) // already registered: noop
            .delete_interest(ff);
        let report = engine.apply_delta(&delta).unwrap();
        assert_eq!(report.outcomes, vec![OpOutcome::Applied, OpOutcome::Noop, OpOutcome::Applied]);
        let snap = engine.snapshot();
        let q = parse_cpq("(f^-1 . f) & id", snap.graph()).unwrap();
        assert_eq!(*engine.query(&q), eval_reference(snap.graph(), &q));
        // On a full (non-ia) engine interest ops are valid no-ops.
        let full = gex_engine();
        let report = full.apply_delta(&crate::delta::Delta::new().insert_interest(fif)).unwrap();
        assert_eq!(report.outcomes, vec![OpOutcome::Noop]);
        assert_eq!(full.epoch(), 0);
    }

    #[test]
    fn histogram_and_reservoir_percentiles_agree() {
        let engine = gex_engine();
        let snap = engine.snapshot();
        for text in ["(f . f) & f^-1", "f . f", "f^-1 . f"] {
            let q = parse_cpq(text, snap.graph()).unwrap();
            for _ in 0..50 {
                engine.query(&q);
            }
        }
        let hist = engine.stats(); // histogram-sourced p50/p99
        let reservoir = engine.reservoir_report(); // reservoir-sourced
        assert_eq!(hist.queries, 150);
        for (h, r) in [(hist.p50, reservoir.p50), (hist.p99, reservoir.p99)] {
            let (bh, br) = (
                cpqx_obs::bucket_index(h.as_micros() as u64),
                cpqx_obs::bucket_index(r.as_micros() as u64),
            );
            assert!(bh.abs_diff(br) <= 1, "histogram {h:?} vs reservoir {r:?} ({bh} vs {br})");
        }
    }

    #[test]
    fn slow_query_log_captures_span_tree_with_key_and_epoch() {
        let g = generate::gex();
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions {
                k: 2,
                result_cache_capacity: 0, // force plan+eval every time
                obs: ObsOptions {
                    // Threshold 1us: effectively every query is "slow".
                    slow_query: Some(Duration::from_micros(1)),
                    ..ObsOptions::default()
                },
                ..EngineOptions::default()
            },
        );
        let snap = engine.snapshot();
        let q = parse_cpq("(f . f) & f^-1", snap.graph()).unwrap();
        engine.query(&q);
        let slow = engine.obs().slow_queries();
        assert!(!slow.is_empty(), "a 1us threshold must capture this query");
        let entry = slow.last().unwrap();
        assert_eq!(entry.epoch, 0);
        assert!(!entry.key.is_empty(), "canonical key attached");
        for stage in [Stage::CacheProbe, Stage::Plan, Stage::Eval] {
            assert!(entry.span(stage).is_some(), "missing {stage:?} in {entry:?}");
        }
        assert!(entry.total_us >= 1);
    }

    #[test]
    fn delta_and_build_traces_record_their_stages() {
        let g = generate::gex();
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions {
                k: 2,
                obs: ObsOptions { sample_every: 1, ..ObsOptions::default() },
                ..EngineOptions::default()
            },
        );
        let snap = engine.snapshot();
        let f = snap.graph().label_named("f").unwrap();
        let (sue, joe) =
            (snap.graph().vertex_named("sue").unwrap(), snap.graph().vertex_named("joe").unwrap());
        engine.delete_edge(sue, joe, f);
        engine.rebuild();
        let traces = engine.obs().traces();
        let delta = traces.iter().find(|t| t.kind == TraceKind::Delta).expect("delta trace");
        assert!(delta.span(Stage::Clone).is_some() && delta.span(Stage::Install).is_some());
        assert!(delta.span(Stage::Maintain).is_some());
        assert_eq!(delta.epoch, 1);
        let build = traces.iter().rfind(|t| t.kind == TraceKind::Build).expect("build trace");
        assert!(build.span(Stage::BuildMerge).is_some());
        assert_eq!(build.epoch, 2, "rebuild trace carries the installed epoch");
        // Opcode histograms saw the traffic too.
        assert!(engine.obs().op_snapshot(Op::Delta).count() >= 1);
    }

    #[test]
    fn zero_capacity_result_cache() {
        let g = generate::gex();
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions { k: 2, result_cache_capacity: 0, ..EngineOptions::default() },
        );
        let snap = engine.snapshot();
        let q = parse_cpq("f . f", snap.graph()).unwrap();
        engine.query(&q);
        engine.query(&q);
        assert_eq!(engine.stats().result_hits, 0, "cache disabled");
    }
}
