//! Batch workload evaluation over one consistent snapshot.
//!
//! A batch pins the engine's current snapshot once and fans its queries
//! out across a scoped worker pool: every answer in the batch reflects the
//! *same* graph version even if maintenance installs new snapshots while
//! the batch runs. Results come back in input order together with
//! per-query latencies and aggregate throughput.

use cpqx_graph::Pair;
use cpqx_query::Cpq;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::pool;

/// Knobs for [`Engine::evaluate_batch`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads; `None` uses the available parallelism (capped by
    /// the batch size).
    pub threads: Option<usize>,
    /// Skip the shared result cache (every query executes; used to
    /// measure raw engine throughput).
    pub bypass_result_cache: bool,
}

/// The outcome of one batch run.
pub struct BatchOutcome {
    /// Per-query answers, in input order, shared with the result cache.
    pub results: Vec<Arc<Vec<Pair>>>,
    /// Per-query wall-clock latencies, in input order.
    pub latencies: Vec<Duration>,
    /// End-to-end wall-clock of the whole batch.
    pub total: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// The epoch all answers are consistent with.
    pub epoch: u64,
}

impl BatchOutcome {
    /// Queries per second over the batch wall-clock.
    pub fn throughput_qps(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.results.len() as f64 / self.total.as_secs_f64()
    }

    /// The `p`-quantile (0.0–1.0, clamped) of per-query latency — the
    /// engine-wide nearest-rank definition
    /// ([`crate::stats::nearest_rank_quantile`]), so batch quantiles and
    /// `StatsReport` percentiles agree on semantics.
    pub fn latency_quantile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        crate::stats::nearest_rank_quantile(&sorted, p).unwrap_or(Duration::ZERO)
    }
}

impl Engine {
    /// Evaluates `queries` across a worker pool against one pinned
    /// snapshot (see module docs).
    pub fn evaluate_batch(&self, queries: &[Cpq], opts: BatchOptions) -> BatchOutcome {
        let snap = self.snapshot();
        self.evaluate_batch_on(&snap, queries, opts)
    }

    /// Like [`Engine::evaluate_batch`] but against a caller-pinned
    /// snapshot, so the caller can atomically tie other per-version work —
    /// e.g. parsing query text against the snapshot's label table, as the
    /// network front-end does — to the exact version the whole batch is
    /// evaluated on.
    pub fn evaluate_batch_on(
        &self,
        snap: &crate::engine::Snapshot,
        queries: &[Cpq],
        opts: BatchOptions,
    ) -> BatchOutcome {
        let n = queries.len();
        let threads = opts.threads.unwrap_or_else(pool::default_threads).clamp(1, n.max(1));
        let t0 = Instant::now();

        type Slot = Mutex<Option<(Arc<Vec<Pair>>, Duration)>>;
        let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        pool::spawn_workers(threads, |_worker| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let q0 = Instant::now();
            let out = if opts.bypass_result_cache {
                let out = Arc::new(snap.evaluate(&queries[i]));
                // query_on records its own traffic; the bypass path must
                // account itself — in both latency sinks, so reservoir
                // and histogram percentiles stay comparable — or stats
                // would undercount served queries.
                self.note_query(q0.elapsed(), false);
                out
            } else {
                self.query_on(snap, &queries[i])
            };
            *slots[i].lock().unwrap() = Some((out, q0.elapsed()));
        });

        let mut results = Vec::with_capacity(n);
        let mut latencies = Vec::with_capacity(n);
        for s in slots {
            let (r, l) = s.into_inner().unwrap().expect("batch slot unfilled");
            results.push(r);
            latencies.push(l);
        }
        let total = t0.elapsed();
        // Whole-batch wall time under its own opcode; the member
        // queries already landed in the query histogram individually.
        self.obs().record_op(cpqx_obs::Op::Batch, total);
        BatchOutcome { results, latencies, total, threads, epoch: snap.epoch() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::workload::{GraphProbe, WorkloadGen};
    use cpqx_query::Template;

    fn workload(g: &cpqx_graph::Graph, per_template: usize) -> Vec<Cpq> {
        let probe = GraphProbe(g);
        let mut gen = WorkloadGen::new(g, 99);
        Template::ALL.iter().flat_map(|&t| gen.queries(t, per_template, &probe)).collect()
    }

    #[test]
    fn batch_matches_reference_in_order() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(80, 400, 3, 7));
        let queries = workload(&g, 2);
        assert!(!queries.is_empty());
        let engine = Engine::build(g, 2);
        let snap = engine.snapshot();
        let out = engine
            .evaluate_batch(&queries, BatchOptions { threads: Some(4), ..BatchOptions::default() });
        assert_eq!(out.results.len(), queries.len());
        assert_eq!(out.latencies.len(), queries.len());
        assert_eq!(out.epoch, 0);
        for (q, r) in queries.iter().zip(&out.results) {
            assert_eq!(**r, eval_reference(snap.graph(), q), "query {q:?}");
        }
        assert!(out.throughput_qps() > 0.0);
        assert!(out.latency_quantile(0.99) >= out.latency_quantile(0.5));
    }

    #[test]
    fn repeated_batch_hits_cache() {
        let g = generate::gex();
        let queries = workload(&g, 3);
        let engine = Engine::build(g, 2);
        engine.evaluate_batch(&queries, BatchOptions::default());
        let before = engine.stats().result_hits;
        engine.evaluate_batch(&queries, BatchOptions::default());
        let after = engine.stats().result_hits;
        assert!(after > before, "second pass must be served from cache");
    }

    #[test]
    fn bypass_cache_executes_everything() {
        let g = generate::gex();
        let queries = workload(&g, 2);
        let engine = Engine::build(g, 2);
        let opts = BatchOptions { bypass_result_cache: true, ..BatchOptions::default() };
        engine.evaluate_batch(&queries, opts);
        engine.evaluate_batch(&queries, opts);
        assert_eq!(engine.stats().result_hits, 0);
    }

    #[test]
    fn batch_on_pinned_snapshot_survives_swap() {
        let g = generate::gex();
        let engine = Engine::build(g, 2);
        let snap = engine.snapshot();
        let queries = workload(snap.graph(), 2);
        let f = snap.graph().label_named("f").unwrap();
        let (sue, joe) =
            (snap.graph().vertex_named("sue").unwrap(), snap.graph().vertex_named("joe").unwrap());
        assert!(engine.delete_edge(sue, joe, f));
        // The batch still evaluates on the pinned pre-deletion version.
        let out = engine.evaluate_batch_on(&snap, &queries, BatchOptions::default());
        assert_eq!(out.epoch, 0);
        for (q, r) in queries.iter().zip(&out.results) {
            assert_eq!(**r, eval_reference(snap.graph(), q), "query {q:?}");
        }
    }

    #[test]
    fn empty_batch() {
        let engine = Engine::build(generate::gex(), 2);
        let out = engine.evaluate_batch(&[], BatchOptions::default());
        assert!(out.results.is_empty());
        assert_eq!(out.throughput_qps(), 0.0);
        assert_eq!(out.latency_quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn batch_threads_clamp() {
        let g = generate::gex();
        let queries = workload(&g, 1);
        let (engine, _) =
            Engine::with_options(g, EngineOptions { k: 2, ..EngineOptions::default() });
        let out = engine.evaluate_batch(
            &queries,
            BatchOptions { threads: Some(64), ..BatchOptions::default() },
        );
        assert!(out.threads <= queries.len());
    }
}
