//! Sharded parallel index construction — full CPQx and interest-aware.
//!
//! The sequential builders ([`CpqxIndex::build`] /
//! [`CpqxIndex::build_interest_aware`]) run over the whole pair space.
//! This module parallelizes both ends of the pipeline:
//!
//! * **Full CPQx** ([`build_sharded`]): the level-1 pass of Algorithm 1
//!   runs parallel per source range inside
//!   [`cpqx_core::RefinementBase::with_threads`] (structurally identical
//!   to the sequential pass — same block ids, same layout), then the set
//!   `P≤k` partitions exactly by *source vertex* (every path from `v`
//!   yields only pairs `(v, ·)`), so refinement levels `2..=k` and class
//!   assembly run independently per source range on a scoped thread pool.
//! * **Interest-aware iaCPQx** ([`build_interest_sharded`]): sequence
//!   relations partition by source too, so
//!   [`cpqx_core::interest_partition_range`] computes each shard's
//!   partition over a label-weighted source range
//!   ([`cpqx_graph::Graph::balanced_src_ranges_for_labels`] — interest
//!   work is driven by the indexed sequences' first labels, not total
//!   degree).
//!
//! Either way, shard partitions are merged by the class invariant
//! `(cyclicity, L≤k)` (full) or `(cyclicity, L≤k ∩ Lq)` (interest) via
//! [`cpqx_core::merge_partitions`] and materialized through
//! [`CpqxIndex::from_partition`].
//!
//! The result is **query-equivalent** to the sequential build: every pair
//! is assigned the same sequence-set invariant, which is the only property
//! query processing relies on (Prop. 4.1). Class *ids* may differ (merging
//! by invariant can coarsen full-CPQx block-signature classes; interest
//! classes keep identical counts, merely renumbered), which is observable
//! only through diagnostics like [`CpqxIndex::stats`]. The
//! `build_differential` harness replays random graphs + interest sets
//! through all three pipelines at 1–16 threads to hold this equivalence.

use cpqx_core::{merge_partitions, CpqxIndex, RefinementBase};
use cpqx_graph::{ExtLabel, Graph, LabelSeq};
use std::time::{Duration, Instant};

use crate::pool;

/// Knobs for [`build_sharded`] and [`build_interest_sharded`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildOptions {
    /// Number of source-range shards; `None` picks the available
    /// parallelism. A single shard degenerates to the sequential pipeline.
    pub shards: Option<usize>,
    /// Worker threads refining shards concurrently; `None` matches the
    /// shard count.
    pub threads: Option<usize>,
}

/// Phase timings and shape of one sharded build (for benches and the
/// engine's stats endpoint). Phases that a pipeline does not run report
/// [`Duration::ZERO`] — full builds have no `interest_shards` phase,
/// interest builds no `level1`/`refine`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildReport {
    /// Shards actually used (≤ requested; small graphs use fewer).
    pub shards: usize,
    /// Worker-thread cap the parallel phases ran under (each phase
    /// additionally clamps to its own work-item count, so fewer workers
    /// may have run where there were fewer shards than this).
    pub threads: usize,
    /// Wall-clock of the shared global level-1 pass (extraction, sorting,
    /// block-id assignment, adjacency form). Since the parallel level-1
    /// rewrite this pass is no longer a sequential prefix: its per-range
    /// sections run on the worker pool, with only the signature merge
    /// left serial (see [`BuildReport::level1_parallel`]).
    pub level1: Duration,
    /// Wall-clock spent inside the *parallel sections* of the level-1
    /// pass (per-range extraction + sort, and block-id mapping). Zero
    /// when level 1 degenerated to the single-threaded pipeline.
    pub level1_parallel: Duration,
    /// Wall-clock of the parallel per-shard interest partitioning phase
    /// of [`build_interest_sharded`] (zero for full-CPQx builds).
    pub interest_shards: Duration,
    /// Wall-clock of the parallel refine+assemble phase (full builds).
    pub refine: Duration,
    /// Wall-clock of the merge + index materialization phase.
    pub merge: Duration,
    /// End-to-end wall-clock.
    pub total: Duration,
}

/// Builds the full CPQ-aware index of `g` with path parameter `k` using
/// sharded parallel refinement over a parallel level-1 base.
/// Query-equivalent to [`CpqxIndex::build`]`(g, k)` (see module docs).
pub fn build_sharded(g: &Graph, k: usize, opts: BuildOptions) -> CpqxIndex {
    build_sharded_with_report(g, k, opts).0
}

/// [`build_sharded`], also returning phase timings.
pub fn build_sharded_with_report(
    g: &Graph,
    k: usize,
    opts: BuildOptions,
) -> (CpqxIndex, BuildReport) {
    let t_start = Instant::now();
    let requested = opts.shards.unwrap_or_else(pool::default_threads).max(1);
    let threads_hint = opts.threads.unwrap_or(requested).max(1);

    let t0 = Instant::now();
    let (base, level1_parallel) = RefinementBase::with_threads_timed(g, threads_hint);
    let level1 = t0.elapsed();

    let ranges = base.balanced_ranges(requested);
    let shards = ranges.len().max(1);
    // The report carries the worker cap both phases ran under — level 1
    // used it directly above; parallel_map clamps to the shard count on
    // its own.
    let threads = threads_hint;

    let t0 = Instant::now();
    let parts = pool::parallel_map(ranges, threads, |r| base.partition_range(k, r));
    let refine = t0.elapsed();

    let t0 = Instant::now();
    let index = CpqxIndex::from_partition(k, None, merge_partitions(parts));
    let merge = t0.elapsed();

    let report = BuildReport {
        shards,
        threads,
        level1,
        level1_parallel,
        interest_shards: Duration::ZERO,
        refine,
        merge,
        total: t_start.elapsed(),
    };
    (index, report)
}

/// Builds the interest-aware index (iaCPQx, Sec. V) of `g` with path
/// parameter `k` using sharded parallel partitioning. `interests` may
/// contain sequences longer than `k`; they are normalized by
/// prefix-splitting exactly as in [`CpqxIndex::build_interest_aware`],
/// to which the result is query-equivalent with identical class counts
/// (see module docs).
pub fn build_interest_sharded(
    g: &Graph,
    k: usize,
    interests: impl IntoIterator<Item = LabelSeq>,
    opts: BuildOptions,
) -> CpqxIndex {
    build_interest_sharded_with_report(g, k, interests, opts).0
}

/// [`build_interest_sharded`], also returning phase timings.
pub fn build_interest_sharded_with_report(
    g: &Graph,
    k: usize,
    interests: impl IntoIterator<Item = LabelSeq>,
    opts: BuildOptions,
) -> (CpqxIndex, BuildReport) {
    let t_start = Instant::now();
    let requested = opts.shards.unwrap_or_else(pool::default_threads).max(1);

    let lq = cpqx_core::normalize_interests(interests, k);
    // The indexed sequence list is derived once and shared by every shard
    // (it must be identical across shards for the classes to merge).
    let seqs = cpqx_core::interest::indexed_interest_seqs(g, k, &lq);
    // Shard ranges balanced by the work the shards will actually do: one
    // adjacency expansion per outgoing edge per indexed sequence starting
    // with that edge's label (repeated first labels count once per
    // sequence).
    let first_labels: Vec<ExtLabel> = seqs.iter().map(|s| s.get(0)).collect();
    let ranges = g.balanced_src_ranges_for_labels(&first_labels, requested);
    let shards = ranges.len().max(1);
    // Same cap semantics as build_sharded_with_report; parallel_map
    // clamps to the shard count on its own.
    let threads = opts.threads.unwrap_or(requested).max(1);

    let t0 = Instant::now();
    let parts = pool::parallel_map(ranges, threads, |r| {
        cpqx_core::interest::interest_partition_range_with_seqs(g, k, &seqs, r)
    });
    let interest_shards = t0.elapsed();

    let t0 = Instant::now();
    let index = CpqxIndex::from_partition(k, Some(lq), merge_partitions(parts));
    let merge = t0.elapsed();

    let report = BuildReport {
        shards,
        threads,
        level1: Duration::ZERO,
        level1_parallel: Duration::ZERO,
        interest_shards,
        refine: Duration::ZERO,
        merge,
        total: t_start.elapsed(),
    };
    (index, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn sharded_build_answers_like_sequential() {
        let g = generate::gex();
        let seq = CpqxIndex::build(&g, 2);
        for shards in [1, 2, 4, 16] {
            let par = build_sharded(&g, 2, BuildOptions { shards: Some(shards), threads: Some(4) });
            assert_eq!(par.pair_count(), seq.pair_count());
            for text in ["(f . f) & f^-1", "f . f", "(f . f^-1) & id", "f & (f . f . f)"] {
                let q = parse_cpq(text, &g).unwrap();
                assert_eq!(par.evaluate(&g, &q), seq.evaluate(&g, &q), "{text} @ {shards}");
                assert_eq!(par.evaluate(&g, &q), eval_reference(&g, &q), "{text} reference");
            }
        }
    }

    #[test]
    fn interest_sharded_build_answers_like_sequential() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        let interests =
            [LabelSeq::from_slice(&[f.fwd(), f.fwd()]), LabelSeq::from_slice(&[v.fwd(), f.inv()])];
        let seq = CpqxIndex::build_interest_aware(&g, 2, interests.iter().copied());
        for shards in [1, 2, 4, 16] {
            let par = build_interest_sharded(
                &g,
                2,
                interests.iter().copied(),
                BuildOptions { shards: Some(shards), threads: Some(4) },
            );
            assert!(par.is_interest_aware());
            assert_eq!(par.interests(), seq.interests());
            assert_eq!(par.pair_count(), seq.pair_count(), "{shards} shards");
            // Interest classes merge by their exact grouping key, so the
            // counts agree exactly (not merely coarsen).
            assert_eq!(par.stats().classes, seq.stats().classes, "{shards} shards");
            for text in ["(f . f) & f^-1", "f . f", "v . f^-1", "(v . v^-1) & id"] {
                let q = parse_cpq(text, &g).unwrap();
                assert_eq!(par.evaluate(&g, &q), seq.evaluate(&g, &q), "{text} @ {shards}");
                assert_eq!(par.evaluate(&g, &q), eval_reference(&g, &q), "{text} reference");
            }
        }
    }

    #[test]
    fn report_covers_phases() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(200, 900, 3, 11));
        let (idx, report) =
            build_sharded_with_report(&g, 2, BuildOptions { shards: Some(4), threads: Some(2) });
        assert!(idx.pair_count() > 0);
        assert_eq!(report.shards, 4);
        assert_eq!(report.threads, 2);
        assert!(report.total >= report.refine);
        assert_eq!(report.interest_shards, Duration::ZERO);
        // Multi-threaded level 1 must actually take the parallel path.
        assert!(report.level1_parallel > Duration::ZERO);
        assert!(report.level1 >= report.level1_parallel);

        let f = g.labels().next().unwrap();
        let (idx, report) = build_interest_sharded_with_report(
            &g,
            2,
            [LabelSeq::from_slice(&[f.fwd(), f.fwd()])],
            BuildOptions { shards: Some(4), threads: Some(2) },
        );
        assert!(idx.pair_count() > 0);
        assert_eq!(report.shards, 4);
        assert!(report.interest_shards > Duration::ZERO);
        assert_eq!(report.level1, Duration::ZERO);
        assert!(report.total >= report.interest_shards);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = cpqx_graph::GraphBuilder::new().build();
        let idx = build_sharded(&empty, 2, BuildOptions::default());
        assert_eq!(idx.pair_count(), 0);
        let idx = build_interest_sharded(&empty, 2, [], BuildOptions::default());
        assert_eq!(idx.pair_count(), 0);
        assert!(idx.is_interest_aware());
        let mut b = cpqx_graph::GraphBuilder::new();
        b.ensure_vertices(5);
        b.ensure_labels(1);
        let no_edges = b.build();
        let idx = build_sharded(&no_edges, 3, BuildOptions { shards: Some(8), threads: None });
        assert_eq!(idx.pair_count(), 0);
        let idx = build_interest_sharded(
            &no_edges,
            3,
            [],
            BuildOptions { shards: Some(8), threads: None },
        );
        assert_eq!(idx.pair_count(), 0);
    }
}
