//! Sharded parallel index construction.
//!
//! The sequential builder ([`CpqxIndex::build`]) runs Algorithm 1 over the
//! whole pair space. This module splits that work by *source vertex*: the
//! set `P≤k` partitions exactly by source (every path from `v` yields only
//! pairs `(v, ·)`), so after one shared global level-1 pass
//! ([`cpqx_core::RefinementBase`]), refinement levels `2..=k` and class
//! assembly run independently per source range on a scoped thread pool.
//! Shard partitions are merged by the class invariant `(cyclicity, L≤k)`
//! and materialized through [`CpqxIndex::from_partition`].
//!
//! The result is **query-equivalent** to the sequential build: every pair
//! is assigned the same `(cyclicity, L≤k)` invariant, which is the only
//! property query processing relies on (Prop. 4.1). Class *ids* may differ
//! (merging by invariant can coarsen block-signature classes), which is
//! observable only through diagnostics like [`CpqxIndex::stats`].

use cpqx_core::{merge_partitions, CpqxIndex, RefinementBase};
use cpqx_graph::Graph;
use std::time::{Duration, Instant};

use crate::pool;

/// Knobs for [`build_sharded`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildOptions {
    /// Number of source-range shards; `None` picks the available
    /// parallelism. A single shard degenerates to the sequential pipeline.
    pub shards: Option<usize>,
    /// Worker threads refining shards concurrently; `None` matches the
    /// shard count.
    pub threads: Option<usize>,
}

/// Phase timings and shape of one sharded build (for benches and the
/// engine's stats endpoint).
#[derive(Clone, Copy, Debug)]
pub struct BuildReport {
    /// Shards actually used (≤ requested; small graphs use fewer).
    pub shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the shared global level-1 pass.
    pub level1: Duration,
    /// Wall-clock of the parallel refine+assemble phase.
    pub refine: Duration,
    /// Wall-clock of the merge + index materialization phase.
    pub merge: Duration,
    /// End-to-end wall-clock.
    pub total: Duration,
}

/// Builds the full CPQ-aware index of `g` with path parameter `k` using
/// sharded parallel refinement. Query-equivalent to
/// [`CpqxIndex::build`]`(g, k)` (see module docs).
pub fn build_sharded(g: &Graph, k: usize, opts: BuildOptions) -> CpqxIndex {
    build_sharded_with_report(g, k, opts).0
}

/// [`build_sharded`], also returning phase timings.
pub fn build_sharded_with_report(
    g: &Graph,
    k: usize,
    opts: BuildOptions,
) -> (CpqxIndex, BuildReport) {
    let t_start = Instant::now();
    let requested = opts.shards.unwrap_or_else(pool::default_threads).max(1);

    let t0 = Instant::now();
    let base = RefinementBase::new(g);
    let level1 = t0.elapsed();

    let ranges = base.balanced_ranges(requested);
    let shards = ranges.len().max(1);
    let threads = opts.threads.unwrap_or(shards).clamp(1, shards.max(1));

    let t0 = Instant::now();
    let parts = pool::parallel_map(ranges, threads, |r| base.partition_range(k, r));
    let refine = t0.elapsed();

    let t0 = Instant::now();
    let index = CpqxIndex::from_partition(k, None, merge_partitions(parts));
    let merge = t0.elapsed();

    let report = BuildReport { shards, threads, level1, refine, merge, total: t_start.elapsed() };
    (index, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn sharded_build_answers_like_sequential() {
        let g = generate::gex();
        let seq = CpqxIndex::build(&g, 2);
        for shards in [1, 2, 4, 16] {
            let par = build_sharded(&g, 2, BuildOptions { shards: Some(shards), threads: Some(4) });
            assert_eq!(par.pair_count(), seq.pair_count());
            for text in ["(f . f) & f^-1", "f . f", "(f . f^-1) & id", "f & (f . f . f)"] {
                let q = parse_cpq(text, &g).unwrap();
                assert_eq!(par.evaluate(&g, &q), seq.evaluate(&g, &q), "{text} @ {shards}");
                assert_eq!(par.evaluate(&g, &q), eval_reference(&g, &q), "{text} reference");
            }
        }
    }

    #[test]
    fn report_covers_phases() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(200, 900, 3, 11));
        let (idx, report) =
            build_sharded_with_report(&g, 2, BuildOptions { shards: Some(4), threads: Some(2) });
        assert!(idx.pair_count() > 0);
        assert_eq!(report.shards, 4);
        assert_eq!(report.threads, 2);
        assert!(report.total >= report.refine);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = cpqx_graph::GraphBuilder::new().build();
        let idx = build_sharded(&empty, 2, BuildOptions::default());
        assert_eq!(idx.pair_count(), 0);
        let mut b = cpqx_graph::GraphBuilder::new();
        b.ensure_vertices(5);
        b.ensure_labels(1);
        let no_edges = b.build();
        let idx = build_sharded(&no_edges, 3, BuildOptions { shards: Some(8), threads: None });
        assert_eq!(idx.pair_count(), 0);
    }
}
