//! cpqx-obs: zero-dependency observability for the cpqx serving stack.
//!
//! Three pieces, layered so the fast path stays fast:
//!
//! - [`hist`] — fixed-layout log-bucketed (HDR-style) latency
//!   histograms: lock-free to record, cheap to snapshot, and mergeable
//!   across threads and processes because every histogram shares the
//!   same bucket boundaries. These are the engine's source of p50/p99.
//! - [`span`] — per-operation traces: a flat span tree recording where
//!   one query / delta / build / recovery spent its time, with the
//!   canonical query key and epoch attached.
//! - [`recorder`] — the [`Recorder`] gluing them together: sampling
//!   policy, per-opcode and per-stage histograms, a bounded trace
//!   ring, the slow-query log, and observed-workload key counts (the
//!   input the self-tuning advisor consumes).
//!
//! A disabled recorder costs one relaxed load and a branch per probe;
//! see [`recorder`] for the full cost model. The crate has no
//! dependencies and no platform requirements beyond `std`.

pub mod hist;
pub mod recorder;
pub mod span;

pub use hist::{bucket_hi, bucket_index, bucket_lo, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{ObsOptions, Op, Recorder, OP_COUNT};
pub use span::{Span, Stage, Trace, TraceBuilder, TraceKind, STAGE_COUNT};
