//! Spans and traces: where one request spent its time.
//!
//! A [`Trace`] is the record of one operation (a query, a delta
//! transaction, an index build, a recovery) as a flat preorder list of
//! [`Span`]s — each a named [`Stage`] with its start offset and
//! duration relative to the trace's start. Traces are built through a
//! [`TraceBuilder`] handed out by the recorder only when the operation
//! is sampled (or slow-query logging is armed), so the un-traced fast
//! path never allocates.

use std::time::Instant;

/// The instrumented stages, spanning the five pipelines the recorder
/// covers: query serving, delta transactions, index builds, recovery,
/// and the network server's event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Wire text → CPQ AST (network path only).
    Parse = 0,
    /// Canonical-plan cache probe + planning on miss.
    Plan = 1,
    /// Result-cache probe (including the epoch tag check).
    CacheProbe = 2,
    /// Plan evaluation against the pinned snapshot.
    Eval = 3,
    /// Delta: snapshot clone (COW or deep, per engine options).
    Clone = 4,
    /// Delta: applying ops + lazy index maintenance.
    Maintain = 5,
    /// Delta: write-ahead-log append + flush.
    WalAppend = 6,
    /// Delta: installing the new snapshot for readers.
    Install = 7,
    /// Build: level-1 (single-label) index construction.
    BuildLevel1 = 8,
    /// Build: per-shard refinement of higher levels.
    BuildShards = 9,
    /// Build: merging shard results into the final index.
    BuildMerge = 10,
    /// Recovery: manifest read + validation.
    RecoverManifest = 11,
    /// Recovery: snapshot chunk decode + graph/index reassembly.
    RecoverChunks = 12,
    /// Recovery: WAL tail replay.
    RecoverReplay = 13,
    /// Server: accepting a burst of new connections on the event loop.
    Accept = 14,
    /// Server: one readiness dispatch for a connection (read + frame
    /// reassembly + decode + inline handling or worker hand-off).
    Readiness = 15,
    /// Server: worker-pool evaluation of one request (includes queue
    /// wait, so the histogram reflects what the client experiences).
    Evaluate = 16,
    /// Server: encoding + flushing completed responses to a socket.
    Write = 17,
}

/// Number of [`Stage`] variants (histogram array size).
pub const STAGE_COUNT: usize = 18;

impl Stage {
    /// All stages, in tag order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Parse,
        Stage::Plan,
        Stage::CacheProbe,
        Stage::Eval,
        Stage::Clone,
        Stage::Maintain,
        Stage::WalAppend,
        Stage::Install,
        Stage::BuildLevel1,
        Stage::BuildShards,
        Stage::BuildMerge,
        Stage::RecoverManifest,
        Stage::RecoverChunks,
        Stage::RecoverReplay,
        Stage::Accept,
        Stage::Readiness,
        Stage::Evaluate,
        Stage::Write,
    ];

    /// Stable lower-case name (wire-independent; used by the text
    /// exposition).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::CacheProbe => "cache_probe",
            Stage::Eval => "eval",
            Stage::Clone => "clone",
            Stage::Maintain => "maintain",
            Stage::WalAppend => "wal_append",
            Stage::Install => "install",
            Stage::BuildLevel1 => "build_level1",
            Stage::BuildShards => "build_shards",
            Stage::BuildMerge => "build_merge",
            Stage::RecoverManifest => "recover_manifest",
            Stage::RecoverChunks => "recover_chunks",
            Stage::RecoverReplay => "recover_replay",
            Stage::Accept => "accept",
            Stage::Readiness => "readiness",
            Stage::Evaluate => "evaluate",
            Stage::Write => "write",
        }
    }

    /// Decodes a wire tag (`None` for unknown tags — hostile input).
    pub fn from_u8(tag: u8) -> Option<Stage> {
        Stage::ALL.get(tag as usize).copied()
    }
}

/// What kind of operation a [`Trace`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// One CPQ evaluation (wire or in-process).
    Query = 0,
    /// One delta write transaction.
    Delta = 1,
    /// One index (re)build.
    Build = 2,
    /// One durable-store recovery.
    Recovery = 3,
}

impl TraceKind {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Query => "query",
            TraceKind::Delta => "delta",
            TraceKind::Build => "build",
            TraceKind::Recovery => "recovery",
        }
    }

    /// Decodes a wire tag.
    pub fn from_u8(tag: u8) -> Option<TraceKind> {
        [TraceKind::Query, TraceKind::Delta, TraceKind::Build, TraceKind::Recovery]
            .get(tag as usize)
            .copied()
    }
}

/// One timed stage inside a trace. Offsets are relative to the trace
/// start; `depth` renders nesting (0 = direct child of the root).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Which stage.
    pub stage: Stage,
    /// Microseconds from trace start to stage start.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth for rendering (0 = top level).
    pub depth: u8,
}

/// One finished trace: the span tree of a single operation, plus the
/// identity needed to act on it (canonical key, epoch).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// What was traced.
    pub kind: TraceKind,
    /// Canonical query key (empty for non-query traces).
    pub key: String,
    /// Engine epoch the operation observed/installed.
    pub epoch: u64,
    /// Whole-operation duration in microseconds.
    pub total_us: u64,
    /// Stages in start order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The first span of a given stage, if present.
    pub fn span(&self, stage: Stage) -> Option<&Span> {
        self.spans.iter().find(|s| s.stage == stage)
    }

    /// Renders the trace as an indented multi-line tree for logs and
    /// the `--metrics-dump` demo.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{} {}us epoch={}", self.kind.name(), self.total_us, self.epoch);
        if !self.key.is_empty() {
            let _ = write!(out, " key={}", self.key);
        }
        for s in &self.spans {
            let _ = write!(
                out,
                "\n{}- {} +{}us {}us",
                "  ".repeat(s.depth as usize + 1),
                s.stage.name(),
                s.start_us,
                s.dur_us
            );
        }
        out
    }
}

/// Accumulates spans for one in-flight operation. Handed out by the
/// recorder only when this operation is being traced; dropped builders
/// record nothing.
#[derive(Debug)]
pub struct TraceBuilder {
    pub(crate) kind: TraceKind,
    pub(crate) t0: Instant,
    /// Whether this trace was selected for the trace ring (as opposed
    /// to existing only so a slow query can be captured).
    pub(crate) sampled: bool,
    pub(crate) key: String,
    pub(crate) epoch: u64,
    pub(crate) depth: u8,
    pub(crate) spans: Vec<Span>,
}

impl TraceBuilder {
    pub(crate) fn new(kind: TraceKind, sampled: bool) -> TraceBuilder {
        TraceBuilder {
            kind,
            t0: Instant::now(),
            sampled,
            key: String::new(),
            epoch: 0,
            depth: 0,
            spans: Vec::with_capacity(8),
        }
    }

    /// Attaches the canonical query key.
    pub fn set_key(&mut self, key: &str) {
        if self.key.is_empty() {
            self.key.push_str(key);
        }
    }

    /// Attaches the epoch the operation observed/installed.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Appends one finished span; `started` is when the stage began
    /// (from the recorder's stage timer), `dur` its duration.
    pub fn push_span(&mut self, stage: Stage, started: Instant, dur: std::time::Duration) {
        let start_us = started.saturating_duration_since(self.t0).as_micros().min(u64::MAX as u128);
        self.spans.push(Span {
            stage,
            start_us: start_us as u64,
            dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
            depth: self.depth,
        });
    }

    pub(crate) fn finish(self) -> (bool, Trace) {
        let total_us = self.t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
        (
            self.sampled,
            Trace {
                kind: self.kind,
                key: self.key,
                epoch: self.epoch,
                total_us,
                spans: self.spans,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tags_roundtrip() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as u8 as usize, i);
            assert_eq!(Stage::from_u8(i as u8), Some(*s));
        }
        assert_eq!(Stage::from_u8(STAGE_COUNT as u8), None);
        for t in [TraceKind::Query, TraceKind::Delta, TraceKind::Build, TraceKind::Recovery] {
            assert_eq!(TraceKind::from_u8(t as u8), Some(t));
        }
        assert_eq!(TraceKind::from_u8(4), None);
    }

    #[test]
    fn builder_collects_spans_in_order() {
        let mut tb = TraceBuilder::new(TraceKind::Query, true);
        tb.set_key("q/abc");
        tb.set_epoch(7);
        let t = Instant::now();
        tb.push_span(Stage::Parse, t, std::time::Duration::from_micros(3));
        tb.push_span(Stage::Eval, t, std::time::Duration::from_micros(9));
        let (sampled, trace) = tb.finish();
        assert!(sampled);
        assert_eq!(trace.key, "q/abc");
        assert_eq!(trace.epoch, 7);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.span(Stage::Eval).unwrap().dur_us, 9);
        assert!(trace.render().contains("parse"));
    }
}
