//! Fixed-layout log-bucketed latency histograms (HDR-style).
//!
//! A [`Histogram`] maps a `u64` value (microseconds, by convention) to
//! one of [`BUCKETS`] buckets: values below 8 get an exact bucket each,
//! and every power-of-two octave above that is split into 8 sub-buckets
//! (3 mantissa bits), bounding the relative quantization error at 12.5%.
//! The layout is *fixed* — every histogram in the process, and every
//! snapshot that crosses the wire, uses the same bucket boundaries — so
//! snapshots merge by plain element-wise addition and two independently
//! recorded histograms are directly comparable.
//!
//! Recording is a handful of relaxed atomic adds: no locks, no
//! allocation, safe to share across serving threads behind an `Arc`.
//! [`Histogram::snapshot`] copies the counters into a plain
//! [`HistogramSnapshot`], the mergeable, serializable form used by the
//! wire `METRICS` frame and the Prometheus renderer.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mantissa bits per octave: each power-of-two range is split into
/// `2^SUB_BITS` sub-buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;

/// Total number of buckets: 8 exact buckets for values `0..8`, then 8
/// sub-buckets for each of the 61 octaves `[2^3, 2^4) .. [2^63, 2^64)`.
pub const BUCKETS: usize = SUB + 61 * SUB;

/// The bucket index for a value. Total order: `bucket_index` is
/// monotone in `v`, so cumulative bucket counts give nearest-rank
/// quantiles up to one bucket of quantization.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= SUB_BITS
        let sub = ((v >> (msb - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
        SUB + (msb - SUB_BITS as usize) * SUB + sub
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let octave = (index - SUB) / SUB; // 0-based above the exact range
        let sub = ((index - SUB) % SUB) as u64;
        let msb = octave + SUB_BITS as usize;
        (1u64 << msb) + (sub << (msb - SUB_BITS as usize))
    }
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX` for the
/// last bucket, whose true bound would be `2^64`).
pub fn bucket_hi(index: usize) -> u64 {
    if index < SUB {
        index as u64 + 1
    } else {
        let octave = (index - SUB) / SUB;
        let msb = octave + SUB_BITS as usize;
        bucket_lo(index).saturating_add(1u64 << (msb - SUB_BITS as usize))
    }
}

/// A concurrent fixed-layout log-bucketed histogram.
///
/// All methods take `&self`; recording uses relaxed atomics only.
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        // `AtomicU64` has no Copy, so build the array through a Vec.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> =
            counts.into_boxed_slice().try_into().unwrap_or_else(|_| unreachable!());
        Histogram {
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (a few relaxed atomic adds; lock-free).
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the counters. Concurrent recording makes
    /// the copy a *consistent-enough* snapshot: per-bucket counts are
    /// each atomically read, so merge arithmetic never corrupts, but a
    /// racing `record` may be half-visible (bucket but not total).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        for (i, c) in self.counts.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            total: self.total.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain, mergeable copy of a [`Histogram`]'s counters — the form
/// that crosses the wire and renders to text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { counts: vec![0; BUCKETS], total: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Reassembles a snapshot from its wire parts: `(bucket, count)`
    /// pairs for the non-zero buckets plus the three scalar counters.
    /// Out-of-range bucket indices are rejected with `None` (hostile
    /// input never panics).
    pub fn from_parts(total: u64, sum: u64, max: u64, nonzero: &[(u16, u64)]) -> Option<Self> {
        let mut counts = vec![0u64; BUCKETS];
        for &(bucket, count) in nonzero {
            let slot = counts.get_mut(bucket as usize)?;
            *slot = slot.checked_add(count)?;
        }
        Some(HistogramSnapshot { counts, total, sum, max })
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// The non-zero `(bucket, count)` pairs, ascending by bucket — the
    /// sparse wire form.
    pub fn nonzero(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.counts.iter().enumerate().filter(|&(_, &c)| c != 0).map(|(i, &c)| (i as u16, c))
    }

    /// The count in one bucket (0 for out-of-range indices).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts.get(index).copied().unwrap_or(0)
    }

    /// Nearest-rank quantile over the bucketed counts, reported as the
    /// midpoint of the bucket holding that rank (`None` when empty).
    /// Matches `nearest_rank_quantile` on the raw samples to within one
    /// bucket: both pick the value at rank `round((n-1) * p)`; this one
    /// only knows it to bucket precision.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((self.total - 1) as f64 * p).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if c != 0 && seen > rank {
                let (lo, hi) = (bucket_lo(i), bucket_hi(i));
                return Some(lo + (hi - 1 - lo) / 2);
            }
        }
        // Counts raced with `total`; fall back to the last non-empty bucket.
        self.counts
            .iter()
            .rposition(|&c| c != 0)
            .map(|i| bucket_lo(i) + (bucket_hi(i) - 1 - bucket_lo(i)) / 2)
    }

    /// Element-wise merge: after `a.merge(&b)`, every bucket count,
    /// `count`, and `sum` are the sums of the two, and `max` the max.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_tight() {
        // Every bucket's bounds nest: lo(i) < hi(i) == lo(i+1).
        for i in 0..BUCKETS - 1 {
            assert!(bucket_lo(i) < bucket_hi(i), "bucket {i}");
            assert_eq!(bucket_hi(i), bucket_lo(i + 1), "bucket {i}");
        }
        // Values map into the bucket whose bounds contain them.
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let b = bucket_index(v);
            assert!(bucket_lo(b) <= v, "v={v} b={b}");
            assert!(v < bucket_hi(b) || b == BUCKETS - 1, "v={v} b={b}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Relative quantization error is bounded by one sub-bucket.
        for v in [64u64, 1000, 65_535, 1 << 40] {
            let b = bucket_index(v);
            let width = bucket_hi(b) - bucket_lo(b);
            assert!(width as f64 / v as f64 <= 0.125 + 1e-9, "v={v} width={width}");
        }
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        let p50 = s.quantile(0.5).unwrap();
        // True p50 is 500 (rank 500 of 0..=999); within one bucket width.
        let b = bucket_index(500);
        assert!(bucket_lo(b) <= p50 && p50 < bucket_hi(b), "p50={p50}");
        assert!(s.quantile(0.0).unwrap() <= s.quantile(1.0).unwrap());
    }

    #[test]
    fn merge_adds_counts() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 17);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        let whole = Histogram::new();
        for v in 0..100u64 {
            whole.record(v);
            whole.record(v * 17);
        }
        assert_eq!(m, whole.snapshot());
    }

    #[test]
    fn from_parts_roundtrip_and_hostile() {
        let h = Histogram::new();
        for v in [0u64, 3, 900, 4096, 1 << 33] {
            h.record(v);
        }
        let s = h.snapshot();
        let nonzero: Vec<(u16, u64)> = s.nonzero().collect();
        let back = HistogramSnapshot::from_parts(s.count(), s.sum(), s.max(), &nonzero).unwrap();
        assert_eq!(back, s);
        // Out-of-range bucket index is rejected, not a panic.
        assert!(HistogramSnapshot::from_parts(1, 1, 1, &[(BUCKETS as u16, 1)]).is_none());
    }
}
