//! The [`Recorder`]: sampling policy, per-opcode and per-stage
//! histograms, the bounded trace ring, and the slow-query log.
//!
//! One recorder lives in the engine and is shared (behind an `Arc`)
//! with every serving thread. The hot path is built so that:
//!
//! - a **disabled** recorder costs one relaxed load and a branch per
//!   instrumentation point — nothing else runs;
//! - an **enabled but unsampled** operation pays only the per-stage
//!   histogram adds (a few relaxed atomics each) — no allocation, no
//!   locks;
//! - a **sampled** operation additionally accumulates its spans in a
//!   thread-owned buffer (the [`TraceBuilder`] it carries), which
//!   drains into the bounded shared ring in one short mutex section at
//!   the end.
//!
//! Arming the slow-query threshold traces *every* query (the builder
//! is cheap: one small Vec) so a slow one is never missed; sampling
//! still decides which traces enter the general ring.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::{Stage, Trace, TraceBuilder, TraceKind, STAGE_COUNT};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The request opcodes the recorder attributes latency to. `Query`
/// covers every individual CPQ evaluation (wire QUERY and each member
/// of a BATCH); `Batch` records whole-batch wall time on top.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Liveness probe handling.
    Ping = 0,
    /// One CPQ evaluation (the histogram behind p50/p99).
    Query = 1,
    /// One whole BATCH frame.
    Batch = 2,
    /// One single-edge UPDATE (served as a one-op delta).
    Update = 3,
    /// One DELTA transaction.
    Delta = 4,
    /// One STATS report.
    Stats = 5,
    /// One METRICS exposition.
    Metrics = 6,
}

/// Number of [`Op`] variants (histogram array size).
pub const OP_COUNT: usize = 7;

impl Op {
    /// All opcodes, in tag order.
    pub const ALL: [Op; OP_COUNT] =
        [Op::Ping, Op::Query, Op::Batch, Op::Update, Op::Delta, Op::Stats, Op::Metrics];

    /// Stable lower-case name (used by the text exposition).
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Query => "query",
            Op::Batch => "batch",
            Op::Update => "update",
            Op::Delta => "delta",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
        }
    }

    /// Decodes a wire tag (`None` for unknown tags).
    pub fn from_u8(tag: u8) -> Option<Op> {
        Op::ALL.get(tag as usize).copied()
    }
}

/// Observability knobs, carried inside `EngineOptions`.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Master switch. When off, every instrumentation point reduces to
    /// a relaxed load + branch. Default on.
    pub enabled: bool,
    /// Trace every Nth operation (0 disables trace sampling entirely;
    /// histograms still record). Default 16.
    pub sample_every: u32,
    /// Capacity of the sampled-trace ring. Default 256.
    pub trace_ring: usize,
    /// Capacity of the slow-query ring. Default 64.
    pub slow_log: usize,
    /// Queries at least this slow are captured — span tree, canonical
    /// key, epoch — into the slow-query ring. `None` (default) disarms
    /// the log; arming it traces every query.
    pub slow_query: Option<Duration>,
    /// Maximum distinct canonical keys tracked for the observed
    /// workload (further keys are counted as dropped). Default 4096.
    pub workload_keys: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            enabled: true,
            sample_every: 16,
            trace_ring: 256,
            slow_log: 64,
            slow_query: None,
            workload_keys: 4096,
        }
    }
}

impl ObsOptions {
    /// A recorder that never records: every probe is a branch.
    pub fn disabled() -> ObsOptions {
        ObsOptions { enabled: false, ..ObsOptions::default() }
    }
}

/// A bounded FIFO of traces (oldest evicted first).
struct Ring {
    buf: VecDeque<Trace>,
    cap: usize,
    /// Total pushes ever, including evicted ones.
    pushed: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring { buf: VecDeque::with_capacity(cap.min(1024)), cap, pushed: 0 }
    }

    fn push(&mut self, t: Trace) {
        self.pushed += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(t);
    }
}

/// The process-wide observability sink (see module docs).
pub struct Recorder {
    enabled: AtomicBool,
    sample_every: u32,
    slow_us: AtomicU64, // 0 = disarmed
    ticket: AtomicU64,
    ops: [Histogram; OP_COUNT],
    stages: [Histogram; STAGE_COUNT],
    traces: Mutex<Ring>,
    slow: Mutex<Ring>,
    workload: Mutex<HashMap<String, u64>>,
    workload_cap: usize,
    workload_dropped: AtomicU64,
}

impl Recorder {
    /// Builds a recorder from options.
    pub fn new(options: &ObsOptions) -> Recorder {
        let slow_us = options
            .slow_query
            .map(|d| d.as_micros().clamp(1, u64::MAX as u128) as u64)
            .unwrap_or(0);
        Recorder {
            enabled: AtomicBool::new(options.enabled),
            sample_every: options.sample_every,
            slow_us: AtomicU64::new(slow_us),
            ticket: AtomicU64::new(0),
            ops: std::array::from_fn(|_| Histogram::new()),
            stages: std::array::from_fn(|_| Histogram::new()),
            traces: Mutex::new(Ring::new(options.trace_ring)),
            slow: Mutex::new(Ring::new(options.slow_log)),
            workload: Mutex::new(HashMap::new()),
            workload_cap: options.workload_keys,
            workload_dropped: AtomicU64::new(0),
        }
    }

    /// Whether the recorder is live (one relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips the master switch at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Arms (or disarms, with `None`) the slow-query log at runtime.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let us = threshold.map(|d| d.as_micros().clamp(1, u64::MAX as u128) as u64).unwrap_or(0);
        self.slow_us.store(us, Ordering::Relaxed);
    }

    /// The armed slow-query threshold, if any.
    pub fn slow_threshold(&self) -> Option<Duration> {
        match self.slow_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }

    /// Starts a stage timer — `None` (no clock read) when disabled.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finishes a stage started with [`Recorder::timer`]: records its
    /// duration into the stage histogram and, when this operation is
    /// traced, appends a span to the builder.
    #[inline]
    pub fn stage(&self, stage: Stage, started: Option<Instant>, trace: Option<&mut TraceBuilder>) {
        let Some(started) = started else { return };
        let dur = started.elapsed();
        self.stages[stage as usize].record_duration(dur);
        if let Some(tb) = trace {
            tb.push_span(stage, started, dur);
        }
    }

    /// Decides whether this operation gets a trace: `Some` when it won
    /// the sampling lottery, or — for queries — whenever the slow-query
    /// log is armed (so a slow query is never missed).
    #[inline]
    pub fn begin(&self, kind: TraceKind) -> Option<TraceBuilder> {
        if !self.is_enabled() {
            return None;
        }
        let sampled = self.sample_every > 0
            && self.ticket.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.sample_every as u64);
        let armed = kind == TraceKind::Query && self.slow_us.load(Ordering::Relaxed) > 0;
        if sampled || armed {
            Some(TraceBuilder::new(kind, sampled))
        } else {
            None
        }
    }

    /// Completes a trace: drains it into the sampled ring (if sampled),
    /// the slow-query ring (if over threshold), and the observed
    /// workload counts (queries with a canonical key).
    pub fn finish(&self, builder: TraceBuilder) {
        let (sampled, trace) = builder.finish();
        if trace.kind == TraceKind::Query && !trace.key.is_empty() {
            self.count_workload(&trace.key);
        }
        let slow_us = self.slow_us.load(Ordering::Relaxed);
        if trace.kind == TraceKind::Query && slow_us > 0 && trace.total_us >= slow_us {
            self.slow.lock().unwrap().push(trace.clone());
        }
        if sampled {
            self.traces.lock().unwrap().push(trace);
        }
    }

    /// Records one request's total latency under its opcode.
    #[inline]
    pub fn record_op(&self, op: Op, dur: Duration) {
        if self.is_enabled() {
            self.ops[op as usize].record_duration(dur);
        }
    }

    /// Records an index build's stage timings (always kept: builds are
    /// rare and expensive, so they bypass sampling) and pushes a build
    /// trace into the ring.
    pub fn record_build(
        &self,
        level1: Duration,
        shards: Duration,
        merge: Duration,
        total: Duration,
        epoch: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let t0 = Instant::now();
        let mut tb = TraceBuilder::new(TraceKind::Build, true);
        tb.set_epoch(epoch);
        for (stage, dur) in
            [(Stage::BuildLevel1, level1), (Stage::BuildShards, shards), (Stage::BuildMerge, merge)]
        {
            self.stages[stage as usize].record_duration(dur);
            tb.push_span(stage, t0, dur);
        }
        let (_, mut trace) = tb.finish();
        trace.total_us = total.as_micros().min(u64::MAX as u128) as u64;
        self.traces.lock().unwrap().push(trace);
    }

    /// Records a recovery's stage timings (always kept, like builds).
    pub fn record_recovery(
        &self,
        manifest: Duration,
        chunks: Duration,
        replay: Duration,
        epoch: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let t0 = Instant::now();
        let mut tb = TraceBuilder::new(TraceKind::Recovery, true);
        tb.set_epoch(epoch);
        for (stage, dur) in [
            (Stage::RecoverManifest, manifest),
            (Stage::RecoverChunks, chunks),
            (Stage::RecoverReplay, replay),
        ] {
            self.stages[stage as usize].record_duration(dur);
            tb.push_span(stage, t0, dur);
        }
        let (_, mut trace) = tb.finish();
        trace.total_us = (manifest + chunks + replay).as_micros().min(u64::MAX as u128) as u64;
        self.traces.lock().unwrap().push(trace);
    }

    /// Snapshot of one opcode's latency histogram.
    pub fn op_snapshot(&self, op: Op) -> HistogramSnapshot {
        self.ops[op as usize].snapshot()
    }

    /// Snapshot of one stage's latency histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage as usize].snapshot()
    }

    /// The sampled-trace ring, oldest first.
    pub fn traces(&self) -> Vec<Trace> {
        self.traces.lock().unwrap().buf.iter().cloned().collect()
    }

    /// The slow-query ring, oldest first.
    pub fn slow_queries(&self) -> Vec<Trace> {
        self.slow.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Total slow queries ever captured (including evicted entries).
    pub fn slow_query_count(&self) -> u64 {
        self.slow.lock().unwrap().pushed
    }

    /// The observed workload: canonical keys with their traced-query
    /// counts, heaviest first. With only sampling armed these are
    /// 1-in-`sample_every` frequencies; with the slow-query log armed
    /// every query is traced and the counts are exact.
    pub fn workload_counts(&self) -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> =
            self.workload.lock().unwrap().iter().map(|(k, &c)| (k.clone(), c)).collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }

    /// Keys dropped because the workload table hit its capacity.
    pub fn workload_dropped(&self) -> u64 {
        self.workload_dropped.load(Ordering::Relaxed)
    }

    fn count_workload(&self, key: &str) {
        let mut map = self.workload.lock().unwrap();
        if let Some(c) = map.get_mut(key) {
            *c += 1;
        } else if map.len() < self.workload_cap {
            map.insert(key.to_string(), 1);
        } else {
            self.workload_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("sample_every", &self.sample_every)
            .field("slow_threshold", &self.slow_threshold())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new(&ObsOptions::disabled());
        assert!(r.begin(TraceKind::Query).is_none());
        assert!(r.timer().is_none());
        r.record_op(Op::Query, Duration::from_micros(5));
        assert_eq!(r.op_snapshot(Op::Query).count(), 0);
        r.record_build(
            Duration::from_millis(1),
            Duration::from_millis(1),
            Duration::from_millis(1),
            Duration::from_millis(3),
            1,
        );
        assert!(r.traces().is_empty());
    }

    #[test]
    fn sampling_selects_one_in_n() {
        let r = Recorder::new(&ObsOptions { sample_every: 4, ..ObsOptions::default() });
        let mut sampled = 0;
        for _ in 0..32 {
            if let Some(tb) = r.begin(TraceKind::Query) {
                sampled += 1;
                r.finish(tb);
            }
        }
        assert_eq!(sampled, 8);
        assert_eq!(r.traces().len(), 8);
    }

    #[test]
    fn slow_log_captures_over_threshold_and_workload_counts() {
        let r = Recorder::new(&ObsOptions {
            sample_every: 0, // no sampling: traces exist only for the slow log
            slow_query: Some(Duration::from_micros(1)),
            ..ObsOptions::default()
        });
        let mut tb = r.begin(TraceKind::Query).expect("armed slow log traces every query");
        tb.set_key("k1");
        tb.set_epoch(3);
        std::thread::sleep(Duration::from_millis(2));
        r.finish(tb);
        let slow = r.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].key, "k1");
        assert_eq!(slow[0].epoch, 3);
        assert_eq!(r.workload_counts(), vec![("k1".to_string(), 1)]);
        assert_eq!(r.slow_query_count(), 1);
    }

    #[test]
    fn rings_are_bounded() {
        let r =
            Recorder::new(&ObsOptions { sample_every: 1, trace_ring: 4, ..ObsOptions::default() });
        for i in 0..10 {
            let mut tb = r.begin(TraceKind::Query).unwrap();
            tb.set_epoch(i);
            r.finish(tb);
        }
        let traces = r.traces();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces.first().unwrap().epoch, 6); // oldest evicted
        assert_eq!(traces.last().unwrap().epoch, 9);
    }

    #[test]
    fn workload_table_is_bounded() {
        let r = Recorder::new(&ObsOptions {
            sample_every: 1,
            workload_keys: 2,
            ..ObsOptions::default()
        });
        for key in ["a", "b", "c", "a"] {
            let mut tb = r.begin(TraceKind::Query).unwrap();
            tb.set_key(key);
            r.finish(tb);
        }
        let counts = r.workload_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0], ("a".to_string(), 2));
        assert_eq!(r.workload_dropped(), 1);
    }
}
