//! Property tests for the log-bucketed histogram: merging is lossless
//! with respect to recording, quantiles track the engine's exact
//! nearest-rank definition to within one bucket, and the sparse wire
//! form is a faithful encoding.

use cpqx_obs::{bucket_index, Histogram, HistogramSnapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording a workload split across two histograms and merging the
    /// snapshots equals recording the whole workload into one — bucket
    /// counts, total, sum and max all included.
    #[test]
    fn record_then_merge_preserves_counts(
        a in prop::collection::vec(0u64..1_000_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            whole.record(v);
        }
        for &v in &b {
            hb.record(v);
            whole.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// The histogram's quantile and the exact nearest-rank quantile over
    /// the raw samples (the reservoir's definition,
    /// `rank = round((n-1) * p)`) land in the same log bucket, or
    /// adjacent ones — i.e. they agree to within the sketch's ≤12.5%
    /// relative error.
    #[test]
    fn quantiles_track_nearest_rank(
        mut vals in prop::collection::vec(0u64..10_000_000, 1..300),
        p_permille in 0u64..=1000,
    ) {
        let p = p_permille as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let rank = (((vals.len() - 1) as f64) * p).round() as usize;
        let exact = vals[rank];
        let approx = h.snapshot().quantile(p).expect("non-empty histogram");
        let (be, ba) = (bucket_index(exact), bucket_index(approx));
        prop_assert!(
            be.abs_diff(ba) <= 1,
            "exact {exact} (bucket {be}) vs histogram {approx} (bucket {ba}) at p={p}"
        );
    }

    /// The sparse (index, count) wire form reconstructs the snapshot
    /// exactly.
    #[test]
    fn sparse_form_roundtrips(vals in prop::collection::vec(0u64..u64::MAX / 2, 0..200)) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let snap = h.snapshot();
        let nonzero: Vec<(u16, u64)> = snap.nonzero().collect();
        let back = HistogramSnapshot::from_parts(snap.count(), snap.sum(), snap.max(), &nonzero)
            .expect("own parts are valid");
        prop_assert_eq!(back, snap);
    }
}
