//! Fig. 14: impact of the path-length parameter k (1–4) on iaCPQx query
//! time, per template, across dataset stand-ins.
//!
//! Expected shape: a large drop from k = 1 to k = 2 (two-label lookups
//! become single probes); beyond the query diameter, larger k can slightly
//! *hurt* (finer classes → more LOOKUP/CONJUNCTION work), and C4/Si keep
//! improving until k reaches their diameter 4 — both effects the paper
//! reports.

use cpqx_bench::harness::{avg_query_time, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;

fn main() {
    let cfg = BenchConfig::from_env();
    let datasets = [
        Dataset::Robots,
        Dataset::Advogato,
        Dataset::BioGrid,
        Dataset::StringFC,
        Dataset::Youtube,
        Dataset::Yago,
        Dataset::Wikidata,
        Dataset::Freebase,
    ];
    let mut table =
        Table::new("fig14_k_query_time", &["dataset", "template", "k=1", "k=2", "k=3", "k=4"]);

    for ds in datasets {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let engines: Vec<Engine> = (1..=4)
            .map(|k| {
                let interests =
                    interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), k);
                Engine::build(Method::IaCpqx, &g, k, &interests).0
            })
            .collect();
        for (ti, template) in Template::ALL.iter().enumerate() {
            let mut row = vec![ds.name().to_string(), template.name().to_string()];
            for e in &engines {
                row.push(avg_query_time(e, &g, &workload[ti].1, &cfg).cell());
            }
            table.row(row);
        }
    }
    table.finish();
}
