//! Fig. 12: impact of the label-alphabet size on index size, on the
//! ego-Facebook stand-in with |L| ∈ {16, 32, …, 1024} (extended counts).
//!
//! Expected shape: Path and CPQx grow with the label count (more
//! sequences / more classes); iaPath and iaCPQx *shrink* (fewer pairs match
//! any fixed set of interests as labels spread thinner); CPQ-aware indexes
//! stay below their language-unaware counterparts throughout.

use cpqx_bench::harness::{fmt_bytes, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_query::ast::Template;

fn main() {
    let cfg = BenchConfig::from_env();
    let spec = Dataset::EgoFacebook.spec();
    let scale = (cfg.edge_budget as f64 / spec.base_edges() as f64).min(1.0);
    let vertices = ((spec.vertices as f64 * scale) as u32).max(64);
    let base_edges = ((spec.base_edges() as f64 * scale) as usize).max(128);

    let mut table =
        Table::new("fig12_label_size", &["|L| (ext)", "Path", "CPQx", "iaPath", "iaCPQx"]);

    for ext_labels in [16u16, 32, 64, 128, 256, 512, 1024] {
        let g = random_graph(&RandomGraphConfig::social(
            vertices,
            base_edges,
            ext_labels / 2,
            cfg.seed,
        ));
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let mut row = vec![ext_labels.to_string()];
        for method in [Method::Path, Method::Cpqx, Method::IaPath, Method::IaCpqx] {
            let (engine, _) = Engine::build(method, &g, cfg.k, &interests);
            row.push(fmt_bytes(engine.size_bytes().unwrap()));
        }
        table.row(row);
    }
    table.finish();
}
