//! Build-pipeline scaling: sequential vs. fully parallel construction,
//! phase by phase — the engine-level form of the ROADMAP's "parallelize
//! the level-1 prefix" and "shard the interest-aware build" items.
//!
//! Two tables:
//!
//! * **level1_scaling** (at the full `CPQX_EDGE_BUDGET`):
//!   `RefinementBase::new` (sequential) vs.
//!   `RefinementBase::with_threads` at the probe thread count — the pass
//!   that used to be the serial prefix of every sharded build. This is
//!   the row CI gates on.
//! * **build_pipelines** (at `CPQX_BUILD_FULL_BUDGET`, default the edge
//!   budget capped at 20 000 — the end-to-end sequential builds get slow
//!   far earlier than level 1 does): `CpqxIndex::build` vs.
//!   `build_sharded`, and `CpqxIndex::build_interest_aware` vs.
//!   `build_interest_sharded` over label-weighted source ranges, using a
//!   small interest set drawn from the graph's alphabet.
//!
//! Knobs: the usual `CPQX_*` variables plus `CPQX_BUILD_THREADS` (probe
//! thread count, default `max(4, available_parallelism)`) and
//! `CPQX_BUILD_ASSERT_PARALLEL` (minimum accepted level-1 speedup at the
//! probe thread count on the uniform row; unset = report only). CI sets
//! the assertion at the 100k-edge budget so a regression back to a
//! serial level-1 prefix fails the job visibly. The assertion is skipped
//! (with a note) when the host has a single hardware thread — there is
//! no parallelism to measure.

use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_core::{CpqxIndex, RefinementBase};
use cpqx_engine::{build_interest_sharded, build_sharded, BuildOptions};
use cpqx_graph::{Graph, LabelSeq};
use std::time::Instant;

fn secs(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Level-1 sequential vs parallel wall-clock (best of `reps` each).
fn level1_pair(g: &Graph, threads: usize, reps: usize) -> (f64, f64) {
    let mut seq = f64::INFINITY;
    let mut par = f64::INFINITY;
    for _ in 0..reps.max(1) {
        seq = seq.min(secs(|| {
            std::hint::black_box(RefinementBase::new(g));
        }));
        par = par.min(secs(|| {
            std::hint::black_box(RefinementBase::with_threads(g, threads));
        }));
    }
    (seq, par)
}

fn uniform(edges: usize, seed: u64) -> Graph {
    cpqx_graph::generate::random_graph(&cpqx_graph::generate::RandomGraphConfig::uniform(
        edges.max(64) as u32,
        edges,
        4,
        seed,
    ))
}

fn social(edges: usize, seed: u64) -> Graph {
    cpqx_graph::generate::random_graph(&cpqx_graph::generate::RandomGraphConfig::social(
        (edges / 4).max(64) as u32,
        edges,
        4,
        seed,
    ))
}

fn main() {
    let cfg = BenchConfig::from_env();
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads: usize = env_parse("CPQX_BUILD_THREADS", available.max(4));
    let assert_parallel: Option<f64> =
        std::env::var("CPQX_BUILD_ASSERT_PARALLEL").ok().and_then(|v| v.parse().ok());
    let full_budget: usize = env_parse("CPQX_BUILD_FULL_BUDGET", cfg.edge_budget.min(20_000));
    let opts = BuildOptions { shards: Some(threads), threads: Some(threads) };

    // -- table 1: the level-1 phase at full budget (the CI gate) ---------
    let l1_col = format!("level1 @{threads}T [ms]");
    let mut table = Table::new(
        "level1_scaling",
        &["dataset", "|V|", "|E|", "level1 seq [ms]", &l1_col, "l1 speedup"],
    );
    let mut uniform_l1_speedup = 0.0f64;
    for (name, g, asserted) in [
        ("uniform", uniform(cfg.edge_budget, cfg.seed), true),
        ("social", social(cfg.edge_budget, cfg.seed), false),
    ] {
        let (l1_seq, l1_par) = level1_pair(&g, threads, cfg.reps);
        let l1_speedup = l1_seq / l1_par.max(1e-9);
        if asserted {
            uniform_l1_speedup = l1_speedup;
        }
        table.row(vec![
            name.to_string(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            format!("{:.1}", l1_seq * 1e3),
            format!("{:.1}", l1_par * 1e3),
            format!("{l1_speedup:.2}x"),
        ]);
    }
    table.finish();

    // -- table 2: end-to-end pipelines at the (capped) full budget -------
    let full_col = format!("sharded @{threads}T [s]");
    let ia_col = format!("ia sharded @{threads}T [s]");
    let mut table = Table::new(
        "build_pipelines",
        &[
            "dataset",
            "|V|",
            "|E|",
            "seq build [s]",
            &full_col,
            "build speedup",
            "ia seq [s]",
            &ia_col,
            "ia speedup",
        ],
    );
    for (name, g) in
        [("uniform", uniform(full_budget, cfg.seed)), ("social", social(full_budget, cfg.seed))]
    {
        // A small interest set over the alphabet: each label chained with
        // its successor (enough to make the interest phase non-trivial).
        let labels: Vec<_> = g.ext_labels().collect();
        let interests: Vec<LabelSeq> =
            labels.windows(2).map(|w| LabelSeq::from_slice(&[w[0], w[1]])).collect();

        let full_seq = secs(|| {
            std::hint::black_box(CpqxIndex::build(&g, cfg.k));
        });
        let full_par = secs(|| {
            std::hint::black_box(build_sharded(&g, cfg.k, opts));
        });
        let ia_seq = secs(|| {
            std::hint::black_box(CpqxIndex::build_interest_aware(&g, cfg.k, interests.clone()));
        });
        let ia_par = secs(|| {
            std::hint::black_box(build_interest_sharded(&g, cfg.k, interests.clone(), opts));
        });

        table.row(vec![
            name.to_string(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            format!("{full_seq:.3}"),
            format!("{full_par:.3}"),
            format!("{:.2}x", full_seq / full_par.max(1e-9)),
            format!("{ia_seq:.3}"),
            format!("{ia_par:.3}"),
            format!("{:.2}x", ia_seq / ia_par.max(1e-9)),
        ]);
    }
    table.finish();

    println!(
        "\nInvariant check: all three parallel pipelines are verified query-equivalent to their \
         sequential counterparts by crates/engine/tests/build_differential.rs; this bench only \
         measures wall-clock. 'l1 speedup' is sequential/parallel level-1 time at {threads} \
         threads — the pass that was the serial prefix of every sharded build before the \
         parallel rewrite."
    );

    if let Some(min) = assert_parallel {
        if available < 2 {
            println!(
                "CPQX_BUILD_ASSERT_PARALLEL={min} skipped: single hardware thread, nothing to \
                 measure (speedup observed: {uniform_l1_speedup:.2}x)"
            );
            return;
        }
        // Wall-clock gates at smoke budgets are noise-prone: take the best
        // of up to three fresh measurements before failing — a real
        // regression to a serial level-1 fails all of them.
        let mut best = uniform_l1_speedup;
        for _ in 0..2 {
            if best >= min {
                break;
            }
            let g = uniform(cfg.edge_budget, cfg.seed);
            let (l1_seq, l1_par) = level1_pair(&g, threads, cfg.reps);
            best = best.max(l1_seq / l1_par.max(1e-9));
            println!("level1-speedup re-measurement: {best:.2}x");
        }
        assert!(
            best >= min,
            "parallel level-1 regressed: uniform-row speedup {best:.2}x < required {min}x at \
             {threads} threads (best of 3) — the level-1 pass is serial again"
        );
        println!("level1-speedup assertion passed: {best:.2}x >= {min}x");
    }
}
