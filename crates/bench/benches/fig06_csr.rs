//! CSR read-face companion to Fig. 6: the same template workload, timed
//! through the CPQx executor with the per-chunk CSR faces on versus off
//! (everything else identical — same index, same plans, same answers).
//!
//! Expected shape: the CSR path wins wherever a join has a single-label
//! operand — chain templates (C2, C4) and the chain legs of the tree and
//! star shapes — because it never materializes or re-sorts the label
//! relation. Pure-conjunction cells are unchanged (the class-level path
//! doesn't touch adjacency).
//!
//! `CPQX_ASSERT_CSR=1` turns the summary into a CI gate: across the
//! cells where the fast path actually engages (the executor's
//! `csr_joins` counter is nonzero — elsewhere the two variants run the
//! identical code and differ only by noise), aggregate CSR-on time must
//! beat CSR-off. On a single-core runner the gate is skipped —
//! interleaved wall-clock timings there measure scheduling noise, not
//! the read path.

use cpqx_bench::harness::{interests_from_queries, workload_for, Timing};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_core::exec::ExecOptions;
use cpqx_core::CpqxIndex;
use cpqx_graph::datasets::Dataset;
use cpqx_graph::Graph;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

/// One timed pass over the workload cell (averaged seconds per query),
/// stopping at the cell budget.
fn pass(
    idx: &CpqxIndex,
    g: &Graph,
    queries: &[Cpq],
    options: ExecOptions,
    budget: Duration,
) -> Timing {
    let started = Instant::now();
    let mut total = Duration::ZERO;
    let mut n = 0u32;
    for q in queries {
        let t0 = Instant::now();
        std::hint::black_box(idx.evaluate_with_options(g, q, options));
        total += t0.elapsed();
        n += 1;
        if started.elapsed() > budget {
            return Timing::Timeout;
        }
    }
    Timing::Avg(total.as_secs_f64() / n as f64)
}

/// Best-of-reps with the two variants interleaved (off, on, off, on, …)
/// so neither systematically benefits from a warmer cache.
fn best_of(idx: &CpqxIndex, g: &Graph, queries: &[Cpq], cfg: &BenchConfig) -> (Timing, Timing) {
    if queries.is_empty() {
        return (Timing::Skipped, Timing::Skipped);
    }
    let budget = Duration::from_millis(cfg.cell_budget_ms);
    let off = ExecOptions { csr_faces: false, ..ExecOptions::default() };
    let on = ExecOptions::default();
    let (mut best_off, mut best_on) = (Timing::Timeout, Timing::Timeout);
    for _ in 0..cfg.reps.max(1) {
        for (options, best) in [(off, &mut best_off), (on, &mut best_on)] {
            let t = pass(idx, g, queries, options, budget);
            if let (Some(s), prev) = (t.seconds(), best.seconds()) {
                if prev.is_none_or(|p| s < p) {
                    *best = t;
                }
            }
        }
    }
    (best_off, best_on)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = Table::new(
        "fig06_csr",
        &["dataset", "template", "csr-joins", "rows[s]", "csr[s]", "speedup"],
    );
    let (mut total_off, mut total_on) = (0.0f64, 0.0f64);
    let (mut gate_off, mut gate_on) = (0.0f64, 0.0f64);

    // The smaller feasible stand-ins of Fig. 6 — the full-index methods
    // build on all of these (the out-of-memory six are interest-aware
    // territory and measure the same executor anyway).
    for ds in [Dataset::Robots, Dataset::EgoFacebook, Dataset::Advogato, Dataset::StringHS] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let (engine, _) = Engine::build(Method::Cpqx, &g, cfg.k, &interests);
        let idx = engine.as_cpqx().unwrap();
        g.ensure_csr(); // warm faces: steady-state read cost, not build cost

        // Sanity: the two read paths must agree before being compared.
        for (_, queries) in &workload {
            if let Some(q) = queries.first() {
                let off = ExecOptions { csr_faces: false, ..ExecOptions::default() };
                assert_eq!(
                    idx.evaluate_with_options(&g, q, ExecOptions::default()),
                    idx.evaluate_with_options(&g, q, off),
                    "CSR answers diverge on {}",
                    ds.name()
                );
            }
        }

        for (template, queries) in &workload {
            // Does this cell exercise a CSR fast path at all? Where it
            // doesn't, both variants execute the identical operators and
            // the measured ratio is pure noise — excluded from the gate.
            let engaged: usize = queries.iter().map(|q| idx.explain(&g, q).1.csr_joins).sum();
            let (off, on) = best_of(idx, &g, queries, &cfg);
            let speedup = match (off.seconds(), on.seconds()) {
                (Some(o), Some(n)) if n > 0.0 => {
                    total_off += o;
                    total_on += n;
                    if engaged > 0 {
                        gate_off += o;
                        gate_on += n;
                    }
                    format!("{:.2}x", o / n)
                }
                _ => "-".to_string(),
            };
            table.row(vec![
                ds.name().to_string(),
                template.name().to_string(),
                engaged.to_string(),
                off.cell(),
                on.cell(),
                speedup,
            ]);
        }
    }
    table.finish();

    if total_on > 0.0 {
        println!(
            "\nAggregate: rows {total_off:.3e}s, csr {total_on:.3e}s ({:.2}x); \
             engaged cells only: rows {gate_off:.3e}s, csr {gate_on:.3e}s ({:.2}x).",
            total_off / total_on,
            if gate_on > 0.0 { gate_off / gate_on } else { f64::NAN }
        );
    }
    if std::env::var("CPQX_ASSERT_CSR").is_ok() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            println!(
                "\nCPQX_ASSERT_CSR set but only {cores} core available; skipping the gate \
                 (single-core wall-clock is scheduling noise, not read-path cost)."
            );
            return;
        }
        assert!(gate_on > 0.0 && gate_off > 0.0, "CSR gate: no cell engaged a CSR fast path");
        assert!(
            gate_on < gate_off,
            "CSR read-face gate: csr-on {gate_on:.3e}s is not faster than rows {gate_off:.3e}s \
             on the engaged cells"
        );
        println!("\nCSR gate passed: {:.2}x speedup on engaged cells.", gate_off / gate_on);
    }
}
