//! Engine subsystem throughput: sequential vs sharded index build, and
//! cached vs uncached query serving through the engine's batch API.
//!
//! Expected shape: with ≥2 shards on a multi-core host the sharded build
//! beats the sequential build on every non-trivial dataset (the level-1
//! pass is shared; refinement parallelizes); cached serving beats uncached
//! serving by orders of magnitude once the workload repeats.
//!
//! Knobs: the usual `CPQX_*` variables (see `cpqx-bench` docs) plus
//! `CPQX_ENGINE_SHARDS` (default: available parallelism) and
//! `CPQX_ENGINE_BATCH_REPEATS` (default 4 — how many times the workload
//! repeats inside the cached serving measurement).

use cpqx_bench::harness::{time_once, workload_for};
use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_core::CpqxIndex;
use cpqx_engine::{build_sharded, BatchOptions, BuildOptions, Engine, EngineOptions};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;

fn main() {
    let cfg = BenchConfig::from_env();
    let shards: usize = env_parse(
        "CPQX_ENGINE_SHARDS",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    );
    let repeats: usize = env_parse("CPQX_ENGINE_BATCH_REPEATS", 4);
    let sharded_col = format!("sharded x{shards}[s]");

    let mut build_table =
        Table::new("engine_build", &["dataset", "|V|", "|E|", "seq[s]", &sharded_col, "speedup"]);
    let mut serve_table = Table::new(
        "engine_serving",
        &["dataset", "queries", "uncached qps", "cached qps", "hit rate", "p50", "p99"],
    );

    for ds in [Dataset::Advogato, Dataset::StringHS, Dataset::BioGrid] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload: Vec<Cpq> =
            workload_for(&g, &Template::ALL, &cfg).into_iter().flat_map(|(_, qs)| qs).collect();

        // -- build comparison -------------------------------------------
        let (seq_idx, seq_s) = time_once(|| CpqxIndex::build(&g, cfg.k));
        let (par_idx, par_s) = time_once(|| {
            build_sharded(&g, cfg.k, BuildOptions { shards: Some(shards), threads: None })
        });
        assert_eq!(seq_idx.pair_count(), par_idx.pair_count(), "builds must agree");
        build_table.row(vec![
            ds.name().to_string(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            format!("{seq_s:.3}"),
            format!("{par_s:.3}"),
            format!("{:.2}x", seq_s / par_s.max(1e-9)),
        ]);

        // -- serving comparison -----------------------------------------
        let (engine, _) = Engine::with_options(
            g,
            EngineOptions {
                k: cfg.k,
                build: BuildOptions { shards: Some(shards), threads: None },
                ..EngineOptions::default()
            },
        );
        let uncached = engine.evaluate_batch(
            &workload,
            BatchOptions { bypass_result_cache: true, ..BatchOptions::default() },
        );
        let mut cached_qps = 0.0;
        for _ in 0..repeats.max(1) {
            let out = engine.evaluate_batch(&workload, BatchOptions::default());
            cached_qps = out.throughput_qps(); // last pass: warm cache
        }
        let stats = engine.stats();
        serve_table.row(vec![
            ds.name().to_string(),
            workload.len().to_string(),
            format!("{:.0}", uncached.throughput_qps()),
            format!("{cached_qps:.0}"),
            format!("{:.1}%", stats.result_hit_rate * 100.0),
            format!("{:?}", stats.p50),
            format!("{:?}", stats.p99),
        ]);
    }

    build_table.finish();
    serve_table.finish();
    println!(
        "\nInvariant check: sharded builds must equal sequential builds pair-for-pair \
         (asserted above); cached qps should exceed uncached qps once the workload repeats."
    );
}
