//! Fig. 9: the YAGO2 benchmark queries Y1–Y4 on the YAGO2 stand-in
//! (80M vertices / 164M edges / 38 extended labels in the paper; scaled
//! here), for iaCPQx, iaPath, TurboHom++, Tentris and BFS.
//!
//! Expected shape: iaCPQx has the smallest average time across the four
//! queries; the matchers degrade on the snowflake shapes (Y3/Y4).

use cpqx_bench::harness::{avg_query_time, interests_from_queries};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::generate::RandomGraphConfig;
use cpqx_query::benchqueries::yago_queries;

fn main() {
    let cfg = BenchConfig::from_env();
    // YAGO2: |V|/|E| ratio ~1:2, 19 base labels.
    let vertices = (cfg.edge_budget / 2).max(512) as u32;
    let g = cpqx_graph::generate::random_graph(&RandomGraphConfig::social(
        vertices,
        cfg.edge_budget,
        19,
        cfg.seed,
    ));
    let queries = yago_queries(&g, cfg.seed);
    let interests = interests_from_queries(queries.iter().map(|nq| &nq.query), cfg.k);

    let methods = [Method::IaCpqx, Method::IaPath, Method::TurboHom, Method::Tentris, Method::Bfs];
    let mut headers = vec!["query"];
    headers.extend(methods.iter().map(|m| m.name()));
    let mut table = Table::new("fig09_yago_bench", &headers);

    let engines: Vec<Engine> =
        methods.iter().map(|&m| Engine::build(m, &g, cfg.k, &interests).0).collect();
    for nq in &queries {
        let mut row = vec![nq.name.clone()];
        for e in &engines {
            let qs = [nq.query.clone()];
            row.push(avg_query_time(e, &g, &qs, &cfg).cell());
        }
        table.row(row);
    }
    table.finish();
}
