//! Fig. 9: the YAGO2 benchmark queries Y1–Y4 on the YAGO2 stand-in
//! (80M vertices / 164M edges / 38 extended labels in the paper; scaled
//! here), for iaCPQx, iaPath, TurboHom++, Tentris and BFS.
//!
//! Expected shape: iaCPQx has the smallest average time across the four
//! queries; the matchers degrade on the snowflake shapes (Y3/Y4).

use cpqx_bench::harness::{avg_query_time, interests_from_queries, Timing};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_core::exec::ExecOptions;
use cpqx_graph::generate::RandomGraphConfig;
use cpqx_query::benchqueries::yago_queries;
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

/// Times a single query through the iaCPQx executor under explicit
/// options — the Y1–Y4 rows of the `fig09_csr` companion table.
fn timed_with_options(
    idx: &cpqx_core::CpqxIndex,
    g: &cpqx_graph::Graph,
    q: &Cpq,
    cfg: &BenchConfig,
    options: ExecOptions,
) -> Timing {
    let budget = Duration::from_millis(cfg.cell_budget_ms);
    let started = Instant::now();
    let mut total = Duration::ZERO;
    let mut n = 0u32;
    for _ in 0..cfg.reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(idx.evaluate_with_options(g, q, options));
        total += t0.elapsed();
        n += 1;
        if started.elapsed() > budget {
            return Timing::Timeout;
        }
    }
    Timing::Avg(total.as_secs_f64() / n as f64)
}

fn main() {
    let cfg = BenchConfig::from_env();
    // YAGO2: |V|/|E| ratio ~1:2, 19 base labels.
    let vertices = (cfg.edge_budget / 2).max(512) as u32;
    let g = cpqx_graph::generate::random_graph(&RandomGraphConfig::social(
        vertices,
        cfg.edge_budget,
        19,
        cfg.seed,
    ));
    let queries = yago_queries(&g, cfg.seed);
    let interests = interests_from_queries(queries.iter().map(|nq| &nq.query), cfg.k);

    let methods = [Method::IaCpqx, Method::IaPath, Method::TurboHom, Method::Tentris, Method::Bfs];
    let mut headers = vec!["query"];
    headers.extend(methods.iter().map(|m| m.name()));
    let mut table = Table::new("fig09_yago_bench", &headers);

    let engines: Vec<Engine> =
        methods.iter().map(|&m| Engine::build(m, &g, cfg.k, &interests).0).collect();
    for nq in &queries {
        let mut row = vec![nq.name.clone()];
        for e in &engines {
            let qs = [nq.query.clone()];
            row.push(avg_query_time(e, &g, &qs, &cfg).cell());
        }
        table.row(row);
    }
    table.finish();

    // Companion: the same Y1–Y4 queries through the iaCPQx executor with
    // the CSR read faces off versus on (identical index and plans).
    let mut csr_table = Table::new("fig09_csr", &["query", "rows[s]", "csr[s]", "speedup"]);
    let idx = engines[0].as_cpqx().expect("iaCPQx is a CPQ-aware index");
    g.ensure_csr();
    let off_options = ExecOptions { csr_faces: false, ..ExecOptions::default() };
    for nq in &queries {
        let off = timed_with_options(idx, &g, &nq.query, &cfg, off_options);
        let on = timed_with_options(idx, &g, &nq.query, &cfg, ExecOptions::default());
        let speedup = match (off.seconds(), on.seconds()) {
            (Some(o), Some(n)) if n > 0.0 => format!("{:.2}x", o / n),
            _ => "-".to_string(),
        };
        csr_table.row(vec![nq.name.clone(), off.cell(), on.cell(), speedup]);
    }
    csr_table.finish();
}
