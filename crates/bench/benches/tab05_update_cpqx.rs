//! Table V: CPQx update time — average latency of single edge deletions
//! and insertions (the paper deletes and inserts one hundred edges).
//!
//! Expected shape: milliseconds or less per update — orders of magnitude
//! below reconstruction (Table IV's IT column); deletions cost a bit more
//! than insertions (alternative-path checks over larger neighborhoods).

use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::sample_edges;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env();
    let datasets = [
        Dataset::Robots,
        Dataset::Advogato,
        Dataset::BioGrid,
        Dataset::StringHS,
        Dataset::StringFC,
        Dataset::Youtube,
    ];
    let mut table =
        Table::new("tab05_update_cpqx", &["dataset", "edge deletion [s]", "edge insertion [s]"]);

    for ds in datasets {
        let mut g = ds.generate(cfg.edge_budget, cfg.seed);
        let (engine, _) = Engine::build(Method::Cpqx, &g, cfg.k, &[]);
        let mut idx = match engine {
            Engine::Index(i) => i,
            _ => unreachable!(),
        };
        let victims = sample_edges(&g, 100.min(g.edge_count()), cfg.seed ^ 0xBEEF);

        let t0 = Instant::now();
        for &(v, u, l) in &victims {
            idx.delete_edge(&mut g, v, u, l);
        }
        let del = t0.elapsed().as_secs_f64() / victims.len() as f64;

        let t0 = Instant::now();
        for &(v, u, l) in &victims {
            idx.insert_edge(&mut g, v, u, l);
        }
        let ins = t0.elapsed().as_secs_f64() / victims.len() as f64;

        table.row(vec![ds.name().into(), format!("{del:.3e}"), format!("{ins:.3e}")]);
    }
    table.finish();
}
