//! Fig. 11: iaCPQx query time per template as the gMark citation graph
//! grows (the paper sweeps 1M→20M vertices; scaled here to a ×16 range).
//!
//! Expected shape: per-template growth is modest and roughly monotone —
//! iaCPQx "scalably evaluates CPQs as graphs grow larger".

use cpqx_bench::harness::{avg_query_time, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::generate::gmark;
use cpqx_query::ast::Template;

fn main() {
    let cfg = BenchConfig::from_env();
    let base = (cfg.edge_budget / 16).max(200) as u32;
    let sizes: Vec<u32> = [1u32, 2, 4, 8, 16].iter().map(|m| base * m).collect();

    let mut headers: Vec<String> = vec!["template".into()];
    headers.extend(sizes.iter().map(|s| format!("|V|={s}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("fig11_scalability", &headers_ref);

    // One engine + workload per size.
    let mut per_size = Vec::new();
    for &n in &sizes {
        let g = gmark(n, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let (engine, _) = Engine::build(Method::IaCpqx, &g, cfg.k, &interests);
        per_size.push((g, workload, engine));
    }

    for (ti, template) in Template::ALL.iter().enumerate() {
        let mut row = vec![template.name().to_string()];
        for (g, workload, engine) in &per_size {
            let queries = &workload[ti].1;
            row.push(avg_query_time(engine, g, queries, &cfg).cell());
        }
        table.row(row);
    }
    table.finish();
}
