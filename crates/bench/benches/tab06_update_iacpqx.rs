//! Table VI: iaCPQx update time — edge deletion/insertion plus label-
//! sequence (interest) deletion/insertion, averaged over one hundred
//! operations.
//!
//! Expected shape: edge updates comparable to CPQx's (Table V); label-
//! sequence deletion is near-instant (drop one `Il2c` key); insertion costs
//! a sequence evaluation plus class splits.

use cpqx_bench::harness::{interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::sample_edges;
use cpqx_query::ast::Template;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env();
    let datasets = [
        Dataset::Robots,
        Dataset::Advogato,
        Dataset::BioGrid,
        Dataset::StringHS,
        Dataset::StringFC,
        Dataset::Youtube,
        Dataset::Yago,
        Dataset::Wikidata,
        Dataset::Freebase,
    ];
    let mut table = Table::new(
        "tab06_update_iacpqx",
        &["dataset", "edge del [s]", "edge ins [s]", "seq del [s]", "seq ins [s]"],
    );

    for ds in datasets {
        let mut g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let (engine, _) = Engine::build(Method::IaCpqx, &g, cfg.k, &interests);
        let mut idx = match engine {
            Engine::Index(i) => i,
            _ => unreachable!(),
        };
        let victims = sample_edges(&g, 100.min(g.edge_count()), cfg.seed ^ 0xFEED);

        let t0 = Instant::now();
        for &(v, u, l) in &victims {
            idx.delete_edge(&mut g, v, u, l);
        }
        let edge_del = t0.elapsed().as_secs_f64() / victims.len() as f64;
        let t0 = Instant::now();
        for &(v, u, l) in &victims {
            idx.insert_edge(&mut g, v, u, l);
        }
        let edge_ins = t0.elapsed().as_secs_f64() / victims.len() as f64;

        // Label-sequence churn over the workload's (length ≥ 2) interests.
        let long: Vec<_> = interests.iter().filter(|s| s.len() > 1).copied().collect();
        let (seq_del, seq_ins) = if long.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            let reps: Vec<_> = long.iter().cycle().take(100).copied().collect();
            // Deletion alone is O(1) hash removal (Sec. V-C).
            let t0 = Instant::now();
            for s in &reps {
                idx.delete_interest(s);
            }
            let del = t0.elapsed().as_secs_f64() / reps.len() as f64;
            let t0 = Instant::now();
            for s in &reps {
                idx.insert_interest(&g, *s);
            }
            let ins = t0.elapsed().as_secs_f64() / reps.len() as f64;
            (del, ins)
        };

        table.row(vec![
            ds.name().into(),
            format!("{edge_del:.3e}"),
            format!("{edge_ins:.3e}"),
            format!("{seq_del:.3e}"),
            format!("{seq_ins:.3e}"),
        ]);
    }
    table.finish();
}
