//! Durability-layer throughput: WAL append cost per fsync policy,
//! restart (recovery) latency, and the incremental-snapshot claim —
//! **a checkpoint after a small delta persists only the changed
//! chunks**, the on-disk mirror of the COW write path's O(changed)
//! guarantee.
//!
//! Two tables:
//!
//! * **durability** — one row per [`FsyncPolicy`]: a durable engine
//!   churns sampled edges in `CPQX_MAINT_TXN`-op delta transactions
//!   (delete + reinsert, as in `maintenance_throughput`), logging every
//!   transaction to the WAL; then the engine is dropped and the
//!   directory recovered cold. Columns report append throughput with
//!   the log on the write path, WAL bytes per op, and wall-clock to a
//!   query-ready state on restart (snapshot load + tail replay).
//! * **durability_checkpoint** — the incremental-snapshot comparison:
//!   chunk records in the bootstrap (full) snapshot vs. records written
//!   by a checkpoint taken right after one 16-op delta. With
//!   `CPQX_STORE_ASSERT_INCREMENTAL=1` the gap is asserted, not just
//!   reported: the incremental checkpoint must write fewer records than
//!   the full snapshot and reuse at least one — a regression to
//!   full-copy checkpoints fails the job visibly.
//!
//! Knobs: the usual `CPQX_*` variables plus `CPQX_MAINT_OPS` /
//! `CPQX_MAINT_TXN` (shared with the maintenance bench) and
//! `CPQX_STORE_ASSERT_INCREMENTAL`.

use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_engine::{Delta, DurabilitySink, Engine, EngineOptions};
use cpqx_graph::generate::{random_graph, sample_edges, RandomGraphConfig};
use cpqx_graph::Graph;
use cpqx_store::{durable_engine, recover_state, FsyncPolicy, StoreOptions};
use std::path::PathBuf;
use std::time::Instant;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpqx-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(k: usize) -> EngineOptions {
    // Auto-rebuild off: this bench isolates the durability layer's cost,
    // not the lazy-vs-rebuild policy.
    EngineOptions { k, auto_rebuild_ratio: None, ..EngineOptions::default() }
}

/// Runs the delete+reinsert churn as `txn`-op transactions, returning
/// elapsed seconds.
fn run_deltas(engine: &Engine, victims: &[(u32, u32, cpqx_graph::Label)], txn: usize) -> f64 {
    let t0 = Instant::now();
    for chunk in victims.chunks((txn / 2).max(1)) {
        let mut delta = Delta::new();
        for &(v, u, l) in chunk {
            delta = delta.delete_edge(v, u, l).insert_edge(v, u, l);
        }
        engine.apply_delta(&delta).expect("sampled edges are valid");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let cfg = BenchConfig::from_env();
    let ops: usize = env_parse("CPQX_MAINT_OPS", 256);
    let txn: usize = env_parse("CPQX_MAINT_TXN", 64).max(2);
    let assert_incremental = std::env::var("CPQX_STORE_ASSERT_INCREMENTAL").is_ok();

    let g = random_graph(&RandomGraphConfig::uniform(
        cfg.edge_budget.max(64) as u32,
        cfg.edge_budget,
        8,
        cfg.seed,
    ));
    let victims = sample_edges(&g, ops / 2, cfg.seed ^ 0xD0);
    let total_ops = victims.len() * 2;

    // -- fsync policies: append throughput + cold-restart latency -------
    let mut table = Table::new(
        "durability",
        &["fsync", "|E|", "ops", "append [ops/s]", "wal [B/op]", "recover [ms]", "replayed txns"],
    );
    let policies: [(&str, FsyncPolicy); 3] = [
        ("always", FsyncPolicy::Always),
        ("every-8", FsyncPolicy::EveryN(8)),
        ("never", FsyncPolicy::Never),
    ];
    for (name, fsync) in policies {
        let dir = tmp(name);
        let (elapsed, wal_bytes) = {
            let start = durable_engine(&dir, StoreOptions { fsync }, options(cfg.k), || g.clone())
                .expect("fresh durable start");
            let elapsed = run_deltas(&start.engine, &victims, txn);
            (elapsed, start.engine.stats().wal_bytes)
        };
        let t0 = Instant::now();
        let (rg, _index, info) =
            recover_state(&dir).expect("recovery succeeds").expect("directory holds a store");
        let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(rg.edge_count(), g.edge_count(), "churn is shape-preserving");
        table.row(vec![
            name.to_string(),
            g.edge_count().to_string(),
            total_ops.to_string(),
            format!("{:.0}", total_ops as f64 / elapsed.max(1e-9)),
            format!("{:.0}", wal_bytes as f64 / total_ops.max(1) as f64),
            format!("{recover_ms:.1}"),
            info.replayed_transactions.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.finish();

    // -- incremental snapshots: full vs. after a 16-op delta ------------
    let mut ckpt = Table::new(
        "durability_checkpoint",
        &["|E|", "full chunks", "incr written", "incr skipped", "ckpt [ms]"],
    );
    let dir = tmp("checkpoint");
    let start =
        durable_engine(&dir, StoreOptions { fsync: FsyncPolicy::Never }, options(cfg.k), || {
            g.clone()
        })
        .expect("fresh durable start");
    let boot_snap = start.engine.snapshot();
    let full_chunks = full_chunk_count(boot_snap.graph(), boot_snap.index());
    drop(boot_snap);
    let mut delta = Delta::new();
    for &(v, u, l) in victims.iter().take(8) {
        delta = delta.delete_edge(v, u, l).insert_edge(v, u, l);
    }
    assert_eq!(delta.len(), 16, "the acceptance criterion is a 16-op delta");
    start.engine.apply_delta(&delta).expect("sampled edges are valid");
    let snap = start.engine.snapshot();
    let t0 = Instant::now();
    let report = start.store.checkpoint(snap.graph(), snap.index()).expect("checkpoint succeeds");
    let ckpt_ms = t0.elapsed().as_secs_f64() * 1e3;
    ckpt.row(vec![
        g.edge_count().to_string(),
        full_chunks.to_string(),
        report.chunks_written.to_string(),
        report.chunks_skipped.to_string(),
        format!("{ckpt_ms:.1}"),
    ]);
    ckpt.finish();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "\nInvariant check: 'incr written' counts chunk records a checkpoint persisted after a \
         16-op delta; 'full chunks' is what the bootstrap snapshot wrote for the same graph. \
         Incremental checkpoints reuse every chunk the delta left pointer-shared, so written \
         must stay well below full and skipped must be positive."
    );
    if assert_incremental {
        // The delta may have grown the chunk counts (lazy maintenance
        // appends classes), so account against the state the checkpoint
        // actually persisted, not the bootstrap's.
        let total_after = full_chunk_count(snap.graph(), snap.index()) as u64;
        assert!(
            report.chunks_written + report.chunks_skipped == total_after,
            "chunk accounting broke: {} written + {} skipped != {} total",
            report.chunks_written,
            report.chunks_skipped,
            total_after,
        );
        assert!(
            report.chunks_written < full_chunks as u64 && report.chunks_skipped > 0,
            "incremental snapshot regressed to a full copy: wrote {} of {} chunks after a \
             16-op delta",
            report.chunks_written,
            full_chunks,
        );
        println!(
            "incremental-snapshot assertion passed: {} of {} chunks rewritten ({} reused)",
            report.chunks_written, full_chunks, report.chunks_skipped
        );
    }
}

/// Chunk records a full snapshot persists for the state `(g, index)`
/// (excluding the fixed header record).
fn full_chunk_count(g: &Graph, index: &cpqx_core::CpqxIndex) -> usize {
    g.topology_chunk_count() + g.name_chunk_count() + index.class_chunk_count()
}
