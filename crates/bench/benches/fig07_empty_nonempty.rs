//! Fig. 7: query time split by empty vs non-empty answers, plus the time to
//! obtain the *first* answer of non-empty queries, on the YAGO, Wikidata
//! and Freebase stand-ins, for iaCPQx, TurboHom++ and Tentris.
//!
//! Expected shape: iaCPQx beats both matchers in all three measurements on
//! most templates; empty queries are generally cheaper than non-empty ones
//! (no answer-insertion cost, early termination on empty intermediates).

use cpqx_bench::harness::{interests_from_queries, workload_for, Timing};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

/// Fig. 7 omits C2 (it is never empty under the workload filter).
const TEMPLATES: [Template; 11] = [
    Template::T,
    Template::S,
    Template::TT,
    Template::St,
    Template::TC,
    Template::SC,
    Template::ST,
    Template::C4,
    Template::C2i,
    Template::Ti,
    Template::Si,
];

fn time_queries(
    engine: &Engine,
    g: &cpqx_graph::Graph,
    queries: &[&Cpq],
    cfg: &BenchConfig,
    first_only: bool,
) -> Timing {
    if queries.is_empty() {
        return Timing::Skipped;
    }
    let budget = Duration::from_millis(cfg.cell_budget_ms);
    let started = Instant::now();
    let mut total = Duration::ZERO;
    let mut n = 0u32;
    for q in queries {
        let t0 = Instant::now();
        if first_only {
            std::hint::black_box(engine.evaluate_first(g, q));
        } else {
            std::hint::black_box(engine.evaluate(g, q));
        }
        total += t0.elapsed();
        n += 1;
        if started.elapsed() > budget {
            return Timing::Timeout;
        }
    }
    Timing::Avg(total.as_secs_f64() / n as f64)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let methods = [Method::IaCpqx, Method::TurboHom, Method::Tentris];
    let mut headers = vec!["dataset", "template", "kind"];
    headers.extend(methods.iter().map(|m| m.name()));
    let mut table = Table::new("fig07_empty_nonempty", &headers);

    for ds in [Dataset::Yago, Dataset::Wikidata, Dataset::Freebase] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &TEMPLATES, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let engines: Vec<Engine> =
            methods.iter().map(|&m| Engine::build(m, &g, cfg.k, &interests).0).collect();
        // Classify queries by answer emptiness using the index engine.
        let oracle = &engines[0];
        for (template, queries) in &workload {
            let (empty, nonempty): (Vec<&Cpq>, Vec<&Cpq>) =
                queries.iter().partition(|q| oracle.evaluate(&g, q).is_empty());
            for (kind, qs, first) in [
                ("empty", &empty, false),
                ("non-empty", &nonempty, false),
                ("first", &nonempty, true),
            ] {
                let mut row =
                    vec![ds.name().to_string(), template.name().to_string(), kind.to_string()];
                for e in &engines {
                    row.push(time_queries(e, &g, qs, &cfg, first).cell());
                }
                table.row(row);
            }
        }
    }
    table.finish();
}
