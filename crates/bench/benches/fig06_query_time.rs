//! Fig. 6: average query time for the 12 query templates of Fig. 5, for all
//! seven methods, on the 14 real-dataset stand-ins.
//!
//! Expected shape (paper): CPQx/iaCPQx win by orders of magnitude on the
//! conjunction-heavy templates (T, S, TT, St); Path is competitive on pure
//! join chains (C2, C4); TurboHom++/Tentris are competitive on cyclic
//! joins (Ti, Si); BFS trails everywhere. Full CPQx/Path are skipped on the
//! six datasets where the paper reports out-of-memory.

use cpqx_bench::harness::{avg_query_time, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;

/// Datasets where the paper could not build the interest-unaware indexes
/// ("out of memory", Table IV / Fig. 6 caption) — mirrored here.
fn full_index_feasible(ds: Dataset) -> bool {
    !matches!(
        ds,
        Dataset::WebGoogle
            | Dataset::WikiTalk
            | Dataset::Yago
            | Dataset::CitPatents
            | Dataset::Wikidata
            | Dataset::Freebase
    )
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut headers = vec!["dataset", "template"];
    headers.extend(Method::ALL.iter().map(|m| m.name()));
    let mut table = Table::new("fig06_query_time", &headers);
    // Stand-in dimensions ride along as a companion table instead of
    // loose stderr chatter, so they land in the TSV/JSON mirrors too.
    let mut dims = Table::new("fig06_datasets", &["dataset", "|V|", "|E|", "|L|"]);

    for ds in Dataset::REAL {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        dims.row(vec![
            ds.name().to_string(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            g.base_label_count().to_string(),
        ]);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);

        // Build every engine once per dataset.
        let engines: Vec<Option<Engine>> = Method::ALL
            .iter()
            .map(|&m| {
                let needs_full_index = matches!(m, Method::Cpqx | Method::Path);
                if needs_full_index && !full_index_feasible(ds) {
                    return None; // paper: out of memory
                }
                Some(Engine::build(m, &g, cfg.k, &interests).0)
            })
            .collect();

        for (template, queries) in &workload {
            let mut row = vec![ds.name().to_string(), template.name().to_string()];
            for engine in &engines {
                let cell = match engine {
                    None => "-".to_string(),
                    Some(e) => avg_query_time(e, &g, queries, &cfg).cell(),
                };
                row.push(cell);
            }
            table.row(row);
        }
    }
    dims.finish();
    table.finish();
}
