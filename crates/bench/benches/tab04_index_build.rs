//! Table IV: index size (IS) and index construction time (IT) for CPQx,
//! iaCPQx, Path and iaPath on every dataset stand-in (including the gMark
//! instances). "-" marks the dataset/method combinations the paper reports
//! as out of memory (interest-unaware indexes on the six largest graphs and
//! on gMark).
//!
//! Expected shape: CPQx is never larger than Path (Thm. 4.2); the
//! interest-aware indexes are far smaller and faster to build than the full
//! ones; Path builds somewhat faster than CPQx (no bisimulation pass).

use cpqx_bench::harness::{fmt_bytes, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;

fn full_index_feasible(ds: Dataset) -> bool {
    !matches!(
        ds,
        Dataset::WebGoogle
            | Dataset::WikiTalk
            | Dataset::Yago
            | Dataset::CitPatents
            | Dataset::Wikidata
            | Dataset::Freebase
            | Dataset::GMark1m
            | Dataset::GMark5m
            | Dataset::GMark10m
            | Dataset::GMark15m
            | Dataset::GMark20m
    )
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = Table::new(
        "tab04_index_build",
        &[
            "dataset",
            "CPQx IS",
            "CPQx IT[s]",
            "iaCPQx IS",
            "iaCPQx IT[s]",
            "Path IS",
            "Path IT[s]",
            "iaPath IS",
            "iaPath IT[s]",
        ],
    );

    let all: Vec<Dataset> = Dataset::REAL.iter().chain(Dataset::GMARK.iter()).copied().collect();
    for ds in all {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let mut row = vec![ds.name().to_string()];
        for method in Method::INDEXES {
            let feasible = method.is_interest_aware() || full_index_feasible(ds);
            if !feasible {
                row.push("-".into());
                row.push("-".into());
                continue;
            }
            let (engine, build_time) = Engine::build(method, &g, cfg.k, &interests);
            row.push(fmt_bytes(engine.size_bytes().unwrap()));
            row.push(format!("{:.3}", build_time.as_secs_f64()));
        }
        table.row(row);
    }
    table.finish();
    println!("\nInvariant check (Thm. 4.2): CPQx IS must never exceed Path IS per dataset.");
}
