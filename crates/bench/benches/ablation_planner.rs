//! Ablation of the cost-based plan optimizer (the future-work extension of
//! Sec. IV-D) against the paper's syntactic planner, on CPQx.
//!
//! Expected shape: chains longer than k (C4, Si) and multi-conjunct
//! templates (TT, ST, St) benefit from selectivity-aware chunk boundaries
//! and cheapest-first conjuncts; templates that already compile to one or
//! two lookups (C2, T, S) are unchanged.

use cpqx_bench::harness::{interests_from_queries, workload_for, Timing};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

fn timed(
    idx: &cpqx_core::CpqxIndex,
    g: &cpqx_graph::Graph,
    queries: &[Cpq],
    cfg: &BenchConfig,
    optimized: bool,
) -> Timing {
    if queries.is_empty() {
        return Timing::Skipped;
    }
    let budget = Duration::from_millis(cfg.cell_budget_ms);
    let started = Instant::now();
    let mut total = Duration::ZERO;
    let mut n = 0u32;
    for q in queries {
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            if optimized {
                std::hint::black_box(idx.evaluate_optimized(g, q));
            } else {
                std::hint::black_box(idx.evaluate(g, q));
            }
            total += t0.elapsed();
            n += 1;
            if started.elapsed() > budget {
                return Timing::Timeout;
            }
        }
    }
    Timing::Avg(total.as_secs_f64() / n as f64)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = Table::new(
        "ablation_planner",
        &["dataset", "template", "syntactic", "optimized", "speedup"],
    );

    for ds in [Dataset::Robots, Dataset::EgoFacebook, Dataset::Epinions] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let (engine, _) = Engine::build(Method::Cpqx, &g, cfg.k, &interests);
        let idx = engine.as_cpqx().unwrap();
        // Answers must agree before we time anything.
        for (_, queries) in &workload {
            for q in queries.iter().take(1) {
                assert_eq!(idx.evaluate(&g, q), idx.evaluate_optimized(&g, q));
            }
        }
        for (template, queries) in &workload {
            let naive = timed(idx, &g, queries, &cfg, false);
            let opt = timed(idx, &g, queries, &cfg, true);
            let speedup = match (naive.seconds(), opt.seconds()) {
                (Some(a), Some(b)) if b > 0.0 => format!("{:.2}x", a / b),
                _ => "-".to_string(),
            };
            table.row(vec![
                ds.name().to_string(),
                template.name().to_string(),
                naive.cell(),
                opt.cell(),
                speedup,
            ]);
        }
    }
    table.finish();
}
