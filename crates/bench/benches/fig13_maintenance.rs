//! Fig. 13: impact of lazy maintenance on query time, on the Robots
//! stand-in: (a) CPQx after updating 0–20% of edges, (b) iaCPQx after the
//! same, (c) iaCPQx after 0–10 label-sequence (workload) updates.
//!
//! Each update step deletes the chosen edges and re-inserts them (the
//! paper's protocol), so the graph — and therefore every query answer — is
//! unchanged while the index fragments. Expected shape: cheap templates
//! (C2i, T) degrade mildly with the update ratio (more LOOKUP classes);
//! join-heavy templates (C4, Si) barely move.

use cpqx_bench::harness::{avg_query_time, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::sample_edges;
use cpqx_query::ast::Template;

fn main() {
    let cfg = BenchConfig::from_env();
    let g0 = Dataset::Robots.generate(cfg.edge_budget, cfg.seed);
    let workload = workload_for(&g0, &Template::ALL, &cfg);
    let interests = interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);

    for (panel, method) in [("a_cpqx", Method::Cpqx), ("b_iacpqx", Method::IaCpqx)] {
        let mut headers: Vec<String> = vec!["template".into()];
        let ratios = [0usize, 1, 2, 5, 10, 20];
        headers.extend(ratios.iter().map(|r| format!("{r}%")));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&format!("fig13{panel}_graph_update"), &headers_ref);

        // Build per ratio: fresh graph + index, churn x% of edges.
        let mut engines = Vec::new();
        for &r in &ratios {
            let mut g = g0.clone();
            let (engine, _) = Engine::build(method, &g, cfg.k, &interests);
            let mut idx = match engine {
                Engine::Index(i) => i,
                _ => unreachable!(),
            };
            let count = g.edge_count() * r / 100;
            for (v, u, l) in sample_edges(&g, count, cfg.seed ^ 0xD1CE) {
                idx.delete_edge(&mut g, v, u, l);
                idx.insert_edge(&mut g, v, u, l);
            }
            engines.push((g, Engine::Index(idx)));
        }
        for (ti, template) in Template::ALL.iter().enumerate() {
            let mut row = vec![template.name().to_string()];
            for (g, engine) in &engines {
                row.push(avg_query_time(engine, g, &workload[ti].1, &cfg).cell());
            }
            table.row(row);
        }
        table.finish();
    }

    // Panel (c): iaCPQx under label-sequence (interest) churn.
    {
        let counts = [0usize, 2, 4, 6, 8, 10];
        let mut headers: Vec<String> = vec!["template".into()];
        headers.extend(counts.iter().map(|c| format!("{c} seqs")));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new("fig13c_workload_update", &headers_ref);

        let long_interests: Vec<_> = interests.iter().filter(|s| s.len() > 1).copied().collect();
        let mut engines = Vec::new();
        for &c in &counts {
            let g = g0.clone();
            let (engine, _) = Engine::build(Method::IaCpqx, &g, cfg.k, &interests);
            let mut idx = match engine {
                Engine::Index(i) => i,
                _ => unreachable!(),
            };
            for seq in long_interests.iter().cycle().take(c) {
                idx.delete_interest(seq);
                idx.insert_interest(&g, *seq);
            }
            engines.push((g, Engine::Index(idx)));
        }
        for (ti, template) in Template::ALL.iter().enumerate() {
            let mut row = vec![template.name().to_string()];
            for (g, engine) in &engines {
                row.push(avg_query_time(engine, g, &workload[ti].1, &cfg).cell());
            }
            table.row(row);
        }
        table.finish();
    }
    println!("\nNote: answers are identical across all columns (updates are delete+reinsert);");
    println!("only the lazy fragmentation of the index changes.");
}
