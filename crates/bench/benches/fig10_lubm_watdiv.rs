//! Fig. 10: average query time of the LUBM and WatDiv benchmark workloads
//! on iaCPQx as the graph grows.
//!
//! Expected shape: near-linear growth; the WatDiv series grows faster than
//! LUBM because its queries join more patterns (the paper makes the same
//! observation).

use cpqx_bench::harness::{avg_query_time, interests_from_queries};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::generate::gmark;
use cpqx_query::benchqueries::{lubm_queries, watdiv_queries};
use cpqx_query::Cpq;

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table =
        Table::new("fig10_lubm_watdiv", &["vertices", "edges", "LUBM avg [s]", "WatDiv avg [s]"]);

    // Size sweep: ×1, ×2, ×4, ×8 of a base gMark-style instance.
    let base = (cfg.edge_budget / 8).max(300) as u32;
    for mult in [1u32, 2, 4, 8] {
        let g = gmark(base * mult, cfg.seed);
        let mut cells = vec![g.vertex_count().to_string(), g.edge_count().to_string()];
        for (name, queries) in [
            (
                "lubm",
                lubm_queries(&g, cfg.seed).into_iter().map(|nq| nq.query).collect::<Vec<Cpq>>(),
            ),
            ("watdiv", watdiv_queries(&g, cfg.seed).into_iter().map(|nq| nq.query).collect()),
        ] {
            let interests = interests_from_queries(queries.iter(), cfg.k);
            let (engine, _) = Engine::build(Method::IaCpqx, &g, cfg.k, &interests);
            let timing = avg_query_time(&engine, &g, &queries, &cfg);
            cells.push(timing.cell());
            let _ = name;
        }
        table.row(cells);
    }
    table.finish();
}
