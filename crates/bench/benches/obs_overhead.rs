//! Observability overhead: the same uncached batch workload served with
//! the recorder disabled vs enabled at default sampling (one trace per
//! 16 queries, per-opcode + per-stage histograms on every query).
//!
//! Expected shape: the enabled recorder costs a few relaxed atomics per
//! query plus a bounded allocation on sampled ones — low single-digit
//! percent at worst. The result cache is disabled so every query walks
//! the full `query_on` path (begin → plan → eval → finish), i.e. the
//! measurement covers the sampling machinery, not just histogram adds.
//!
//! Knobs: the usual `CPQX_*` variables plus `CPQX_REPS` (default 5 —
//! alternating disabled/enabled passes, best-of per config) and
//! `CPQX_OBS_ASSERT_OVERHEAD=1`, which fails the bench when the default
//! sampling configuration costs ≥5% throughput (skipped on single-core
//! hosts, where wall-clock is contention noise).

use cpqx_bench::harness::workload_for;
use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_engine::{BatchOptions, Engine, EngineOptions, ObsOptions};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;

fn main() {
    let cfg = BenchConfig::from_env();
    let reps: usize = env_parse("CPQX_REPS", 5);
    let g = Dataset::Advogato.generate(cfg.edge_budget, cfg.seed);
    let workload: Vec<Cpq> =
        workload_for(&g, &Template::ALL, &cfg).into_iter().flat_map(|(_, qs)| qs).collect();
    assert!(!workload.is_empty(), "empty workload");

    let engine_with = |obs: ObsOptions| {
        let options = EngineOptions {
            k: cfg.k,
            // Cache disabled: every query must execute, so both configs
            // measure the full serving path rather than cache probes.
            result_cache_capacity: 0,
            obs,
            ..EngineOptions::default()
        };
        Engine::with_options(g.clone(), options).0
    };
    let disabled = engine_with(ObsOptions::disabled());
    let enabled = engine_with(ObsOptions::default());

    // Alternate passes so drift (thermal, page cache) hits both configs
    // evenly; keep the best pass per config.
    let (mut qps_off, mut qps_on) = (0.0f64, 0.0f64);
    for _ in 0..reps.max(1) {
        let out = disabled.evaluate_batch(&workload, BatchOptions::default());
        qps_off = qps_off.max(out.throughput_qps());
        let out = enabled.evaluate_batch(&workload, BatchOptions::default());
        qps_on = qps_on.max(out.throughput_qps());
    }
    let overhead = (qps_off - qps_on) / qps_off.max(1e-9);

    let mut table = Table::new("obs_overhead", &["config", "queries", "best qps", "overhead"]);
    table.row(vec![
        "obs disabled".into(),
        workload.len().to_string(),
        format!("{qps_off:.0}"),
        "-".into(),
    ]);
    table.row(vec![
        "obs default sampling".into(),
        workload.len().to_string(),
        format!("{qps_on:.0}"),
        format!("{:.2}%", overhead * 100.0),
    ]);
    table.finish();

    // Sanity: the enabled run really recorded (guards against the gate
    // silently measuring a disabled recorder twice).
    assert!(
        enabled.obs().op_snapshot(cpqx_obs::Op::Query).count() > 0,
        "enabled recorder saw no queries"
    );
    assert_eq!(disabled.obs().op_snapshot(cpqx_obs::Op::Query).count(), 0);

    if std::env::var("CPQX_OBS_ASSERT_OVERHEAD").is_ok() {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores < 2 {
            println!(
                "\nCPQX_OBS_ASSERT_OVERHEAD set but only {cores} core available; skipping the \
                 gate (single-core wall-clock is scheduling noise, not recorder cost)."
            );
            return;
        }
        assert!(
            overhead < 0.05,
            "observability overhead gate: default sampling costs {:.2}% throughput (≥5%): \
             {qps_off:.0} qps disabled vs {qps_on:.0} qps enabled",
            overhead * 100.0
        );
        println!("\nOverhead gate passed: default sampling costs {:.2}% (< 5%).", overhead * 100.0);
    }
}
