//! Criterion micro-benchmarks of the physical operators behind Thm. 4.5's
//! cost model: sorted-merge join, pair intersection, class-id intersection,
//! and index lookup — the primitives every table cell is made of.

use cpqx_core::exec::intersect_ids;
use cpqx_core::CpqxIndex;
use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_graph::{LabelSeq, Pair};
use cpqx_query::ops;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_pairs(n: usize, universe: u32, seed: u64) -> Vec<Pair> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut v: Vec<Pair> =
        (0..n).map(|_| Pair::new(rng.gen_range(0..universe), rng.gen_range(0..universe))).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_pairs");
    for &n in &[1_000usize, 10_000, 100_000] {
        let left = random_pairs(n, 2_000, 1);
        let right = random_pairs(n, 2_000, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ops::join_pairs(&left, &right));
        });
    }
    group.finish();
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    for &n in &[1_000usize, 10_000, 100_000] {
        let a = random_pairs(n, 100_000, 3);
        let b_pairs = random_pairs(n, 100_000, 4);
        group.bench_with_input(BenchmarkId::new("pairs", n), &n, |b, _| {
            b.iter(|| ops::intersect_pairs(&a, &b_pairs));
        });
        let ids_a: Vec<u32> = (0..n as u32).step_by(2).collect();
        let ids_b: Vec<u32> = (0..n as u32).step_by(3).collect();
        group.bench_with_input(BenchmarkId::new("class_ids", n), &n, |b, _| {
            b.iter(|| intersect_ids(&ids_a, &ids_b));
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let g = random_graph(&RandomGraphConfig::social(2_000, 10_000, 4, 7));
    let idx = CpqxIndex::build(&g, 2);
    // Gather the densest 2-sequence for a stable lookup target.
    let mut best = LabelSeq::single(cpqx_graph::ExtLabel(0));
    let mut best_len = 0;
    for a in g.ext_labels() {
        for b in g.ext_labels() {
            let s = LabelSeq::from_slice(&[a, b]);
            if idx.lookup(&s).len() > best_len {
                best_len = idx.lookup(&s).len();
                best = s;
            }
        }
    }
    c.bench_function("il2c_lookup", |b| b.iter(|| idx.lookup(std::hint::black_box(&best))));
}

criterion_group!(benches, bench_join, bench_intersection, bench_lookup);
criterion_main!(benches);
