//! Maintenance (write-path) throughput: per-op snapshot installs vs.
//! typed delta transactions vs. full rebuild — the engine-level form of
//! the paper's lazy-update/recompute tradeoff (Tables V–VII).
//!
//! Three write strategies churn the same sampled edges (delete +
//! reinsert, so the graph ends where it started):
//!
//! * **per-op** — one `Engine::delete_edge`/`insert_edge` call per op:
//!   every op pays a full graph + index clone and a snapshot install
//!   (the pre-delta write path, still what single wire UPDATEs cost);
//! * **delta ×B** — `Engine::apply_delta` with B-op transactions: one
//!   clone + install amortized over the batch, lazy maintenance per op;
//! * **rebuild** — a from-scratch sharded build of the final graph, the
//!   defragmentation cost the auto-rebuild threshold weighs against.
//!
//! Expected shape: delta beats per-op by roughly the batch factor on
//! clone-dominated graphs, and the fragmentation ratio after churn
//! stays near 1.0x (Table VII reports 1.02–1.63 for up to 20% churn),
//! which is why lazy maintenance wins until fragmentation accumulates.
//!
//! Knobs: the usual `CPQX_*` variables plus `CPQX_MAINT_OPS` (total ops
//! per strategy, default 256) and `CPQX_MAINT_TXN` (delta transaction
//! size, default 64).

use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_engine::delta::Delta;
use cpqx_engine::{Engine, EngineOptions};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::sample_edges;
use std::time::Instant;

fn engine_for(g: &cpqx_graph::Graph, k: usize) -> Engine {
    // Auto-rebuild disabled: this bench isolates the raw strategies.
    let (engine, _) = Engine::with_options(
        g.clone(),
        EngineOptions { k, auto_rebuild_ratio: None, ..EngineOptions::default() },
    );
    engine
}

fn main() {
    let cfg = BenchConfig::from_env();
    let ops: usize = env_parse("CPQX_MAINT_OPS", 256);
    let txn: usize = env_parse("CPQX_MAINT_TXN", 64).max(2);
    let delta_col = format!("delta x{txn} [ops/s]");
    let mut table = Table::new(
        "maintenance_throughput",
        &[
            "dataset",
            "|V|",
            "|E|",
            "ops",
            "per-op [ops/s]",
            &delta_col,
            "speedup",
            "frag after",
            "rebuild[s]",
        ],
    );

    for ds in [Dataset::Advogato, Dataset::Robots] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let victims = sample_edges(&g, ops / 2, cfg.seed ^ 0x7A);
        let total_ops = victims.len() * 2;

        // -- per-op path: clone + install for every single op ----------
        let engine = engine_for(&g, cfg.k);
        let t0 = Instant::now();
        for &(v, u, l) in &victims {
            engine.delete_edge(v, u, l);
            engine.insert_edge(v, u, l);
        }
        let per_op_s = t0.elapsed().as_secs_f64();

        // -- delta path: one clone + install per B-op transaction ------
        let engine = engine_for(&g, cfg.k);
        let t0 = Instant::now();
        for chunk in victims.chunks(txn / 2) {
            let mut delta = Delta::new();
            for &(v, u, l) in chunk {
                delta = delta.delete_edge(v, u, l).insert_edge(v, u, l);
            }
            engine.apply_delta(&delta).expect("sampled edges are valid");
        }
        let delta_s = t0.elapsed().as_secs_f64();
        let frag = engine.stats().fragmentation_ratio;

        // -- rebuild: the defragmentation alternative -------------------
        let t0 = Instant::now();
        engine.rebuild();
        let rebuild_s = t0.elapsed().as_secs_f64();

        table.row(vec![
            ds.name().to_string(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            total_ops.to_string(),
            format!("{:.0}", total_ops as f64 / per_op_s.max(1e-9)),
            format!("{:.0}", total_ops as f64 / delta_s.max(1e-9)),
            format!("{:.2}x", per_op_s / delta_s.max(1e-9)),
            format!("{frag:.3}x"),
            format!("{rebuild_s:.3}"),
        ]);
    }

    table.finish();
    println!(
        "\nInvariant check: the delta column should beat per-op by roughly the transaction \
         size on clone-dominated graphs; 'frag after' is Table VII's ratio, live."
    );
}
