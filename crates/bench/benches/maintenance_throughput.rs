//! Maintenance (write-path) throughput: per-op snapshot installs vs.
//! typed delta transactions vs. the pre-COW full-clone write path vs.
//! full rebuild — the engine-level form of the paper's
//! lazy-update/recompute tradeoff (Tables V–VII) plus the copy-on-write
//! claim of the snapshot store: **per-transaction write cost is
//! O(changed), not O(graph)**.
//!
//! Four write strategies churn the same sampled edges (delete +
//! reinsert, so the graph ends where it started):
//!
//! * **per-op** — one `Engine::delete_edge`/`insert_edge` call per op:
//!   a snapshot install per op (itself COW-cheap now, but still one
//!   install + cache invalidation each);
//! * **delta ×B** — `Engine::apply_delta` with B-op transactions over
//!   the structural-sharing snapshot: one O(#chunks) clone per
//!   transaction, chunk-local copies for what the ops touch;
//! * **clone ×B** — the same transactions on an engine with
//!   `deep_clone_writes: true`: every transaction deep-copies the whole
//!   graph + index first, reproducing the pre-COW O(graph) write path;
//! * **rebuild** — a from-scratch sharded build of the final graph, the
//!   defragmentation cost the auto-rebuild threshold weighs against.
//!
//! The `cow speedup` column is clone/delta wall-clock — the factor the
//! structural sharing buys. It grows with graph size because the deep
//! copy is O(graph) while the COW copy tracks the delta footprint; it
//! shows cleanest on the bounded-degree **uniform** row, where the
//! per-op lazy-maintenance work (affected-pair enumeration) is small
//! and the clone is the dominant term. On hub-heavy rows (Advogato)
//! the maintenance work itself dwarfs either clone at bench scale, so
//! their speedups hover near 1 — that is the lazy procedures' cost,
//! not the snapshot's. The second table scales the uniform family to
//! show per-transaction COW cost staying roughly flat in |E| while the
//! clone path grows linearly.
//!
//! Knobs: the usual `CPQX_*` variables plus `CPQX_MAINT_OPS` (total ops
//! per strategy, default 256), `CPQX_MAINT_TXN` (delta transaction
//! size, default 64) and `CPQX_MAINT_ASSERT_COW` (minimum accepted
//! `cow speedup` on the uniform rows; unset = report only). CI sets the
//! assertion so a regression back to O(graph) writes fails the job
//! visibly.

use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_engine::delta::Delta;
use cpqx_engine::{Engine, EngineOptions};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::sample_edges;
use std::time::Instant;

fn engine_for(g: &cpqx_graph::Graph, k: usize, deep_clone_writes: bool) -> Engine {
    // Auto-rebuild disabled: this bench isolates the raw strategies.
    let (engine, _) = Engine::with_options(
        g.clone(),
        EngineOptions {
            k,
            auto_rebuild_ratio: None,
            deep_clone_writes,
            ..EngineOptions::default()
        },
    );
    engine
}

/// Runs the delete+reinsert churn as `txn`-op delta transactions,
/// returning the elapsed seconds.
fn run_deltas(engine: &Engine, victims: &[(u32, u32, cpqx_graph::Label)], txn: usize) -> f64 {
    let t0 = Instant::now();
    for chunk in victims.chunks(txn / 2) {
        let mut delta = Delta::new();
        for &(v, u, l) in chunk {
            delta = delta.delete_edge(v, u, l).insert_edge(v, u, l);
        }
        engine.apply_delta(&delta).expect("sampled edges are valid");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let cfg = BenchConfig::from_env();
    let ops: usize = env_parse("CPQX_MAINT_OPS", 256);
    let txn: usize = env_parse("CPQX_MAINT_TXN", 64).max(2);
    let assert_cow: Option<f64> =
        std::env::var("CPQX_MAINT_ASSERT_COW").ok().and_then(|v| v.parse().ok());
    let delta_col = format!("delta x{txn} [ops/s]");
    let clone_col = format!("clone x{txn} [ops/s]");
    let mut table = Table::new(
        "maintenance_throughput",
        &[
            "dataset",
            "|V|",
            "|E|",
            "ops",
            "per-op [ops/s]",
            &delta_col,
            &clone_col,
            "cow speedup",
            "cow shared",
            "frag after",
            "rebuild[s]",
        ],
    );

    // Bounded-degree synthetic at the full budget: the clone-vs-COW
    // acceptance row. |V| = |E| keeps the average extended degree at ~2,
    // so the per-op lazy-maintenance work (ball enumeration, O(d^k)) is
    // small and the write-path copy is the term being compared; the
    // graph/index stores are still |E|-sized, which is exactly what the
    // clone path pays per transaction and the COW path must not.
    let uniform = |edges: usize| {
        cpqx_graph::generate::random_graph(&cpqx_graph::generate::RandomGraphConfig::uniform(
            edges.max(64) as u32,
            edges,
            8,
            cfg.seed,
        ))
    };

    let mut worst_speedup = f64::INFINITY;
    let named: Vec<(String, cpqx_graph::Graph, bool)> = vec![
        ("Advogato".into(), Dataset::Advogato.generate(cfg.edge_budget, cfg.seed), false),
        ("Robots".into(), Dataset::Robots.generate(cfg.edge_budget, cfg.seed), false),
        ("uniform".into(), uniform(cfg.edge_budget), true),
    ];
    for (name, g, asserted) in &named {
        let victims = sample_edges(g, ops / 2, cfg.seed ^ 0x7A);
        let total_ops = victims.len() * 2;

        // -- per-op path: one snapshot install per op -------------------
        let engine = engine_for(g, cfg.k, false);
        let t0 = Instant::now();
        for &(v, u, l) in &victims {
            engine.delete_edge(v, u, l);
            engine.insert_edge(v, u, l);
        }
        let per_op_s = t0.elapsed().as_secs_f64();

        // -- COW delta path: O(changed) copies per transaction ----------
        let engine = engine_for(g, cfg.k, false);
        let delta_s = run_deltas(&engine, &victims, txn);
        let frag = engine.stats().fragmentation_ratio;

        let cow_stats = engine.stats();
        let shared_pct = 100 * cow_stats.cow_chunks_shared
            / (cow_stats.cow_chunks_copied + cow_stats.cow_chunks_shared).max(1);

        // -- pre-COW comparison: full deep copy per transaction ---------
        let clone_engine = engine_for(g, cfg.k, true);
        let clone_s = run_deltas(&clone_engine, &victims, txn);
        let speedup = clone_s / delta_s.max(1e-9);
        if *asserted {
            worst_speedup = worst_speedup.min(speedup);
        }

        // -- rebuild: the defragmentation alternative -------------------
        let t0 = Instant::now();
        engine.rebuild();
        let rebuild_s = t0.elapsed().as_secs_f64();

        table.row(vec![
            name.clone(),
            g.vertex_count().to_string(),
            g.edge_count().to_string(),
            total_ops.to_string(),
            format!("{:.0}", total_ops as f64 / per_op_s.max(1e-9)),
            format!("{:.0}", total_ops as f64 / delta_s.max(1e-9)),
            format!("{:.0}", total_ops as f64 / clone_s.max(1e-9)),
            format!("{speedup:.2}x"),
            format!("{shared_pct}%"),
            format!("{frag:.3}x"),
            format!("{rebuild_s:.3}"),
        ]);
    }
    table.finish();

    // -- scaling table: per-transaction cost vs. graph size -------------
    let mut scaling = Table::new(
        "maintenance_write_scaling",
        &["|E|", "txns", "cow [us/txn]", "clone [us/txn]", "cow speedup"],
    );
    for budget in [cfg.edge_budget / 4, cfg.edge_budget / 2, cfg.edge_budget] {
        let g = uniform(budget.max(64));
        let victims = sample_edges(&g, ops / 2, cfg.seed ^ 0x5C);
        let txns = victims.len().div_ceil((txn / 2).max(1)).max(1);
        let engine = engine_for(&g, cfg.k, false);
        let cow_s = run_deltas(&engine, &victims, txn);
        let clone_engine = engine_for(&g, cfg.k, true);
        let clone_s = run_deltas(&clone_engine, &victims, txn);
        scaling.row(vec![
            g.edge_count().to_string(),
            txns.to_string(),
            format!("{:.0}", cow_s * 1e6 / txns as f64),
            format!("{:.0}", clone_s * 1e6 / txns as f64),
            format!("{:.2}x", clone_s / cow_s.max(1e-9)),
        ]);
    }
    scaling.finish();

    println!(
        "\nInvariant check: 'cow speedup' is the factor the structural-sharing snapshot buys \
         over the pre-COW full-clone write path. On the bounded-degree uniform rows the clone \
         column is O(graph) per transaction while the cow column tracks the delta footprint, so \
         the speedup must exceed 1 and grow with |E|; hub-heavy rows are dominated by the lazy \
         procedures' own affected-pair work instead. 'frag after' is Table VII's ratio, live."
    );
    if let Some(min) = assert_cow {
        // Wall-clock at smoke budgets is noise-prone (one scheduler
        // preemption can flip a few-ms comparison), so the gate takes the
        // best of up to three fresh measurements before failing — a real
        // regression to O(graph) copies fails all of them.
        let mut best = worst_speedup;
        for _ in 0..2 {
            if best >= min {
                break;
            }
            let g = uniform(cfg.edge_budget);
            let victims = sample_edges(&g, ops / 2, cfg.seed ^ 0x7A);
            let cow_s = run_deltas(&engine_for(&g, cfg.k, false), &victims, txn);
            let clone_s = run_deltas(&engine_for(&g, cfg.k, true), &victims, txn);
            best = best.max(clone_s / cow_s.max(1e-9));
            println!("cow-speedup re-measurement: {best:.2}x");
        }
        assert!(
            best >= min,
            "COW write path regressed: uniform-row cow speedup {best:.2}x < required {min}x \
             (best of 3) — a transaction is paying O(graph) copies again"
        );
        println!("cow-speedup assertion passed: {best:.2}x >= {min}x");
    }
}
