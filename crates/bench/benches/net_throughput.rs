//! Network front-end throughput: loopback round-trip serving versus
//! in-process serving, across client counts and the BATCH fast path.
//!
//! Expected shape: single-client wire qps trails in-process qps by the
//! per-request framing + syscall overhead; concurrent clients close most
//! of the gap (the worker pool overlaps parsing/evaluation with I/O);
//! one BATCH frame amortizes framing across the whole workload and lands
//! near in-process batch throughput.
//!
//! Knobs: the usual `CPQX_*` variables plus `CPQX_NET_CLIENTS`
//! (default 4) and `CPQX_NET_ROUNDS` (default 3 — workload repeats per
//! measurement, so cache hits are exercised).

use cpqx_bench::harness::workload_for;
use cpqx_bench::{env_parse, BenchConfig, Table};
use cpqx_engine::{BatchOptions, Engine, EngineOptions, ExecOptions};
use cpqx_graph::datasets::Dataset;
use cpqx_net::{Client, Server, ServerOptions};
use cpqx_query::ast::Template;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env();
    let clients: usize = env_parse("CPQX_NET_CLIENTS", 4);
    let rounds: usize = env_parse("CPQX_NET_ROUNDS", 3).max(1);

    let wire_col = format!("wire x{clients}[qps]");
    let mut table = Table::new(
        "net_throughput",
        &[
            "dataset",
            "queries",
            "in-proc[qps]",
            "exec rows[qps]",
            "exec csr[qps]",
            "wire x1[qps]",
            &wire_col,
            "batch[qps]",
            "hit rate",
        ],
    );

    for ds in [Dataset::Advogato, Dataset::StringHS] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let queries: Vec<_> =
            workload_for(&g, &Template::ALL, &cfg).into_iter().flat_map(|(_, qs)| qs).collect();
        let texts: Vec<String> = queries.iter().map(|q| q.to_text(&g)).collect();

        let (engine, _) = Engine::with_options(g, EngineOptions { k: cfg.k, ..Default::default() });
        let engine = Arc::new(engine);

        // In-process baseline: the engine's own batch path.
        let t0 = Instant::now();
        for _ in 0..rounds {
            engine.evaluate_batch(&queries, BatchOptions::default());
        }
        let inproc_qps = (rounds * queries.len()) as f64 / t0.elapsed().as_secs_f64();

        // Raw executor throughput on the served snapshot, CSR read faces
        // off versus on — the cache-free read-path comparison the wire
        // numbers sit on top of.
        let snap = engine.snapshot();
        snap.graph().ensure_csr();
        let mut exec_qps = [0.0f64; 2];
        let variants =
            [ExecOptions { csr_faces: false, ..ExecOptions::default() }, ExecOptions::default()];
        for (slot, options) in exec_qps.iter_mut().zip(variants) {
            let t0 = Instant::now();
            for _ in 0..rounds {
                for q in &queries {
                    std::hint::black_box(snap.index().evaluate_with_options(
                        snap.graph(),
                        q,
                        options,
                    ));
                }
            }
            *slot = (rounds * queries.len()) as f64 / t0.elapsed().as_secs_f64();
        }

        let server = Server::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerOptions { workers: clients.max(2), ..ServerOptions::default() },
        )
        .expect("bind");
        let addr = server.local_addr();

        // Single client, sequential round-trips. Dropped afterwards so
        // it neither occupies a server worker nor idles into the read
        // timeout during the later phases.
        let wire1_qps = {
            let mut c = Client::connect(addr).expect("connect");
            let t0 = Instant::now();
            for _ in 0..rounds {
                for t in &texts {
                    std::hint::black_box(c.query(t).expect("query").pairs.len());
                }
            }
            (rounds * texts.len()) as f64 / t0.elapsed().as_secs_f64()
        };

        // Concurrent clients, sharing the workload.
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..clients {
                let texts = &texts;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for round in 0..rounds {
                        for (i, t) in texts.iter().enumerate() {
                            if i % clients == (w + round) % clients {
                                std::hint::black_box(c.query(t).expect("query").pairs.len());
                            }
                        }
                    }
                });
            }
        });
        let wiren_qps = (rounds * texts.len()) as f64 / t0.elapsed().as_secs_f64();

        // One BATCH frame per round, on a fresh connection.
        let mut c = Client::connect(addr).expect("connect");
        let t0 = Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(c.batch(&texts).expect("batch").results.len());
        }
        let batch_qps = (rounds * texts.len()) as f64 / t0.elapsed().as_secs_f64();

        let stats = c.stats().expect("stats");
        table.row(vec![
            ds.name().to_string(),
            texts.len().to_string(),
            format!("{inproc_qps:.0}"),
            format!("{:.0}", exec_qps[0]),
            format!("{:.0}", exec_qps[1]),
            format!("{wire1_qps:.0}"),
            format!("{wiren_qps:.0}"),
            format!("{batch_qps:.0}"),
            format!("{:.1}%", stats.result_hit_rate() * 100.0),
        ]);
        drop(c);
        server.shutdown();
    }

    table.finish();
    println!(
        "\nInvariant check: batch qps should dominate single-request wire qps (framing is \
         amortized); concurrent wire qps should exceed single-client wire qps."
    );
}
