//! Table III: pruning power — the average number of class identifiers
//! (CPQx, iaCPQx) versus s-t pairs (iaPath) touched by the LOOKUPs of S
//! (square) queries. Smaller numbers mean more pruning; the paper reports
//! gaps of one to five orders of magnitude.

use cpqx_bench::harness::{interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;

fn lookup_volume_cpqx(idx: &cpqx_core::CpqxIndex, q: &Cpq) -> usize {
    idx.plan(q).lookup_seqs().iter().map(|s| idx.lookup(s).len()).sum()
}

fn lookup_volume_path(idx: &cpqx_pathindex::PathIndex, q: &Cpq) -> usize {
    idx.plan(q).lookup_seqs().iter().map(|s| idx.lookup(s).len()).sum()
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = Table::new("tab03_pruning_power", &["dataset", "CPQx", "iaCPQx", "iaPath"]);

    for ds in Dataset::REAL {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &[Template::S], &cfg);
        let queries = &workload[0].1;
        if queries.is_empty() {
            table.row(vec![ds.name().into(), "-".into(), "-".into(), "-".into()]);
            continue;
        }
        let interests = interests_from_queries(queries.iter(), cfg.k);

        let full_ok = !matches!(
            ds,
            Dataset::WebGoogle
                | Dataset::WikiTalk
                | Dataset::Yago
                | Dataset::CitPatents
                | Dataset::Wikidata
                | Dataset::Freebase
        );
        let cpqx_cell = if full_ok {
            let (e, _) = Engine::build(Method::Cpqx, &g, cfg.k, &interests);
            let idx = e.as_cpqx().unwrap();
            let avg: f64 = queries.iter().map(|q| lookup_volume_cpqx(idx, q)).sum::<usize>() as f64
                / queries.len() as f64;
            format!("{avg:.1}")
        } else {
            "-".to_string() // paper: index out of memory
        };
        let (e, _) = Engine::build(Method::IaCpqx, &g, cfg.k, &interests);
        let ia_idx = e.as_cpqx().unwrap();
        let ia_avg: f64 = queries.iter().map(|q| lookup_volume_cpqx(ia_idx, q)).sum::<usize>()
            as f64
            / queries.len() as f64;
        let (e, _) = Engine::build(Method::IaPath, &g, cfg.k, &interests);
        let path_idx = e.as_path().unwrap();
        let path_avg: f64 = queries.iter().map(|q| lookup_volume_path(path_idx, q)).sum::<usize>()
            as f64
            / queries.len() as f64;

        table.row(vec![
            ds.name().into(),
            cpqx_cell,
            format!("{ia_avg:.1}"),
            format!("{path_avg:.1}"),
        ]);
    }
    table.finish();
    println!("\nSmaller is better: class-id lookups (CPQx/iaCPQx) prune before touching pairs;");
    println!("iaPath must retrieve full s-t pair lists for the same lookups (Table III).");
}
