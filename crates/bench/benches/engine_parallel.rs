//! Criterion micro-benchmarks for the engine subsystem: sequential vs
//! sharded index build across shard counts, and cached vs uncached query
//! serving through the engine.
//!
//! The acceptance gate for the sharded builder — "measurable speedup with
//! ≥2 shards on a multi-core host" — is what the `build` group measures;
//! the `serving` group quantifies what the result cache buys on a
//! repeating workload.

use cpqx_bench::harness::workload_for;
use cpqx_bench::BenchConfig;
use cpqx_core::CpqxIndex;
use cpqx_engine::{build_sharded, BuildOptions, Engine};
use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_graph::Graph;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_graph() -> Graph {
    random_graph(&RandomGraphConfig::social(3_000, 14_000, 4, 20220509))
}

fn bench_build(c: &mut Criterion) {
    let g = bench_graph();
    let mut group = c.benchmark_group("build");
    group.bench_function("sequential", |b| b.iter(|| CpqxIndex::build(&g, 2)));
    for shards in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &s| {
            b.iter(|| build_sharded(&g, 2, BuildOptions { shards: Some(s), threads: None }));
        });
    }
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let g = bench_graph();
    let cfg = BenchConfig::from_env();
    let workload: Vec<Cpq> =
        workload_for(&g, &Template::ALL, &cfg).into_iter().flat_map(|(_, qs)| qs).collect();
    assert!(!workload.is_empty());
    let engine = Engine::build(g, 2);
    // Warm the caches once so "cached" measures steady-state hits.
    for q in &workload {
        engine.query(q);
    }
    let mut group = c.benchmark_group("serving");
    let mut i = 0;
    group.bench_function("cached", |b| {
        b.iter(|| {
            i = (i + 1) % workload.len();
            engine.query(&workload[i])
        })
    });
    let mut j = 0;
    group.bench_function("uncached", |b| {
        b.iter(|| {
            j = (j + 1) % workload.len();
            engine.query_uncached(&workload[j])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_serving);
criterion_main!(benches);
