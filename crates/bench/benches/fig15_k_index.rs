//! Fig. 15: impact of the path-length parameter k (1–4) on iaCPQx index
//! size (a) and construction time (b), across dataset stand-ins.
//!
//! Expected shape: both grow with k; the growth flattens where few longer
//! paths match the interests (the paper notes Freebase barely grows).

use cpqx_bench::harness::{fmt_bytes, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;

fn main() {
    let cfg = BenchConfig::from_env();
    let datasets = [
        Dataset::Robots,
        Dataset::Advogato,
        Dataset::BioGrid,
        Dataset::StringHS,
        Dataset::StringFC,
        Dataset::Youtube,
        Dataset::Yago,
        Dataset::Wikidata,
        Dataset::Freebase,
    ];
    let mut size_table =
        Table::new("fig15a_k_index_size", &["dataset", "k=1", "k=2", "k=3", "k=4"]);
    let mut time_table =
        Table::new("fig15b_k_index_time", &["dataset", "k=1", "k=2", "k=3", "k=4"]);

    for ds in datasets {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let mut size_row = vec![ds.name().to_string()];
        let mut time_row = vec![ds.name().to_string()];
        for k in 1..=4usize {
            let interests =
                interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), k);
            let (engine, t) = Engine::build(Method::IaCpqx, &g, k, &interests);
            size_row.push(fmt_bytes(engine.size_bytes().unwrap()));
            time_row.push(format!("{:.3}", t.as_secs_f64()));
        }
        size_table.row(size_row);
        time_table.row(time_row);
    }
    size_table.finish();
    time_table.finish();
}
