//! Fig. 8: impact of the interest-set size on iaCPQx query time, on the
//! YAGO stand-in. The X axis is the percentage of the workload's label
//! sequences registered as interests (100% → 0%).
//!
//! Expected shape: query times degrade gracefully as interests shrink —
//! conjunction templates lose their single-lookup classes and fall back to
//! split lookups plus joins; at 0% (only length-1 sequences indexed) times
//! approach Path-style chain evaluation.

use cpqx_bench::harness::{avg_query_time, interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;

fn main() {
    let cfg = BenchConfig::from_env();
    let g = Dataset::Yago.generate(cfg.edge_budget, cfg.seed);
    let workload = workload_for(&g, &Template::ALL, &cfg);
    let all_interests =
        interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);

    let mut headers = vec!["template"];
    let percentages = [100usize, 80, 60, 40, 20, 0];
    let cols: Vec<String> = percentages.iter().map(|p| format!("{p}%")).collect();
    headers.extend(cols.iter().map(|s| s.as_str()));
    let mut table = Table::new("fig08_interest_size", &headers);

    // Build one iaCPQx per interest percentage (longest sequences first,
    // mirroring "the percentage of label sequences in the set of queries").
    let engines: Vec<Engine> = percentages
        .iter()
        .map(|&p| {
            let keep = all_interests.len() * p / 100;
            let subset: Vec<_> = all_interests.iter().take(keep).copied().collect();
            Engine::build(Method::IaCpqx, &g, cfg.k, &subset).0
        })
        .collect();

    for (template, queries) in &workload {
        let mut row = vec![template.name().to_string()];
        for e in &engines {
            row.push(avg_query_time(e, &g, queries, &cfg).cell());
        }
        table.row(row);
    }
    table.finish();
}
