//! Ablation of the two executor design choices DESIGN.md calls out:
//!
//! * **class-level conjunction** (Prop. 4.1 / Example 4.3) — when off,
//!   conjunctions intersect materialized pair sets like the
//!   language-unaware index;
//! * **fused identity** (the paper's third optimization) — when off,
//!   identity filters materialized pairs instead of checking a per-class
//!   flag.
//!
//! Expected shape: disabling class-level conjunction costs the most on the
//! conjunction templates (T, S, TT, St) — that switch *is* the paper's
//! headline mechanism; disabling fused identity hurts the `∩ id` templates
//! (C2i, Ti, Si, St).

use cpqx_bench::harness::{avg_query_time, interests_from_queries, workload_for, Timing};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_core::exec::ExecOptions;
use cpqx_graph::datasets::Dataset;
use cpqx_query::ast::Template;
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

fn timed_with_options(
    idx: &cpqx_core::CpqxIndex,
    g: &cpqx_graph::Graph,
    queries: &[Cpq],
    cfg: &BenchConfig,
    options: ExecOptions,
) -> Timing {
    if queries.is_empty() {
        return Timing::Skipped;
    }
    let budget = Duration::from_millis(cfg.cell_budget_ms);
    let started = Instant::now();
    let mut total = Duration::ZERO;
    let mut n = 0u32;
    for q in queries {
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            std::hint::black_box(idx.evaluate_with_options(g, q, options));
            total += t0.elapsed();
            n += 1;
            if started.elapsed() > budget {
                return Timing::Timeout;
            }
        }
    }
    Timing::Avg(total.as_secs_f64() / n as f64)
}

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = Table::new(
        "ablation_ops",
        &["dataset", "template", "full", "no class-conj", "no fused-id", "neither"],
    );

    let on = ExecOptions::default();
    let variants = [
        on,
        ExecOptions { class_level_conjunction: false, ..on },
        ExecOptions { fused_identity: false, ..on },
        ExecOptions { class_level_conjunction: false, fused_identity: false, ..on },
    ];

    for ds in [Dataset::Robots, Dataset::EgoFacebook, Dataset::Advogato, Dataset::Epinions] {
        let g = ds.generate(cfg.edge_budget, cfg.seed);
        let workload = workload_for(&g, &Template::ALL, &cfg);
        let interests =
            interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);
        let (engine, _) = Engine::build(Method::Cpqx, &g, cfg.k, &interests);
        let idx = engine.as_cpqx().unwrap();
        // Sanity: ablations must not change answers.
        for (_, queries) in &workload {
            if let Some(q) = queries.first() {
                let expected = idx.evaluate(&g, q);
                for v in &variants[1..] {
                    assert_eq!(idx.evaluate_with_options(&g, q, *v), expected);
                }
            }
        }
        for (template, queries) in &workload {
            let mut row = vec![ds.name().to_string(), template.name().to_string()];
            for v in variants {
                row.push(timed_with_options(idx, &g, queries, &cfg, v).cell());
            }
            table.row(row);
        }
        // Reuse of `avg_query_time` keeps the "full" column comparable with
        // Fig. 6's measurements.
        let _ = avg_query_time;
    }
    table.finish();
}
