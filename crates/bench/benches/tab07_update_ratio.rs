//! Table VII: the index-size ratio after lazy updates on the Robots
//! stand-in — size after churning x% of edges (delete + reinsert) relative
//! to the freshly built index, for CPQx and iaCPQx; plus the same for 2–10
//! label-sequence updates on iaCPQx.
//!
//! Expected shape: ratios grow slowly with the update volume (the paper
//! reports 1.02–1.63 for 1–20% edge churn) — lazy maintenance never merges
//! classes, so fragmentation accumulates but stays modest.

use cpqx_bench::harness::{interests_from_queries, workload_for};
use cpqx_bench::{BenchConfig, Engine, Method, Table};
use cpqx_graph::datasets::Dataset;
use cpqx_graph::generate::sample_edges;
use cpqx_query::ast::Template;

fn churn_ratio(
    method: Method,
    g0: &cpqx_graph::Graph,
    cfg: &BenchConfig,
    interests: &[cpqx_graph::LabelSeq],
    percent: usize,
) -> f64 {
    let mut g = g0.clone();
    let (engine, _) = Engine::build(method, &g, cfg.k, interests);
    let mut idx = match engine {
        Engine::Index(i) => i,
        _ => unreachable!(),
    };
    let fresh_size = idx.size_bytes() as f64;
    let count = g.edge_count() * percent / 100;
    for (v, u, l) in sample_edges(&g, count, cfg.seed ^ 0xAB) {
        idx.delete_edge(&mut g, v, u, l);
        idx.insert_edge(&mut g, v, u, l);
    }
    idx.size_bytes() as f64 / fresh_size
}

fn main() {
    let cfg = BenchConfig::from_env();
    let g0 = Dataset::Robots.generate(cfg.edge_budget, cfg.seed);
    let workload = workload_for(&g0, &Template::ALL, &cfg);
    let interests = interests_from_queries(workload.iter().flat_map(|(_, qs)| qs.iter()), cfg.k);

    let ratios = [1usize, 2, 5, 10, 20];
    let mut headers: Vec<String> = vec!["index".into()];
    headers.extend(ratios.iter().map(|r| format!("{r}%")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("tab07a_edge_update_ratio", &headers_ref);
    for method in [Method::Cpqx, Method::IaCpqx] {
        let mut row = vec![method.name().to_string()];
        for &r in &ratios {
            row.push(format!("{:.3}", churn_ratio(method, &g0, &cfg, &interests, r)));
        }
        table.row(row);
    }
    table.finish();

    // Label-sequence churn on iaCPQx.
    let counts = [2usize, 4, 6, 8, 10];
    let mut headers: Vec<String> = vec!["index".into()];
    headers.extend(counts.iter().map(|c| format!("{c} seqs")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("tab07b_seq_update_ratio", &headers_ref);
    let long: Vec<_> = interests.iter().filter(|s| s.len() > 1).copied().collect();
    let mut row = vec!["iaCPQx".to_string()];
    for &c in &counts {
        let g = g0.clone();
        let (engine, _) = Engine::build(Method::IaCpqx, &g, cfg.k, &interests);
        let mut idx = match engine {
            Engine::Index(i) => i,
            _ => unreachable!(),
        };
        let fresh = idx.size_bytes() as f64;
        for seq in long.iter().cycle().take(c) {
            idx.delete_interest(seq);
            idx.insert_interest(&g, *seq);
        }
        row.push(format!("{:.3}", idx.size_bytes() as f64 / fresh));
    }
    table.row(row);
    table.finish();
}
