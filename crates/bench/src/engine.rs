//! The seven evaluation methods of Sec. VI under one interface.

use cpqx_core::CpqxIndex;
use cpqx_graph::{Graph, LabelSeq, Pair};
use cpqx_matcher::{TensorEngine, TurboEngine};
use cpqx_pathindex::PathIndex;
use cpqx_query::eval::BfsEngine;
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

/// The methods compared in the paper's experiments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// CPQx — the paper's CPQ-aware index (Sec. IV).
    Cpqx,
    /// iaCPQx — the interest-aware variant (Sec. V).
    IaCpqx,
    /// Path — the language-unaware path index \[14\].
    Path,
    /// iaPath — Path restricted to the interest sequences.
    IaPath,
    /// TurboHom++-style homomorphic subgraph matching \[26\].
    TurboHom,
    /// Tentris-style tensor/WCOJ engine \[6\].
    Tentris,
    /// Index-free breadth-first-search evaluation.
    Bfs,
}

impl Method {
    /// All seven methods, in the paper's legend order.
    pub const ALL: [Method; 7] = [
        Method::Cpqx,
        Method::IaCpqx,
        Method::Path,
        Method::IaPath,
        Method::TurboHom,
        Method::Tentris,
        Method::Bfs,
    ];

    /// The four index methods of Table IV.
    pub const INDEXES: [Method; 4] = [Method::Cpqx, Method::IaCpqx, Method::Path, Method::IaPath];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Cpqx => "CPQx",
            Method::IaCpqx => "iaCPQx",
            Method::Path => "Path",
            Method::IaPath => "iaPath",
            Method::TurboHom => "TurboHom++",
            Method::Tentris => "Tentris",
            Method::Bfs => "BFS",
        }
    }

    /// Whether the method needs an interest set at build time.
    pub fn is_interest_aware(&self) -> bool {
        matches!(self, Method::IaCpqx | Method::IaPath)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A built evaluation engine.
pub enum Engine {
    /// CPQx or iaCPQx.
    Index(CpqxIndex),
    /// Path or iaPath.
    PathIdx(PathIndex),
    /// TurboHom++ stand-in (no build phase).
    Turbo(TurboEngine),
    /// Tentris stand-in (no build phase).
    Tensor(TensorEngine),
    /// Index-free BFS (no build phase).
    Bfs(BfsEngine),
}

impl Engine {
    /// Builds the engine for `method`, returning it with its construction
    /// time (zero for the index-free methods — the paper's Table IV only
    /// reports construction for the four indexes).
    pub fn build(
        method: Method,
        g: &Graph,
        k: usize,
        interests: &[LabelSeq],
    ) -> (Engine, Duration) {
        let start = Instant::now();
        let engine = match method {
            Method::Cpqx => Engine::Index(CpqxIndex::build(g, k)),
            Method::IaCpqx => {
                Engine::Index(CpqxIndex::build_interest_aware(g, k, interests.iter().copied()))
            }
            Method::Path => Engine::PathIdx(PathIndex::build(g, k)),
            Method::IaPath => {
                Engine::PathIdx(PathIndex::build_interest_aware(g, k, interests.iter().copied()))
            }
            Method::TurboHom => Engine::Turbo(TurboEngine),
            Method::Tentris => Engine::Tensor(TensorEngine),
            Method::Bfs => Engine::Bfs(BfsEngine),
        };
        (engine, start.elapsed())
    }

    /// Evaluates a query to its full answer set.
    pub fn evaluate(&self, g: &Graph, q: &Cpq) -> Vec<Pair> {
        match self {
            Engine::Index(i) => i.evaluate(g, q),
            Engine::PathIdx(i) => i.evaluate(g, q),
            Engine::Turbo(e) => e.evaluate(g, q),
            Engine::Tensor(e) => e.evaluate(g, q),
            Engine::Bfs(e) => e.evaluate(g, q),
        }
    }

    /// Evaluates a query to its first answer (Fig. 7).
    pub fn evaluate_first(&self, g: &Graph, q: &Cpq) -> Option<Pair> {
        match self {
            Engine::Index(i) => i.evaluate_first(g, q),
            Engine::PathIdx(i) => i.evaluate_first(g, q),
            Engine::Turbo(e) => e.evaluate_first(g, q),
            Engine::Tensor(e) => e.evaluate_first(g, q),
            Engine::Bfs(e) => e.evaluate(g, q).first().copied(),
        }
    }

    /// Index size in bytes (`None` for index-free methods).
    pub fn size_bytes(&self) -> Option<usize> {
        match self {
            Engine::Index(i) => Some(i.size_bytes()),
            Engine::PathIdx(i) => Some(i.size_bytes()),
            _ => None,
        }
    }

    /// The CPQ-aware index, if this engine is one.
    pub fn as_cpqx(&self) -> Option<&CpqxIndex> {
        match self {
            Engine::Index(i) => Some(i),
            _ => None,
        }
    }

    /// The path index, if this engine is one.
    pub fn as_path(&self) -> Option<&PathIndex> {
        match self {
            Engine::PathIdx(i) => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn all_methods_build_and_agree() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let interests = vec![LabelSeq::from_slice(&[f.fwd(), f.fwd()])];
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        let expected = eval_reference(&g, &q);
        for m in Method::ALL {
            let (engine, build_time) = Engine::build(m, &g, 2, &interests);
            assert_eq!(engine.evaluate(&g, &q), expected, "{m}");
            let first = engine.evaluate_first(&g, &q).expect("non-empty");
            assert!(expected.contains(&first), "{m} first answer");
            // Only the four index methods report sizes / non-trivial builds.
            let is_index =
                matches!(m, Method::Cpqx | Method::IaCpqx | Method::Path | Method::IaPath);
            assert_eq!(engine.size_bytes().is_some(), is_index, "{m} size");
            let _ = build_time;
        }
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::ALL.len(), 7);
        assert_eq!(Method::INDEXES.len(), 4);
        assert!(Method::IaCpqx.is_interest_aware());
        assert!(!Method::Cpqx.is_interest_aware());
        assert_eq!(Method::TurboHom.name(), "TurboHom++");
    }

    #[test]
    fn accessors_expose_inner_indexes() {
        let g = generate::gex();
        let (e, _) = Engine::build(Method::Cpqx, &g, 2, &[]);
        assert!(e.as_cpqx().is_some());
        assert!(e.as_path().is_none());
        let (e, _) = Engine::build(Method::Path, &g, 2, &[]);
        assert!(e.as_path().is_some());
        assert!(e.as_cpqx().is_none());
    }
}
