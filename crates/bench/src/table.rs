//! Fixed-width table printing with TSV mirrors under `results/`.

use std::io::Write;
use std::path::PathBuf;

/// A simple experiment table: prints aligned columns to stdout and mirrors
/// the rows as TSV to `results/<name>.tsv` (best-effort — the TSV mirror is
/// skipped if the directory cannot be created).
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; `name` becomes the TSV file stem.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the table and writes the TSV mirror. Returns the mirror path
    /// if it was written.
    pub fn finish(&self) -> Option<PathBuf> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("\n== {} ==", self.name);
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            println!("{}", line(row));
        }
        self.write_tsv()
    }

    fn write_tsv(&self) -> Option<PathBuf> {
        let dir = results_dir()?;
        let path = dir.join(format!("{}.tsv", self.name));
        let mut f = std::fs::File::create(&path).ok()?;
        writeln!(f, "{}", self.headers.join("\t")).ok()?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t")).ok()?;
        }
        Some(path)
    }
}

/// The `results/` directory (workspace root when run via cargo, else cwd).
fn results_dir() -> Option<PathBuf> {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base.join("results");
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_mirrors() {
        let mut t = Table::new("unit_test_table", &["a", "b"]);
        t.row(vec!["1".into(), "hello".into()]);
        t.row(vec!["2".into(), "x".into()]);
        let path = t.finish();
        if let Some(p) = path {
            let content = std::fs::read_to_string(&p).unwrap();
            assert!(content.starts_with("a\tb\n"));
            assert!(content.contains("1\thello"));
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
