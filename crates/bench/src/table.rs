//! Fixed-width table printing with TSV + JSON mirrors under `results/`.

use std::io::Write;
use std::path::PathBuf;

/// A simple experiment table: prints aligned columns to stdout and mirrors
/// the rows as TSV to `results/<name>.tsv` plus machine-readable JSON to
/// `results/BENCH_<name>.json` (both best-effort — skipped if the
/// directory cannot be created). The JSON sibling is what perf-trajectory
/// tooling diffs across commits: one object per row, keyed by header,
/// with cells that parse as numbers emitted as JSON numbers.
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; `name` becomes the TSV file stem.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the table and writes the TSV + JSON mirrors. Returns the TSV
    /// mirror path if it was written.
    pub fn finish(&self) -> Option<PathBuf> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("\n== {} ==", self.name);
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            println!("{}", line(row));
        }
        self.write_json();
        self.write_tsv()
    }

    fn write_tsv(&self) -> Option<PathBuf> {
        let dir = results_dir()?;
        let path = dir.join(format!("{}.tsv", self.name));
        let mut f = std::fs::File::create(&path).ok()?;
        writeln!(f, "{}", self.headers.join("\t")).ok()?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t")).ok()?;
        }
        Some(path)
    }

    fn write_json(&self) -> Option<PathBuf> {
        let dir = results_dir()?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str("  \"rows\": [\n");
        for (ri, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(&self.headers[ci]), json_value(cell)));
            }
            out.push_str(if ri + 1 < self.rows.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).ok()?;
        Some(path)
    }
}

/// Escapes `s` as a JSON string literal (quotes, backslashes and control
/// characters; everything else passes through as UTF-8).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A cell as a JSON value: plain decimal numbers stay numbers, everything
/// else (units, `x` suffixes, names) becomes a string.
fn json_value(cell: &str) -> String {
    if cell.parse::<i64>().is_ok() {
        return cell.to_string();
    }
    match cell.parse::<f64>() {
        // `f64::parse` accepts "inf"/"NaN"/hex-ish forms JSON cannot
        // carry; restrict to plain decimal notation.
        Ok(v)
            if v.is_finite() && cell.chars().all(|c| c.is_ascii_digit() || ".-+eE".contains(c)) =>
        {
            cell.to_string()
        }
        _ => json_string(cell),
    }
}

/// The `results/` directory (workspace root when run via cargo, else cwd).
fn results_dir() -> Option<PathBuf> {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let dir = base.join("results");
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_mirrors() {
        let mut t = Table::new("unit_test_table", &["a", "b"]);
        t.row(vec!["1".into(), "hello".into()]);
        t.row(vec!["2".into(), "x".into()]);
        let path = t.finish();
        if let Some(p) = path {
            let content = std::fs::read_to_string(&p).unwrap();
            assert!(content.starts_with("a\tb\n"));
            assert!(content.contains("1\thello"));
            let json = p.with_file_name("BENCH_unit_test_table.json");
            let content = std::fs::read_to_string(&json).unwrap();
            assert!(content.contains("\"name\": \"unit_test_table\""));
            assert!(content.contains("{\"a\": 1, \"b\": \"hello\"}"));
            std::fs::remove_file(p).ok();
            std::fs::remove_file(json).ok();
        }
    }

    #[test]
    fn json_cells_distinguish_numbers_from_strings() {
        assert_eq!(json_value("42"), "42");
        assert_eq!(json_value("-1.5"), "-1.5");
        assert_eq!(json_value("3.10x"), "\"3.10x\"");
        assert_eq!(json_value("inf"), "\"inf\"");
        assert_eq!(json_value("NaN"), "\"NaN\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
