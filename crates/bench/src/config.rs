//! Environment-driven benchmark configuration.

/// Scaling knobs for all bench targets; see the crate docs for the
/// corresponding environment variables.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Maximum base edges per generated stand-in dataset.
    pub edge_budget: usize,
    /// Queries per template (the paper uses 10).
    pub queries_per_template: usize,
    /// Timing repetitions per query (averaged).
    pub reps: usize,
    /// Wall-clock budget per table cell, in milliseconds; a method
    /// exceeding it is reported as `timeout` (the paper used two hours).
    pub cell_budget_ms: u64,
    /// Index path-length parameter `k` (paper default: 2).
    pub k: usize,
    /// Master RNG seed.
    pub seed: u64,
}

/// Parses an environment variable, falling back to `default` when the
/// variable is unset or malformed (shared by the bench binaries' extra
/// knobs).
pub fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        BenchConfig {
            edge_budget: env_parse("CPQX_EDGE_BUDGET", 10_000),
            queries_per_template: env_parse("CPQX_QUERIES", 5),
            reps: env_parse("CPQX_REPS", 3),
            cell_budget_ms: env_parse("CPQX_CELL_MS", 2_000),
            k: env_parse("CPQX_K", 2),
            seed: env_parse("CPQX_SEED", 20220509), // ICDE 2022 opening day
        }
    }
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self::from_env()
    }
}
