//! Workload preparation and timing utilities shared by all bench targets.

use crate::config::BenchConfig;
use crate::engine::Engine;
use cpqx_graph::{Graph, LabelSeq};
use cpqx_query::ast::Template;
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::Cpq;
use std::time::{Duration, Instant};

/// Result of timing one table cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Timing {
    /// Average seconds per query.
    Avg(f64),
    /// The cell exceeded its wall-clock budget (paper: "did not finish
    /// within two hours").
    Timeout,
    /// The method is not run on this dataset (paper: out of memory / "-").
    Skipped,
}

impl Timing {
    /// Seconds if measured.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Timing::Avg(s) => Some(*s),
            _ => None,
        }
    }

    /// Paper-style cell text (seconds in scientific notation).
    pub fn cell(&self) -> String {
        match self {
            Timing::Avg(s) => format!("{s:.3e}"),
            Timing::Timeout => "timeout".to_string(),
            Timing::Skipped => "-".to_string(),
        }
    }
}

/// Generates the paper's workload: `queries_per_template` filtered random
/// instantiations per template (Sec. VI, "Queries").
pub fn workload_for(
    g: &Graph,
    templates: &[Template],
    cfg: &BenchConfig,
) -> Vec<(Template, Vec<Cpq>)> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, cfg.seed);
    templates.iter().map(|&t| (t, gen.queries(t, cfg.queries_per_template, &probe))).collect()
}

/// Derives the interest set from a workload — the paper specifies "all
/// label sequences in the set of queries as the interests", prefix-split
/// to length ≤ k.
pub fn interests_from_queries<'a>(
    queries: impl IntoIterator<Item = &'a Cpq>,
    k: usize,
) -> Vec<LabelSeq> {
    let mut seqs = Vec::new();
    for q in queries {
        for run in q.label_runs() {
            seqs.push(LabelSeq::from_slice(&run[..run.len().min(cpqx_graph::MAX_SEQ_LEN)]));
        }
    }
    cpqx_core::normalize_interests(seqs, k).into_iter().collect()
}

/// Times the average query latency of `engine` over `queries`, respecting
/// the cell budget. Returns [`Timing::Timeout`] if the budget is exceeded
/// before all queries complete, [`Timing::Skipped`] on an empty workload.
pub fn avg_query_time(engine: &Engine, g: &Graph, queries: &[Cpq], cfg: &BenchConfig) -> Timing {
    if queries.is_empty() {
        return Timing::Skipped;
    }
    let budget = Duration::from_millis(cfg.cell_budget_ms);
    let started = Instant::now();
    let mut total = Duration::ZERO;
    let mut measured = 0u32;
    for q in queries {
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            let result = engine.evaluate(g, q);
            total += t0.elapsed();
            std::hint::black_box(result);
            measured += 1;
            if started.elapsed() > budget {
                return Timing::Timeout;
            }
        }
    }
    Timing::Avg(total.as_secs_f64() / measured as f64)
}

/// Times a single closure, returning seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Human-readable byte size (paper's Table IV uses B/M/G).
pub fn fmt_bytes(b: usize) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.2}G", b / (K * K * K))
    } else if b >= K * K {
        format!("{:.2}M", b / (K * K))
    } else if b >= K {
        format!("{:.2}K", b / K)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;

    #[test]
    fn workload_respects_counts() {
        let g = generate::gex();
        let mut cfg = BenchConfig::from_env();
        cfg.queries_per_template = 3;
        cfg.seed = 1;
        let w = workload_for(&g, &[Template::T, Template::C2], &cfg);
        assert_eq!(w.len(), 2);
        assert!(w.iter().all(|(_, qs)| qs.len() <= 3));
        assert!(w.iter().any(|(_, qs)| !qs.is_empty()));
    }

    #[test]
    fn interests_are_normalized() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let q = Cpq::chain(&[f.fwd(), f.fwd(), f.fwd(), f.fwd()]);
        let ints = interests_from_queries([&q], 2);
        assert!(ints.iter().all(|s| s.len() <= 2));
        assert!(!ints.is_empty());
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00K");
        assert!(fmt_bytes(3 * 1024 * 1024).ends_with('M'));
        assert!(fmt_bytes(5 * 1024 * 1024 * 1024).ends_with('G'));
    }

    #[test]
    fn timing_cells() {
        assert_eq!(Timing::Skipped.cell(), "-");
        assert_eq!(Timing::Timeout.cell(), "timeout");
        assert!(Timing::Avg(1.5e-4).cell().contains('e'));
        assert_eq!(Timing::Avg(2.0).seconds(), Some(2.0));
        assert_eq!(Timing::Timeout.seconds(), None);
    }
}
