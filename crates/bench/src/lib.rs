//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. VI).
//!
//! Each bench target under `benches/` is a `harness = false` binary that
//! prints the paper's rows/series to stdout and mirrors them as TSV under
//! `results/`. Absolute numbers differ from the paper's testbed (synthetic
//! stand-in datasets, different hardware — see EXPERIMENTS.md); the harness
//! reproduces the *shape*: which method wins per template, pruning-power
//! gaps, size orderings, and k/interest behaviour.
//!
//! Scaling knobs (environment variables):
//!
//! * `CPQX_EDGE_BUDGET` — max base edges per generated dataset (default
//!   10 000; raise for closer-to-paper scales),
//! * `CPQX_QUERIES` — queries per template (paper: 10; default 5),
//! * `CPQX_REPS` — timing repetitions per query (default 3),
//! * `CPQX_CELL_MS` — wall-clock budget per table cell before a method is
//!   reported as timed out (default 2 000 ms; the paper used 2 h),
//! * `CPQX_K` — index path-length parameter (default 2, as in the paper).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
pub mod harness;
pub mod table;

pub use config::{env_parse, BenchConfig};
pub use engine::{Engine, Method};
pub use harness::{avg_query_time, interests_from_queries, workload_for, Timing};
pub use table::Table;
