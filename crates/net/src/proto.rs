//! The cpqx wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the wire is one **frame**: a 4-byte big-endian payload
//! length followed by the payload. The first payload byte is the opcode;
//! the rest is the opcode's body, encoded with the primitives below
//! (big-endian integers, `u32`-length-prefixed UTF-8 strings,
//! `u32`-count-prefixed lists). A connection starts with a handshake —
//! the client sends [`Request::Hello`] carrying the [`MAGIC`] bytes and
//! its protocol version, the server answers [`Response::HelloAck`] or an
//! [`ErrorCode::UnsupportedVersion`] error frame — after which requests
//! may be pipelined: the server answers frames strictly in arrival order,
//! so a client may write several requests before reading any response.
//!
//! Queries travel as CPQ *text* (the [`cpqx_query::parse_cpq`] syntax)
//! and are resolved against the label table of the snapshot that serves
//! them; answers travel as packed [`Pair`] words plus the epoch of the
//! snapshot they were evaluated on, so a client can correlate every
//! answer with one graph version even while the server applies
//! maintenance. Malformed queries come back as typed error frames
//! ([`ErrorCode::Parse`] / [`ErrorCode::UnknownLabel`]) carrying the byte
//! position reported by the parser.
//!
//! Codec functions ([`encode_request`]/[`decode_request`],
//! [`encode_response`]/[`decode_response`]) are pure byte-slice
//! transformations; [`read_frame`]/[`write_frame`] do the I/O. Decoding
//! never panics on adversarial input — every failure is a typed
//! [`DecodeError`] — and frames above the caller's size bound are
//! rejected before any allocation ([`FrameError::TooLarge`]).
//!
//! See `PROTOCOL.md` at the repository root for the normative frame
//! layout tables.

use cpqx_graph::Pair;
use cpqx_obs::{HistogramSnapshot, Op as ObsOp, Span, Stage, Trace, TraceKind};
use cpqx_query::{ParseError, ParseErrorKind};
use std::io::{self, Read, Write};

/// Handshake magic carried by the HELLO frame (`b"CPQX"`).
pub const MAGIC: [u8; 4] = *b"CPQX";

/// The protocol version this build speaks. The handshake requires an
/// exact match (pre-release protocol: no cross-version compatibility
/// promise). Version 2 added the typed DELTA/DELTA_ACK frames and
/// extended the STATS report with maintenance counters; version 3
/// extended STATS again with the copy-on-write sharing gauges
/// (`cow_chunks_copied` / `cow_chunks_shared`); version 4 appended the
/// durability gauges (`wal_appends` / `wal_bytes` / `snapshots_written`
/// / `snapshot_chunks_skipped`); version 5 added the METRICS /
/// METRICS_RESULT frames (per-opcode and per-stage latency histograms,
/// the slow-query ring, and observed-workload key counts); version 6
/// extended STATS with the front-end counters it silently dropped
/// (`metrics_requests` / `rejected_connections`), added the
/// `open_connections` gauge to the METRICS net counters, the event-loop
/// server stages to the METRICS stage histograms, and the
/// [`ErrorCode::Busy`] / [`ErrorCode::Timeout`] error codes.
pub const PROTOCOL_VERSION: u16 = 6;

/// Default bound on accepted payload sizes (16 MiB). Servers apply it to
/// requests, clients to responses; both sides make it configurable.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

// Request opcodes (client → server).
const OP_HELLO: u8 = 0x01;
const OP_PING: u8 = 0x02;
const OP_QUERY: u8 = 0x03;
const OP_BATCH: u8 = 0x04;
const OP_UPDATE: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_DELTA: u8 = 0x07;
const OP_METRICS: u8 = 0x08;

// Response opcodes (server → client): request opcode | 0x80.
const OP_HELLO_ACK: u8 = 0x81;
const OP_PONG: u8 = 0x82;
const OP_RESULT: u8 = 0x83;
const OP_BATCH_RESULT: u8 = 0x84;
const OP_UPDATE_ACK: u8 = 0x85;
const OP_STATS_RESULT: u8 = 0x86;
const OP_DELTA_ACK: u8 = 0x87;
const OP_METRICS_RESULT: u8 = 0x88;
const OP_ERROR: u8 = 0xFF;

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Handshake opener: magic + the client's protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Evaluate one CPQ, given in the text syntax of
    /// [`cpqx_query::parse_cpq`].
    Query(String),
    /// Evaluate several CPQs against one consistent snapshot.
    Batch(Vec<String>),
    /// Insert or delete one base edge — the legacy opaque update form,
    /// served as a one-op delta transaction since protocol 2.
    Update {
        /// `true` inserts the edge, `false` deletes it.
        insert: bool,
        /// Source vertex id.
        src: u32,
        /// Target vertex id.
        dst: u32,
        /// Base label name, resolved against the current snapshot.
        label: String,
    },
    /// Fetch the server's statistics report.
    Stats,
    /// Apply an atomic typed delta transaction (protocol ≥ 2): every op
    /// lands in one engine write transaction, acknowledged with per-op
    /// outcomes by [`Response::DeltaAck`].
    Delta(Vec<WireOp>),
    /// Fetch the server's observability report (protocol ≥ 5):
    /// per-opcode and per-stage latency histograms, net request
    /// counters, the slow-query ring, and observed-workload key counts.
    Metrics,
}

/// One typed maintenance op inside a [`Request::Delta`] frame. Labels
/// travel as names and are resolved against the snapshot current when
/// the server applies the transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// Insert the base edge `(src, dst, label)`.
    InsertEdge {
        /// Source vertex id.
        src: u32,
        /// Target vertex id.
        dst: u32,
        /// Base label name.
        label: String,
    },
    /// Delete the base edge `(src, dst, label)`.
    DeleteEdge {
        /// Source vertex id.
        src: u32,
        /// Target vertex id.
        dst: u32,
        /// Base label name.
        label: String,
    },
    /// Relabel the base edge `(src, dst, from)` to `to`.
    ChangeEdgeLabel {
        /// Source vertex id.
        src: u32,
        /// Target vertex id.
        dst: u32,
        /// Current base label name.
        from: String,
        /// New base label name.
        to: String,
    },
    /// Add an isolated vertex; its id comes back as
    /// [`WireOutcome::VertexAdded`] and later ops of the same delta may
    /// reference it.
    ///
    /// The wire has no symbolic reference for a not-yet-allocated id,
    /// so a later op can only name it by *predicting* the id (the
    /// vertex count at apply time). That prediction is reliable only
    /// for a sole writer: under concurrent writers another delta may
    /// allocate the predicted id first, silently wiring your edges to
    /// *its* vertex. Multi-writer clients must treat the id in the ack
    /// as authoritative and send dependent edges in a follow-up delta.
    AddVertex {
        /// Display name of the new vertex.
        name: String,
    },
    /// Remove all edges incident to a vertex (the id stays allocated).
    DeleteVertex {
        /// The vertex id.
        vertex: u32,
    },
    /// iaCPQx only: register an interest label sequence.
    InsertInterest {
        /// The sequence, one direction-aware label per step.
        seq: Vec<WireSeqLabel>,
    },
    /// iaCPQx only: drop an interest label sequence.
    DeleteInterest {
        /// The sequence, one direction-aware label per step.
        seq: Vec<WireSeqLabel>,
    },
}

/// One step of a wire-encoded interest sequence: a base label name plus
/// a traversal direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSeqLabel {
    /// `true` for the inverse direction (`ℓ⁻¹`).
    pub inverse: bool,
    /// Base label name.
    pub label: String,
}

/// What one op of an acknowledged delta did (see
/// `cpqx_engine::OpOutcome`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// The op changed the graph/index.
    Applied,
    /// The op was valid but changed nothing.
    Noop,
    /// An `AddVertex` op allocated this vertex id.
    VertexAdded(u32),
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted at the given version.
    HelloAck {
        /// The version the connection will speak.
        version: u16,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Query`].
    Result {
        /// Epoch of the snapshot the query was evaluated on.
        epoch: u64,
        /// The sorted, deduplicated answer set.
        pairs: Vec<Pair>,
    },
    /// Answer to [`Request::Batch`]: per-query answers in request order,
    /// all evaluated on one snapshot.
    BatchResult {
        /// Epoch of the snapshot every answer reflects.
        epoch: u64,
        /// Per-query answer sets, in request order.
        results: Vec<Vec<Pair>>,
    },
    /// Answer to [`Request::Update`].
    UpdateAck {
        /// Whether the update changed the graph (`false` for inserting
        /// an existing edge or deleting a missing one).
        applied: bool,
        /// The engine epoch after the update.
        epoch: u64,
    },
    /// Answer to [`Request::Stats`] (boxed: at 31 gauges the
    /// payload would otherwise dominate every `Response`'s size).
    Stats(Box<WireStats>),
    /// Answer to [`Request::Delta`]: the transaction committed as one
    /// snapshot install (or changed nothing), with per-op outcomes in op
    /// order. Rejected deltas come back as [`ErrorCode::BadUpdate`]
    /// error frames instead, naming the offending op.
    DeltaAck {
        /// The engine epoch whose snapshot reflects the whole
        /// transaction.
        epoch: u64,
        /// Whether the fragmentation threshold triggered a defragmenting
        /// rebuild inside this transaction.
        rebuilt: bool,
        /// Per-op outcomes, in op order.
        outcomes: Vec<WireOutcome>,
    },
    /// Answer to [`Request::Metrics`] (protocol ≥ 5; boxed — the
    /// histograms and slow-query ring dominate every other response's
    /// size).
    Metrics(Box<WireMetrics>),
    /// Any request can fail with a typed error frame.
    Error(WireError),
}

/// Typed failure classes carried by error frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Handshake version (or magic) not accepted.
    UnsupportedVersion,
    /// The frame payload did not decode as a known message.
    BadFrame,
    /// The opcode byte is not assigned.
    UnknownOpcode,
    /// The query text is not a well-formed CPQ.
    Parse,
    /// The query is well-formed but names a label the graph lacks.
    UnknownLabel,
    /// The update names an unknown label or an out-of-range vertex.
    BadUpdate,
    /// The server failed internally.
    Internal,
    /// The server is at its connection capacity (protocol ≥ 6): sent
    /// best-effort before an over-capacity connection is closed, so
    /// clients can tell overload from a crashed server.
    Busy,
    /// The connection timed out mid-frame (protocol ≥ 6): the stream is
    /// desynchronized and the server drops it after this final frame. An
    /// *idle* timeout — no partial frame buffered — closes cleanly
    /// without an error frame.
    Timeout,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::UnsupportedVersion => 1,
            ErrorCode::BadFrame => 2,
            ErrorCode::UnknownOpcode => 3,
            ErrorCode::Parse => 4,
            ErrorCode::UnknownLabel => 5,
            ErrorCode::BadUpdate => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Busy => 8,
            ErrorCode::Timeout => 9,
        }
    }

    fn from_u8(b: u8) -> Result<Self, DecodeError> {
        Ok(match b {
            1 => ErrorCode::UnsupportedVersion,
            2 => ErrorCode::BadFrame,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::Parse,
            5 => ErrorCode::UnknownLabel,
            6 => ErrorCode::BadUpdate,
            7 => ErrorCode::Internal,
            8 => ErrorCode::Busy,
            9 => ErrorCode::Timeout,
            _ => return Err(DecodeError::BadValue("error code")),
        })
    }
}

/// An error frame: code, optional byte position (for parse errors) and a
/// human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What class of failure this is.
    pub code: ErrorCode,
    /// Byte offset into the offending query text, when meaningful.
    pub position: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Convenience constructor for position-less errors.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError { code, position: None, message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.position {
            Some(p) => write!(f, "{:?} at byte {}: {}", self.code, p, self.message),
            None => write!(f, "{:?}: {}", self.code, self.message),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ParseError> for WireError {
    fn from(e: ParseError) -> Self {
        WireError {
            code: match e.kind {
                ParseErrorKind::Syntax => ErrorCode::Parse,
                ParseErrorKind::UnknownLabel => ErrorCode::UnknownLabel,
            },
            position: Some(e.position.min(u32::MAX as usize) as u32),
            message: e.message,
        }
    }
}

/// The statistics report the STATS frame carries: the engine's
/// [`cpqx_engine::StatsReport`] plus the front-end's per-opcode request
/// counters, flattened into fixed-width fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Current engine epoch.
    pub epoch: u64,
    /// Queries served by the engine (cached or not).
    pub queries: u64,
    /// Result-cache hits.
    pub result_hits: u64,
    /// Result-cache misses (executed queries).
    pub result_misses: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plans lowered fresh.
    pub plan_misses: u64,
    /// Snapshots installed by maintenance.
    pub snapshot_swaps: u64,
    /// Result-cache entries dropped by snapshot swaps.
    pub invalidated_results: u64,
    /// Results refused by the cache-admission policy.
    pub rejected_admissions: u64,
    /// Median engine query latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile engine query latency, microseconds.
    pub p99_us: u64,
    /// Delta transactions the engine has committed (wire DELTA and
    /// UPDATE frames, plus in-process writers).
    pub delta_transactions: u64,
    /// Individual delta ops applied via lazy maintenance (no-ops
    /// excluded).
    pub lazy_update_ops: u64,
    /// Full index rebuilds (manual + automatic).
    pub rebuilds: u64,
    /// Rebuilds triggered by the fragmentation threshold.
    pub auto_rebuilds: u64,
    /// Copy-on-write chunks copied by write transactions (cumulative,
    /// graph + index): the O(changed) work the snapshot-per-write path
    /// actually paid.
    pub cow_chunks_copied: u64,
    /// Copy-on-write chunks still shared with the replaced snapshot
    /// after each write transaction (cumulative).
    pub cow_chunks_shared: u64,
    /// Allocated class slots of the serving index (tombstones included).
    pub class_slots: u64,
    /// Class count of the full build the serving index descends from.
    pub baseline_classes: u64,
    /// PING requests served.
    pub ping_requests: u64,
    /// QUERY requests served.
    pub query_requests: u64,
    /// BATCH requests served.
    pub batch_requests: u64,
    /// UPDATE requests served.
    pub update_requests: u64,
    /// DELTA requests served.
    pub delta_requests: u64,
    /// STATS requests served (includes the one reporting).
    pub stats_requests: u64,
    /// METRICS requests served (protocol ≥ 6 — tracked since protocol 5
    /// but dropped from the STATS frame until then).
    pub metrics_requests: u64,
    /// Error frames the server has sent.
    pub error_responses: u64,
    /// Connections the server has accepted and served.
    pub connections: u64,
    /// Connections refused because the server was at capacity
    /// (protocol ≥ 6 — tracked since protocol 1 but dropped from the
    /// STATS frame until then).
    pub rejected_connections: u64,
    /// Delta transactions appended to the write-ahead log (zero when the
    /// server runs without a durability layer).
    pub wal_appends: u64,
    /// Total bytes (payload + framing) those WAL appends wrote.
    pub wal_bytes: u64,
    /// Snapshot checkpoints persisted by the WAL-bytes trigger.
    pub snapshots_written: u64,
    /// Chunk records those checkpoints skipped as unchanged — the
    /// incremental-snapshot savings gauge.
    pub snapshot_chunks_skipped: u64,
}

impl WireStats {
    /// Result-cache hit rate, `hits / (hits + misses)`.
    pub fn result_hit_rate(&self) -> f64 {
        let total = self.result_hits + self.result_misses;
        if total == 0 {
            0.0
        } else {
            self.result_hits as f64 / total as f64
        }
    }

    /// Total requests served across all opcodes.
    pub fn total_requests(&self) -> u64 {
        self.ping_requests
            + self.query_requests
            + self.batch_requests
            + self.update_requests
            + self.delta_requests
            + self.stats_requests
            + self.metrics_requests
    }

    /// Current fragmentation ratio of the serving index,
    /// `class_slots / baseline_classes` (0.0 when unreported).
    pub fn fragmentation_ratio(&self) -> f64 {
        if self.baseline_classes == 0 {
            0.0
        } else {
            self.class_slots as f64 / self.baseline_classes as f64
        }
    }
}

/// The front-end request counters carried inside [`WireMetrics`] —
/// the wire form of [`crate::NetStats`] plus the METRICS opcode's own
/// counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireNetCounters {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections closed because the accept queue was full.
    pub rejected_connections: u64,
    /// PING requests served.
    pub ping_requests: u64,
    /// QUERY requests served.
    pub query_requests: u64,
    /// BATCH requests served.
    pub batch_requests: u64,
    /// UPDATE requests served.
    pub update_requests: u64,
    /// DELTA requests served.
    pub delta_requests: u64,
    /// STATS requests served.
    pub stats_requests: u64,
    /// METRICS requests served (includes the one reporting).
    pub metrics_requests: u64,
    /// Error frames sent.
    pub error_responses: u64,
    /// Connections open right now (a gauge, not a counter; protocol
    /// ≥ 6). With the event-driven core an open idle connection costs
    /// buffers rather than a parked thread, so this may legitimately
    /// dwarf the worker count.
    pub open_connections: u64,
}

/// The observability report the METRICS frame carries (protocol ≥ 5):
/// per-opcode and per-stage latency histograms in the sparse
/// log-bucketed form of [`HistogramSnapshot`], the front-end's request
/// counters, the slow-query ring, and the canonical-key workload counts
/// that feed index advisor tooling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Current engine epoch.
    pub epoch: u64,
    /// Per-opcode latency histograms, tag order; histograms with no
    /// samples are omitted.
    pub ops: Vec<(ObsOp, HistogramSnapshot)>,
    /// Per-stage latency histograms, tag order; histograms with no
    /// samples are omitted.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
    /// The server's per-opcode request counters.
    pub net: WireNetCounters,
    /// Slow-query ring contents, oldest first.
    pub slow: Vec<Trace>,
    /// Slow queries observed in total (entries evicted from the ring
    /// included).
    pub slow_total: u64,
    /// Canonical-key workload counts, most frequent first.
    pub workload: Vec<(String, u64)>,
    /// Distinct canonical keys not counted because the workload table
    /// was full.
    pub workload_dropped: u64,
}

impl WireMetrics {
    /// The latency histogram recorded for `op` (`None` if no traffic
    /// landed under that opcode).
    pub fn op_histogram(&self, op: ObsOp) -> Option<&HistogramSnapshot> {
        self.ops.iter().find(|(o, _)| *o == op).map(|(_, h)| h)
    }

    /// The latency histogram recorded for `stage` (`None` if the stage
    /// never ran).
    pub fn stage_histogram(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.stages.iter().find(|(s, _)| *s == stage).map(|(_, h)| h)
    }
}

/// Why a payload failed to decode. Strictly recoverable: the frame
/// boundary is intact, so a server can answer with an error frame and
/// keep the connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the message did.
    Truncated,
    /// Bytes remained after the message ended.
    Trailing,
    /// The opcode byte is not assigned.
    UnknownOpcode(u8),
    /// A HELLO frame without the [`MAGIC`] bytes.
    BadMagic,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field held an out-of-domain value (context in the payload).
    BadValue(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::Trailing => write!(f, "trailing bytes after message"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadMagic => write!(f, "bad handshake magic"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            DecodeError::BadValue(what) => write!(f, "out-of-domain value for {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        let code = match e {
            DecodeError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
            DecodeError::BadMagic => ErrorCode::UnsupportedVersion,
            _ => ErrorCode::BadFrame,
        };
        WireError::new(code, e.to_string())
    }
}

// ---------------------------------------------------------------- codec --

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[Pair]) {
    put_u32(out, pairs.len() as u32);
    for p in pairs {
        put_u64(out, p.0);
    }
}

/// Bounds-checked big-endian reader over a payload slice.
struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated)?;
        let s = self.buf.get(self.at..end).ok_or(DecodeError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    /// `take(N)` as a fixed array; the length mismatch arm is
    /// unreachable but still surfaces as `Truncated` rather than a
    /// panic.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        <[u8; N]>::try_from(self.take(N)?).map_err(|_| DecodeError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let [b] = self.take_arr()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take_arr()?))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take_arr()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take_arr()?))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::BadValue("bool")),
        }
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn op(&mut self) -> Result<WireOp, DecodeError> {
        Ok(match self.u8()? {
            OPTAG_INSERT_EDGE => {
                WireOp::InsertEdge { src: self.u32()?, dst: self.u32()?, label: self.str()? }
            }
            OPTAG_DELETE_EDGE => {
                WireOp::DeleteEdge { src: self.u32()?, dst: self.u32()?, label: self.str()? }
            }
            OPTAG_CHANGE_EDGE_LABEL => WireOp::ChangeEdgeLabel {
                src: self.u32()?,
                dst: self.u32()?,
                from: self.str()?,
                to: self.str()?,
            },
            OPTAG_ADD_VERTEX => WireOp::AddVertex { name: self.str()? },
            OPTAG_DELETE_VERTEX => WireOp::DeleteVertex { vertex: self.u32()? },
            OPTAG_INSERT_INTEREST => WireOp::InsertInterest { seq: self.seq()? },
            OPTAG_DELETE_INTEREST => WireOp::DeleteInterest { seq: self.seq()? },
            _ => return Err(DecodeError::BadValue("delta op tag")),
        })
    }

    fn seq(&mut self) -> Result<Vec<WireSeqLabel>, DecodeError> {
        let n = self.u8()? as usize;
        // Sequences are bounded structurally (they must fit a LabelSeq),
        // so a hostile count is rejected before any resolution work.
        if n > cpqx_graph::MAX_SEQ_LEN {
            return Err(DecodeError::BadValue("interest sequence length"));
        }
        (0..n).map(|_| Ok(WireSeqLabel { inverse: self.bool()?, label: self.str()? })).collect()
    }

    fn outcome(&mut self) -> Result<WireOutcome, DecodeError> {
        Ok(match self.u8()? {
            0 => WireOutcome::Noop,
            1 => WireOutcome::Applied,
            2 => WireOutcome::VertexAdded(self.u32()?),
            _ => return Err(DecodeError::BadValue("op outcome")),
        })
    }

    fn pairs(&mut self) -> Result<Vec<Pair>, DecodeError> {
        let n = self.u32()? as usize;
        // The count must be consistent with the remaining payload before
        // any allocation, so a hostile length cannot balloon memory (and
        // the 8×n product is overflow-checked, unlike the old `n * 8`).
        if self_inconsistent_count(n, 8, self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        (0..n).map(|_| self.u64().map(Pair)).collect()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn hist(&mut self) -> Result<HistogramSnapshot, DecodeError> {
        let total = self.u64()?;
        let sum = self.u64()?;
        let max = self.u64()?;
        let n = self.u16()? as usize;
        // Each non-zero bucket is (u16 index, u64 count) = 10 bytes.
        if self_inconsistent_count(n, 10, self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        let mut nonzero = Vec::with_capacity(n);
        for _ in 0..n {
            nonzero.push((self.u16()?, self.u64()?));
        }
        // from_parts rejects out-of-range bucket indices and count
        // overflow — both only reachable from hostile payloads.
        HistogramSnapshot::from_parts(total, sum, max, &nonzero)
            .ok_or(DecodeError::BadValue("histogram bucket"))
    }

    fn trace(&mut self) -> Result<Trace, DecodeError> {
        let kind = TraceKind::from_u8(self.u8()?).ok_or(DecodeError::BadValue("trace kind"))?;
        let key = self.str()?;
        let epoch = self.u64()?;
        let total_us = self.u64()?;
        let n = self.u16()? as usize;
        // Each span is (u8 stage, u64 start, u64 dur, u8 depth) = 18 bytes.
        if self_inconsistent_count(n, 18, self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            let stage = Stage::from_u8(self.u8()?).ok_or(DecodeError::BadValue("span stage"))?;
            spans.push(Span {
                stage,
                start_us: self.u64()?,
                dur_us: self.u64()?,
                depth: self.u8()?,
            });
        }
        Ok(Trace { kind, key, epoch, total_us, spans })
    }

    fn metrics(&mut self) -> Result<WireMetrics, DecodeError> {
        let epoch = self.u64()?;
        let mut ops = Vec::new();
        for _ in 0..self.u8()? {
            let op = ObsOp::from_u8(self.u8()?).ok_or(DecodeError::BadValue("metrics op tag"))?;
            ops.push((op, self.hist()?));
        }
        let mut stages = Vec::new();
        for _ in 0..self.u8()? {
            let stage =
                Stage::from_u8(self.u8()?).ok_or(DecodeError::BadValue("metrics stage tag"))?;
            stages.push((stage, self.hist()?));
        }
        let mut fields = [0u64; NET_COUNTER_FIELDS];
        for f in fields.iter_mut() {
            *f = self.u64()?;
        }
        let slow_total = self.u64()?;
        let nslow = self.u16()? as usize;
        // Smallest trace on the wire: tag + empty key + epoch + total +
        // an empty span count.
        if self_inconsistent_count(nslow, 23, self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        let mut slow = Vec::with_capacity(nslow);
        for _ in 0..nslow {
            slow.push(self.trace()?);
        }
        let workload_dropped = self.u64()?;
        let nw = self.u32()? as usize;
        // Smallest workload entry: empty string (u32 len) + u64 count.
        if self_inconsistent_count(nw, 12, self.remaining()) {
            return Err(DecodeError::Truncated);
        }
        let mut workload = Vec::with_capacity(nw);
        for _ in 0..nw {
            let key = self.str()?;
            workload.push((key, self.u64()?));
        }
        Ok(WireMetrics {
            epoch,
            ops,
            stages,
            net: net_counters_from_fields(fields),
            slow,
            slow_total,
            workload,
            workload_dropped,
        })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.at != self.buf.len() {
            return Err(DecodeError::Trailing);
        }
        Ok(())
    }
}

/// Encodes a request into a frame payload (no length prefix).
///
/// # Panics
/// Panics if a [`Request::Delta`] interest sequence exceeds
/// [`cpqx_graph::MAX_SEQ_LEN`] steps — such a frame could never decode
/// and must not reach the wire ([`crate::Client::apply_delta`] rejects
/// it with a typed error instead).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Hello { version } => {
            out.push(OP_HELLO);
            out.extend_from_slice(&MAGIC);
            put_u16(&mut out, *version);
        }
        Request::Ping => out.push(OP_PING),
        Request::Query(text) => {
            out.push(OP_QUERY);
            put_str(&mut out, text);
        }
        Request::Batch(texts) => {
            out.push(OP_BATCH);
            put_u32(&mut out, texts.len() as u32);
            for t in texts {
                put_str(&mut out, t);
            }
        }
        Request::Update { insert, src, dst, label } => {
            out.push(OP_UPDATE);
            out.push(u8::from(*insert));
            put_u32(&mut out, *src);
            put_u32(&mut out, *dst);
            put_str(&mut out, label);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Delta(ops) => {
            out.push(OP_DELTA);
            put_u32(&mut out, ops.len() as u32);
            for op in ops {
                put_op(&mut out, op);
            }
        }
        Request::Metrics => out.push(OP_METRICS),
    }
    out
}

// Delta op tags (first byte of each op inside a DELTA frame).
const OPTAG_INSERT_EDGE: u8 = 1;
const OPTAG_DELETE_EDGE: u8 = 2;
const OPTAG_CHANGE_EDGE_LABEL: u8 = 3;
const OPTAG_ADD_VERTEX: u8 = 4;
const OPTAG_DELETE_VERTEX: u8 = 5;
const OPTAG_INSERT_INTEREST: u8 = 6;
const OPTAG_DELETE_INTEREST: u8 = 7;

fn put_op(out: &mut Vec<u8>, op: &WireOp) {
    match op {
        WireOp::InsertEdge { src, dst, label } => {
            out.push(OPTAG_INSERT_EDGE);
            put_u32(out, *src);
            put_u32(out, *dst);
            put_str(out, label);
        }
        WireOp::DeleteEdge { src, dst, label } => {
            out.push(OPTAG_DELETE_EDGE);
            put_u32(out, *src);
            put_u32(out, *dst);
            put_str(out, label);
        }
        WireOp::ChangeEdgeLabel { src, dst, from, to } => {
            out.push(OPTAG_CHANGE_EDGE_LABEL);
            put_u32(out, *src);
            put_u32(out, *dst);
            put_str(out, from);
            put_str(out, to);
        }
        WireOp::AddVertex { name } => {
            out.push(OPTAG_ADD_VERTEX);
            put_str(out, name);
        }
        WireOp::DeleteVertex { vertex } => {
            out.push(OPTAG_DELETE_VERTEX);
            put_u32(out, *vertex);
        }
        WireOp::InsertInterest { seq } => {
            out.push(OPTAG_INSERT_INTEREST);
            put_seq(out, seq);
        }
        WireOp::DeleteInterest { seq } => {
            out.push(OPTAG_DELETE_INTEREST);
            put_seq(out, seq);
        }
    }
}

fn put_seq(out: &mut Vec<u8>, seq: &[WireSeqLabel]) {
    // Hard assert, not debug: `seq.len() as u8` on an over-long sequence
    // would silently truncate the count and desynchronize the op stream
    // for the decoder (which rejects counts above MAX_SEQ_LEN anyway).
    assert!(
        seq.len() <= cpqx_graph::MAX_SEQ_LEN,
        "interest sequence of {} steps exceeds MAX_SEQ_LEN",
        seq.len()
    );
    out.push(seq.len() as u8);
    for step in seq {
        out.push(u8::from(step.inverse));
        put_str(out, &step.label);
    }
}

/// Decodes a frame payload into a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut c = Cur::new(payload);
    let op = c.u8()?;
    let req = match op {
        OP_HELLO => {
            if c.take(4)? != MAGIC {
                return Err(DecodeError::BadMagic);
            }
            Request::Hello { version: c.u16()? }
        }
        OP_PING => Request::Ping,
        OP_QUERY => Request::Query(c.str()?),
        OP_BATCH => {
            let n = c.u32()? as usize;
            if self_inconsistent_count(n, 4, c.buf.len() - c.at) {
                return Err(DecodeError::Truncated);
            }
            let mut texts = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                texts.push(c.str()?);
            }
            Request::Batch(texts)
        }
        OP_UPDATE => {
            let insert = c.bool()?;
            let src = c.u32()?;
            let dst = c.u32()?;
            let label = c.str()?;
            Request::Update { insert, src, dst, label }
        }
        OP_STATS => Request::Stats,
        OP_DELTA => {
            let n = c.u32()? as usize;
            // Smallest op on the wire: tag + an empty interest sequence.
            if self_inconsistent_count(n, 2, c.buf.len() - c.at) {
                return Err(DecodeError::Truncated);
            }
            let mut ops = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                ops.push(c.op()?);
            }
            Request::Delta(ops)
        }
        OP_METRICS => Request::Metrics,
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

/// `n` items of at least `min_item_len` bytes cannot fit in `remaining`.
fn self_inconsistent_count(n: usize, min_item_len: usize, remaining: usize) -> bool {
    n.checked_mul(min_item_len).is_none_or(|need| need > remaining)
}

/// Encodes a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::HelloAck { version } => {
            out.push(OP_HELLO_ACK);
            put_u16(&mut out, *version);
        }
        Response::Pong => out.push(OP_PONG),
        Response::Result { epoch, pairs } => {
            out.push(OP_RESULT);
            put_u64(&mut out, *epoch);
            put_pairs(&mut out, pairs);
        }
        Response::BatchResult { epoch, results } => {
            out.push(OP_BATCH_RESULT);
            put_u64(&mut out, *epoch);
            put_u32(&mut out, results.len() as u32);
            for r in results {
                put_pairs(&mut out, r);
            }
        }
        Response::UpdateAck { applied, epoch } => {
            out.push(OP_UPDATE_ACK);
            out.push(u8::from(*applied));
            put_u64(&mut out, *epoch);
        }
        Response::Stats(s) => {
            out.push(OP_STATS_RESULT);
            for field in stats_fields(s) {
                put_u64(&mut out, field);
            }
        }
        Response::DeltaAck { epoch, rebuilt, outcomes } => {
            out.push(OP_DELTA_ACK);
            put_u64(&mut out, *epoch);
            out.push(u8::from(*rebuilt));
            put_u32(&mut out, outcomes.len() as u32);
            for o in outcomes {
                match o {
                    WireOutcome::Noop => out.push(0),
                    WireOutcome::Applied => out.push(1),
                    WireOutcome::VertexAdded(v) => {
                        out.push(2);
                        put_u32(&mut out, *v);
                    }
                }
            }
        }
        Response::Metrics(m) => {
            out.push(OP_METRICS_RESULT);
            put_metrics(&mut out, m);
        }
        Response::Error(e) => {
            out.push(OP_ERROR);
            out.push(e.code.to_u8());
            put_u32(&mut out, e.position.unwrap_or(u32::MAX));
            put_str(&mut out, &e.message);
        }
    }
    out
}

fn put_hist(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u64(out, h.count());
    put_u64(out, h.sum());
    put_u64(out, h.max());
    // Sparse bucket form: histograms have cpqx_obs::BUCKETS (< u16::MAX)
    // buckets total, so the non-zero count always fits a u16.
    let nonzero: Vec<(u16, u64)> = h.nonzero().collect();
    put_u16(out, nonzero.len() as u16);
    for (index, count) in nonzero {
        put_u16(out, index);
        put_u64(out, count);
    }
}

fn put_trace(out: &mut Vec<u8>, t: &Trace) {
    out.push(t.kind as u8);
    put_str(out, &t.key);
    put_u64(out, t.epoch);
    put_u64(out, t.total_us);
    put_u16(out, t.spans.len().min(u16::MAX as usize) as u16);
    for s in t.spans.iter().take(u16::MAX as usize) {
        out.push(s.stage as u8);
        put_u64(out, s.start_us);
        put_u64(out, s.dur_us);
        out.push(s.depth);
    }
}

fn put_metrics(out: &mut Vec<u8>, m: &WireMetrics) {
    put_u64(out, m.epoch);
    // Op/stage lists are bounded by their tag spaces (≤ OP_COUNT /
    // STAGE_COUNT entries), so a u8 count suffices.
    out.push(m.ops.len().min(u8::MAX as usize) as u8);
    for (op, h) in m.ops.iter().take(u8::MAX as usize) {
        out.push(*op as u8);
        put_hist(out, h);
    }
    out.push(m.stages.len().min(u8::MAX as usize) as u8);
    for (stage, h) in m.stages.iter().take(u8::MAX as usize) {
        out.push(*stage as u8);
        put_hist(out, h);
    }
    for field in net_counter_fields(&m.net) {
        put_u64(out, field);
    }
    put_u64(out, m.slow_total);
    put_u16(out, m.slow.len().min(u16::MAX as usize) as u16);
    for t in m.slow.iter().take(u16::MAX as usize) {
        put_trace(out, t);
    }
    put_u64(out, m.workload_dropped);
    put_u32(out, m.workload.len() as u32);
    for (key, count) in &m.workload {
        put_str(out, key);
        put_u64(out, *count);
    }
}

/// Decodes a frame payload into a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut c = Cur::new(payload);
    let op = c.u8()?;
    let resp = match op {
        OP_HELLO_ACK => Response::HelloAck { version: c.u16()? },
        OP_PONG => Response::Pong,
        OP_RESULT => Response::Result { epoch: c.u64()?, pairs: c.pairs()? },
        OP_BATCH_RESULT => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            if self_inconsistent_count(n, 4, c.buf.len() - c.at) {
                return Err(DecodeError::Truncated);
            }
            let mut results = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                results.push(c.pairs()?);
            }
            Response::BatchResult { epoch, results }
        }
        OP_UPDATE_ACK => Response::UpdateAck { applied: c.bool()?, epoch: c.u64()? },
        OP_DELTA_ACK => {
            let epoch = c.u64()?;
            let rebuilt = c.bool()?;
            let n = c.u32()? as usize;
            if self_inconsistent_count(n, 1, c.buf.len() - c.at) {
                return Err(DecodeError::Truncated);
            }
            let mut outcomes = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                outcomes.push(c.outcome()?);
            }
            Response::DeltaAck { epoch, rebuilt, outcomes }
        }
        OP_STATS_RESULT => {
            let mut fields = [0u64; STATS_FIELDS];
            for f in fields.iter_mut() {
                *f = c.u64()?;
            }
            Response::Stats(Box::new(stats_from_fields(fields)))
        }
        OP_METRICS_RESULT => Response::Metrics(Box::new(c.metrics()?)),
        OP_ERROR => {
            let code = ErrorCode::from_u8(c.u8()?)?;
            let position = match c.u32()? {
                u32::MAX => None,
                p => Some(p),
            };
            Response::Error(WireError { code, position, message: c.str()? })
        }
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(resp)
}

const STATS_FIELDS: usize = 33;

fn stats_fields(s: &WireStats) -> [u64; STATS_FIELDS] {
    [
        s.epoch,
        s.queries,
        s.result_hits,
        s.result_misses,
        s.plan_hits,
        s.plan_misses,
        s.snapshot_swaps,
        s.invalidated_results,
        s.rejected_admissions,
        s.delta_transactions,
        s.lazy_update_ops,
        s.rebuilds,
        s.auto_rebuilds,
        s.cow_chunks_copied,
        s.cow_chunks_shared,
        s.class_slots,
        s.baseline_classes,
        s.p50_us,
        s.p99_us,
        s.ping_requests,
        s.query_requests,
        s.batch_requests,
        s.update_requests,
        s.delta_requests,
        s.stats_requests,
        s.metrics_requests,
        s.error_responses,
        s.connections,
        s.rejected_connections,
        s.wal_appends,
        s.wal_bytes,
        s.snapshots_written,
        s.snapshot_chunks_skipped,
    ]
}

const NET_COUNTER_FIELDS: usize = 11;

fn net_counter_fields(n: &WireNetCounters) -> [u64; NET_COUNTER_FIELDS] {
    [
        n.connections,
        n.rejected_connections,
        n.ping_requests,
        n.query_requests,
        n.batch_requests,
        n.update_requests,
        n.delta_requests,
        n.stats_requests,
        n.metrics_requests,
        n.error_responses,
        n.open_connections,
    ]
}

fn net_counters_from_fields(f: [u64; NET_COUNTER_FIELDS]) -> WireNetCounters {
    WireNetCounters {
        connections: f[0],
        rejected_connections: f[1],
        ping_requests: f[2],
        query_requests: f[3],
        batch_requests: f[4],
        update_requests: f[5],
        delta_requests: f[6],
        stats_requests: f[7],
        metrics_requests: f[8],
        error_responses: f[9],
        open_connections: f[10],
    }
}

fn stats_from_fields(f: [u64; STATS_FIELDS]) -> WireStats {
    WireStats {
        epoch: f[0],
        queries: f[1],
        result_hits: f[2],
        result_misses: f[3],
        plan_hits: f[4],
        plan_misses: f[5],
        snapshot_swaps: f[6],
        invalidated_results: f[7],
        rejected_admissions: f[8],
        delta_transactions: f[9],
        lazy_update_ops: f[10],
        rebuilds: f[11],
        auto_rebuilds: f[12],
        cow_chunks_copied: f[13],
        cow_chunks_shared: f[14],
        class_slots: f[15],
        baseline_classes: f[16],
        p50_us: f[17],
        p99_us: f[18],
        ping_requests: f[19],
        query_requests: f[20],
        batch_requests: f[21],
        update_requests: f[22],
        delta_requests: f[23],
        stats_requests: f[24],
        metrics_requests: f[25],
        error_responses: f[26],
        connections: f[27],
        rejected_connections: f[28],
        wal_appends: f[29],
        wal_bytes: f[30],
        snapshots_written: f[31],
        snapshot_chunks_skipped: f[32],
    }
}

// ------------------------------------------------------------- frame I/O --

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The announced payload length exceeds the caller's bound. The
    /// stream is no longer synchronized; the connection must be dropped.
    TooLarge {
        /// The announced length.
        len: usize,
        /// The caller's bound.
        max: usize,
    },
    /// The connection failed mid-frame (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= u32::MAX as usize);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload, enforcing `max_len`. A clean peer close
/// *before the first header byte* is [`FrameError::Closed`]; EOF anywhere
/// later is an [`FrameError::Io`] of kind `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got == 0 {
        match r.read(&mut header)? {
            0 => return Err(FrameError::Closed),
            n => got = n,
        }
    }
    // `got` is 1..=4, so the tail slice always exists; `get_mut` keeps
    // this decode path free of panic-capable indexing regardless.
    if let Some(rest) = header.get_mut(got..) {
        r.read_exact(rest)?;
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame reassembly for nonblocking sockets.
///
/// [`read_frame`] needs a blocking `Read`; a readiness-driven server
/// instead feeds whatever bytes `read` returned into this buffer with
/// [`FrameAssembler::extend`] and pops complete payloads with
/// [`FrameAssembler::next_frame`]. The announced length is checked
/// against the bound as soon as the 4-byte header is buffered, so a
/// hostile header is refused before its payload is ever allocated —
/// buffered data therefore never exceeds `max_len` plus one read chunk.
#[derive(Debug)]
pub struct FrameAssembler {
    /// Raw bytes as received; `at..` is the unparsed tail.
    buf: Vec<u8>,
    /// Parse offset: bytes before it belong to already-popped frames.
    at: usize,
    /// Per-connection payload bound (the server's `max_frame_len`).
    max_len: usize,
}

/// Compact the buffer once the consumed prefix passes this size, so a
/// long-lived connection does not accrete every frame it ever received.
const ASSEMBLER_COMPACT: usize = 64 * 1024;

impl FrameAssembler {
    /// An empty assembler enforcing `max_len` on announced payloads.
    pub fn new(max_len: usize) -> FrameAssembler {
        FrameAssembler { buf: Vec::new(), at: 0, max_len }
    }

    /// Appends bytes received from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unparsed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }

    /// `true` when a frame is partially buffered — a timeout now leaves
    /// the stream desynchronized (versus a clean idle close at a frame
    /// boundary).
    pub fn mid_frame(&self) -> bool {
        self.at < self.buf.len()
    }

    /// Pops the next complete frame payload, `Ok(None)` when more bytes
    /// are needed. [`FrameError::TooLarge`] means the stream is
    /// desynchronized and the connection must be dropped; the assembler
    /// keeps returning it for the same frame.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let Some(header) = self.buf.get(self.at..self.at + 4) else {
            return Ok(None);
        };
        let Ok(header) = <[u8; 4]>::try_from(header) else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(header) as usize;
        if len > self.max_len {
            return Err(FrameError::TooLarge { len, max: self.max_len });
        }
        let start = self.at + 4;
        let Some(payload) = self.buf.get(start..start + len) else {
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.at = start + len;
        if self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        } else if self.at >= ASSEMBLER_COMPACT {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello { version: PROTOCOL_VERSION },
            Request::Ping,
            Request::Query("(f . f) & f^-1".into()),
            Request::Query(String::new()),
            Request::Batch(vec![]),
            Request::Batch(vec!["f".into(), "f . f".into(), "id".into()]),
            Request::Update { insert: true, src: 0, dst: u32::MAX, label: "follows".into() },
            Request::Update { insert: false, src: 7, dst: 7, label: "f".into() },
            Request::Stats,
            Request::Metrics,
            Request::Delta(vec![]),
            Request::Delta(vec![
                WireOp::AddVertex { name: "newbie".into() },
                WireOp::InsertEdge { src: 14, dst: 0, label: "f".into() },
                WireOp::DeleteEdge { src: 1, dst: 2, label: "v".into() },
                WireOp::ChangeEdgeLabel { src: 3, dst: 4, from: "f".into(), to: "v".into() },
                WireOp::DeleteVertex { vertex: 9 },
                WireOp::InsertInterest {
                    seq: vec![
                        WireSeqLabel { inverse: false, label: "f".into() },
                        WireSeqLabel { inverse: true, label: "f".into() },
                    ],
                },
                WireOp::DeleteInterest {
                    seq: vec![WireSeqLabel { inverse: false, label: "v".into() }],
                },
            ]),
        ]
    }

    fn sample_metrics() -> WireMetrics {
        let hist = |nonzero: &[(u16, u64)], total, sum, max| {
            HistogramSnapshot::from_parts(total, sum, max, nonzero).unwrap()
        };
        WireMetrics {
            epoch: 5,
            ops: vec![
                (ObsOp::Query, hist(&[(0, 3), (12, 2)], 5, 90, 40)),
                (ObsOp::Delta, hist(&[(20, 1)], 1, 300, 300)),
            ],
            stages: vec![
                (Stage::Plan, hist(&[(2, 5)], 5, 10, 2)),
                (Stage::Eval, hist(&[(9, 4)], 4, 36, 11)),
            ],
            net: WireNetCounters {
                connections: 2,
                query_requests: 5,
                metrics_requests: 1,
                open_connections: 2,
                ..WireNetCounters::default()
            },
            slow: vec![Trace {
                kind: TraceKind::Query,
                key: "((f.f)&f^-1)".into(),
                epoch: 5,
                total_us: 900,
                spans: vec![
                    Span { stage: Stage::Parse, start_us: 0, dur_us: 10, depth: 0 },
                    Span { stage: Stage::Eval, start_us: 12, dur_us: 880, depth: 1 },
                ],
            }],
            slow_total: 3,
            workload: vec![("((f.f)&f^-1)".into(), 9), ("f".into(), 1)],
            workload_dropped: 2,
        }
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::HelloAck { version: PROTOCOL_VERSION },
            Response::Pong,
            Response::Result { epoch: 0, pairs: vec![] },
            Response::Result { epoch: 42, pairs: vec![Pair::new(1, 2), Pair::new(3, 3)] },
            Response::BatchResult { epoch: 9, results: vec![] },
            Response::BatchResult {
                epoch: 9,
                results: vec![vec![Pair::new(0, 0)], vec![], vec![Pair::new(5, 6)]],
            },
            Response::UpdateAck { applied: true, epoch: 3 },
            Response::DeltaAck { epoch: 0, rebuilt: false, outcomes: vec![] },
            Response::DeltaAck {
                epoch: 17,
                rebuilt: true,
                outcomes: vec![
                    WireOutcome::Applied,
                    WireOutcome::Noop,
                    WireOutcome::VertexAdded(4096),
                ],
            },
            Response::Stats(Box::new(WireStats {
                epoch: 2,
                queries: 100,
                result_hits: 40,
                result_misses: 60,
                p99_us: 1234,
                query_requests: 100,
                metrics_requests: 3,
                connections: 8,
                rejected_connections: 2,
                wal_appends: 12,
                wal_bytes: 4096,
                snapshots_written: 2,
                snapshot_chunks_skipped: 77,
                ..WireStats::default()
            })),
            Response::Metrics(Box::default()),
            Response::Metrics(Box::new(sample_metrics())),
            Response::Error(WireError {
                code: ErrorCode::Parse,
                position: Some(4),
                message: "unknown label \"nosuch\"".into(),
            }),
            Response::Error(WireError::new(ErrorCode::Internal, "boom")),
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "roundtrip of {req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "roundtrip of {resp:?}");
        }
    }

    #[test]
    fn truncation_never_panics() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                let _ = decode_request(&bytes[..cut]); // must not panic
            }
        }
        for resp in all_responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                let _ = decode_response(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert_eq!(decode_request(&bytes), Err(DecodeError::Trailing));
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert_eq!(decode_request(&[0x7E]), Err(DecodeError::UnknownOpcode(0x7E)));
        assert_eq!(decode_response(&[0x10]), Err(DecodeError::UnknownOpcode(0x10)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_request(&Request::Hello { version: 1 });
        bytes[1] = b'X';
        assert_eq!(decode_request(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A BATCH claiming 2^31 strings in a 9-byte payload must fail
        // fast on the count-consistency check.
        let mut bytes = vec![OP_BATCH];
        bytes.extend_from_slice(&0x8000_0000u32.to_be_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(decode_request(&bytes), Err(DecodeError::Truncated));
        // Same for a RESULT claiming 2^30 pairs.
        let mut bytes = vec![OP_RESULT];
        bytes.extend_from_slice(&7u64.to_be_bytes());
        bytes.extend_from_slice(&0x4000_0000u32.to_be_bytes());
        assert_eq!(decode_response(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_bools_and_codes_are_rejected() {
        let mut upd =
            encode_request(&Request::Update { insert: true, src: 1, dst: 2, label: "f".into() });
        upd[1] = 9;
        assert_eq!(decode_request(&upd), Err(DecodeError::BadValue("bool")));
        let mut err = encode_response(&Response::Error(WireError::new(ErrorCode::Internal, "x")));
        err[1] = 0xEE;
        assert_eq!(decode_response(&err), Err(DecodeError::BadValue("error code")));
    }

    #[test]
    fn bad_delta_payloads_are_rejected() {
        // Unknown op tag.
        let mut bytes = vec![OP_DELTA];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&[0xEE, 0x00]);
        assert_eq!(decode_request(&bytes), Err(DecodeError::BadValue("delta op tag")));
        // Hostile op count in a tiny payload fails the consistency check.
        let mut bytes = vec![OP_DELTA];
        bytes.extend_from_slice(&0x4000_0000u32.to_be_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert_eq!(decode_request(&bytes), Err(DecodeError::Truncated));
        // An interest sequence longer than a LabelSeq can hold.
        let mut bytes = vec![OP_DELTA];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.push(OPTAG_INSERT_INTEREST);
        bytes.push(cpqx_graph::MAX_SEQ_LEN as u8 + 1);
        bytes.extend_from_slice(&[0; 64]);
        assert_eq!(decode_request(&bytes), Err(DecodeError::BadValue("interest sequence length")));
        // Bad outcome tag in an ack.
        let mut bytes = vec![OP_DELTA_ACK];
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.push(9);
        assert_eq!(decode_response(&bytes), Err(DecodeError::BadValue("op outcome")));
    }

    #[test]
    fn bad_metrics_payloads_are_rejected() {
        // Unknown op tag in the per-opcode histogram list.
        let mut bytes = vec![OP_METRICS_RESULT];
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(1);
        bytes.push(99);
        assert_eq!(decode_response(&bytes), Err(DecodeError::BadValue("metrics op tag")));
        // Unknown stage tag in the per-stage list.
        let mut bytes = vec![OP_METRICS_RESULT];
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(0);
        bytes.push(1);
        bytes.push(200);
        assert_eq!(decode_response(&bytes), Err(DecodeError::BadValue("metrics stage tag")));
        // Out-of-range histogram bucket index: patch the first non-zero
        // bucket of a valid encoding (offset: opcode 1 + epoch 8 +
        // op-count 1 + op tag 1 + total/sum/max 24 + nz-count 2).
        let one_op = WireMetrics {
            ops: vec![(ObsOp::Query, HistogramSnapshot::from_parts(1, 9, 9, &[(3, 1)]).unwrap())],
            ..WireMetrics::default()
        };
        let mut bytes = encode_response(&Response::Metrics(Box::new(one_op)));
        bytes[37..39].copy_from_slice(&(cpqx_obs::BUCKETS as u16).to_be_bytes());
        assert_eq!(decode_response(&bytes), Err(DecodeError::BadValue("histogram bucket")));
        // Bad trace kind in the slow-query ring.
        let mut bytes = vec![OP_METRICS_RESULT];
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(0);
        bytes.push(0);
        bytes.extend_from_slice(&[0u8; 8 * NET_COUNTER_FIELDS]);
        bytes.extend_from_slice(&0u64.to_be_bytes()); // slow_total
        bytes.extend_from_slice(&1u16.to_be_bytes()); // one trace ...
        bytes.push(7); // ... of a kind that does not exist
        bytes.extend_from_slice(&[0u8; 32]);
        assert_eq!(decode_response(&bytes), Err(DecodeError::BadValue("trace kind")));
        // Hostile slow-trace and workload counts fail fast on the
        // count-consistency check.
        let mut bytes = vec![OP_METRICS_RESULT];
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(0);
        bytes.push(0);
        bytes.extend_from_slice(&[0u8; 8 * NET_COUNTER_FIELDS]);
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&u16::MAX.to_be_bytes());
        assert_eq!(decode_response(&bytes), Err(DecodeError::Truncated));
        let mut bytes = vec![OP_METRICS_RESULT];
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.push(0);
        bytes.push(0);
        bytes.extend_from_slice(&[0u8; 8 * NET_COUNTER_FIELDS]);
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&0u16.to_be_bytes()); // no slow traces
        bytes.extend_from_slice(&0u64.to_be_bytes()); // workload_dropped
        bytes.extend_from_slice(&0x4000_0000u32.to_be_bytes());
        assert_eq!(decode_response(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn parse_errors_map_to_typed_codes() {
        use cpqx_graph::generate::gex;
        let g = gex();
        let e = cpqx_query::parse_cpq("f . nosuch", &g).unwrap_err();
        let w = WireError::from(e);
        assert_eq!(w.code, ErrorCode::UnknownLabel);
        assert_eq!(w.position, Some(4));
        let e = cpqx_query::parse_cpq("(f", &g).unwrap_err();
        assert_eq!(WireError::from(e).code, ErrorCode::Parse);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        let payloads: Vec<Vec<u8>> = all_requests().iter().map(encode_request).collect();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = io::Cursor::new(wire);
        for p in &payloads {
            assert_eq!(&read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), p);
        }
        assert!(matches!(read_frame(&mut r, DEFAULT_MAX_FRAME), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(wire), 1024).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { max: 1024, .. }));
    }

    #[test]
    fn eof_mid_frame_is_io_not_closed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Ping)).unwrap();
        wire.truncate(3); // cut inside the header
        let err = read_frame(&mut io::Cursor::new(wire), 1024).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }

    #[test]
    fn stats_helpers() {
        let s = WireStats {
            result_hits: 3,
            result_misses: 1,
            ping_requests: 1,
            query_requests: 4,
            metrics_requests: 2,
            ..WireStats::default()
        };
        assert!((s.result_hit_rate() - 0.75).abs() < 1e-9);
        // METRICS requests count too (dropped from the sum before v6).
        assert_eq!(s.total_requests(), 7);
        assert_eq!(WireStats::default().result_hit_rate(), 0.0);
    }

    #[test]
    fn assembler_matches_read_frame_byte_at_a_time() {
        let payloads: Vec<Vec<u8>> = all_requests().iter().map(encode_request).collect();
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        // Feed the whole stream one byte at a time: every frame must pop
        // exactly when its last byte arrives, never earlier.
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for b in &wire {
            asm.extend(std::slice::from_ref(b));
            while let Some(frame) = asm.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads);
        assert!(!asm.mid_frame());
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_pops_pipelined_frames_from_one_chunk() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Ping)).unwrap();
        write_frame(&mut wire, &encode_request(&Request::Stats)).unwrap();
        write_frame(&mut wire, &encode_request(&Request::Query("f".into()))).unwrap();
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME);
        asm.extend(&wire);
        let mut got = Vec::new();
        while let Some(frame) = asm.next_frame().unwrap() {
            got.push(decode_request(&frame).unwrap());
        }
        assert_eq!(got, vec![Request::Ping, Request::Stats, Request::Query("f".into())]);
    }

    #[test]
    fn assembler_tracks_mid_frame_state() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Ping)).unwrap();
        let mut asm = FrameAssembler::new(DEFAULT_MAX_FRAME);
        assert!(!asm.mid_frame()); // empty = clean boundary
        asm.extend(&wire[..3]); // partial header counts as mid-frame
        assert!(asm.mid_frame());
        assert!(asm.next_frame().unwrap().is_none());
        asm.extend(&wire[3..]);
        assert!(asm.next_frame().unwrap().is_some());
        assert!(!asm.mid_frame());
    }

    #[test]
    fn assembler_refuses_oversized_headers_before_payload() {
        let mut asm = FrameAssembler::new(1024);
        asm.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(asm.next_frame(), Err(FrameError::TooLarge { max: 1024, .. })));
        // The error is sticky: the stream cannot resynchronize.
        assert!(matches!(asm.next_frame(), Err(FrameError::TooLarge { .. })));
    }
}
