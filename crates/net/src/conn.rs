//! Per-connection state for the event-driven server: a small state
//! machine (handshake → serving → draining) plus the read/write buffers
//! that replace a parked thread.
//!
//! A connection owns an incremental [`FrameAssembler`] on the read side
//! and an ordered **response slot queue** on the write side: every
//! decoded request reserves the next sequence slot, inline-handled
//! requests (PING/STATS/METRICS, handshake, decode errors) fill their
//! slot immediately, worker-evaluated requests fill it when the
//! completion comes back — and only the *completed prefix* of slots is
//! ever encoded into the write buffer, so responses leave in strict
//! arrival order no matter how the worker pool interleaves. Partial
//! writes park in the buffer and resume on the next writable-readiness
//! event.
//!
//! Nothing here does timeouts or epoll bookkeeping — the event loop
//! ([`crate::event`]) owns those; this module only exposes the state it
//! needs (buffered bytes, pending slots, last-activity instants).

use crate::proto::{encode_response, FrameAssembler, Response};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Read chunk size per `read` call (stack scratch in the event loop).
pub(crate) const READ_CHUNK: usize = 16 * 1024;

/// Cap on bytes consumed from one socket per readiness dispatch, so one
/// fire-hose client cannot monopolize the event loop; level-triggered
/// epoll re-reports the fd on the next tick.
const READ_BURST: usize = 256 * 1024;

/// Where a connection is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Waiting for the version-matching HELLO frame.
    Handshake,
    /// Handshake done; serving pipelined requests.
    Serving,
    /// A final frame (handshake refusal, desync error) is queued: flush
    /// the write buffer, then close. No more reads.
    Draining,
}

/// What a read burst observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReadStatus {
    /// Socket drained to `WouldBlock` (or the burst cap); still open.
    Open,
    /// Peer closed its write half (EOF).
    PeerClosed,
}

/// One connection's entire server-side state.
pub(crate) struct Conn {
    /// The nonblocking socket. The event loop is the only reader/writer.
    pub(crate) stream: TcpStream,
    /// Incremental frame reassembly for the read side.
    pub(crate) assembler: FrameAssembler,
    /// Lifecycle state.
    pub(crate) state: ConnState,
    /// Encoded-but-unsent response bytes (`wpos..` is the unsent tail).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Arrival-ordered response slots: `Some` = completed, awaiting
    /// flush; `None` = at a worker.
    pending: VecDeque<(u64, Option<Response>)>,
    next_seq: u64,
    /// Last time the peer sent bytes or the last pending response was
    /// flushed — the anchor for the idle timeout.
    pub(crate) last_activity: Instant,
    /// Last time the socket accepted bytes — the anchor for the write
    /// timeout while the write buffer is nonempty.
    pub(crate) last_write_progress: Instant,
    /// The peer sent EOF (or an error/hang-up edge arrived). Buffered
    /// requests still get served and their responses flushed — parity
    /// with the old blocking core, where a client could pipeline, shut
    /// its write half, and read every answer — but once the pipeline
    /// and write buffer empty, the connection closes.
    pub(crate) peer_eof: bool,
    /// The timer-wheel tick this connection's token is filed under
    /// (`None` = not filed). The wheel is lazy: the filed tick may be
    /// earlier than the authoritative deadline, in which case the visit
    /// simply re-files.
    pub(crate) filed: Option<u64>,
    /// The epoll interest mask currently registered for the socket.
    pub(crate) interest: u32,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_frame_len: usize, now: Instant) -> Conn {
        Conn {
            stream,
            assembler: FrameAssembler::new(max_frame_len),
            state: ConnState::Handshake,
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            last_activity: now,
            last_write_progress: now,
            peer_eof: false,
            filed: None,
            interest: 0,
        }
    }

    /// Reads until `WouldBlock`, EOF, or the per-dispatch burst cap,
    /// feeding everything into the assembler. Hard I/O errors bubble up
    /// and close the connection.
    pub(crate) fn read_some(
        &mut self,
        chunk: &mut [u8; READ_CHUNK],
    ) -> io::Result<(usize, ReadStatus)> {
        let mut total = 0usize;
        loop {
            match (&self.stream).read(chunk) {
                Ok(0) => return Ok((total, ReadStatus::PeerClosed)),
                Ok(n) => {
                    self.assembler.extend(&chunk[..n]);
                    total += n;
                    if total >= READ_BURST {
                        return Ok((total, ReadStatus::Open));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok((total, ReadStatus::Open));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reserves the next response slot and returns its sequence number.
    pub(crate) fn reserve_slot(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back((seq, None));
        seq
    }

    /// Fills a previously reserved slot. Ignores unknown sequence
    /// numbers (a completion can race a connection teardown+id reuse
    /// only across connections, and ids are never reused; within one
    /// connection the slot always exists).
    pub(crate) fn complete_slot(&mut self, seq: u64, resp: Response) {
        if let Some(slot) = self.pending.iter_mut().find(|(s, _)| *s == seq) {
            slot.1 = Some(resp);
        }
    }

    /// Reserves a slot and completes it immediately (inline handling).
    pub(crate) fn push_inline(&mut self, resp: Response) {
        let seq = self.reserve_slot();
        self.complete_slot(seq, resp);
    }

    /// Requests currently in flight (reserved, not yet flushed).
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Encodes the completed prefix of the slot queue into the write
    /// buffer. Returns how many responses were staged.
    pub(crate) fn flush_ready(&mut self) -> usize {
        let mut staged = 0usize;
        while matches!(self.pending.front(), Some((_, Some(_)))) {
            let Some((_, Some(resp))) = self.pending.pop_front() else {
                break;
            };
            let payload = encode_response(&resp);
            self.wbuf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            self.wbuf.extend_from_slice(&payload);
            staged += 1;
        }
        staged
    }

    /// Bytes staged but not yet accepted by the socket.
    pub(crate) fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Writes the staged bytes until `WouldBlock` or the buffer empties.
    /// `Ok(true)` = buffer fully drained. Records write progress for the
    /// write-timeout clock and compacts the buffer when it drains.
    pub(crate) fn write_some(&mut self, now: Instant) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match (&self.stream).write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    self.last_write_progress = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_response, read_frame, DEFAULT_MAX_FRAME};
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    #[test]
    fn slots_flush_in_arrival_order_only_when_prefix_completes() {
        let (a, _b) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(a, DEFAULT_MAX_FRAME, now);
        let s0 = conn.reserve_slot();
        conn.push_inline(Response::Pong); // s1, completed immediately
        let s2 = conn.reserve_slot();
        // s0 still at a worker: nothing may flush.
        assert_eq!(conn.flush_ready(), 0);
        conn.complete_slot(s2, Response::Pong);
        assert_eq!(conn.flush_ready(), 0, "s2 done but s0 still gates the prefix");
        conn.complete_slot(s0, Response::UpdateAck { applied: true, epoch: 9 });
        assert_eq!(conn.flush_ready(), 3, "whole prefix completes at once");
        assert_eq!(conn.pending_len(), 0);
        assert!(conn.unsent() > 0);
    }

    #[test]
    fn partial_writes_resume_where_they_stopped() {
        let (a, b) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(a, DEFAULT_MAX_FRAME, now);
        conn.stream.set_nonblocking(true).unwrap();
        conn.push_inline(Response::UpdateAck { applied: true, epoch: 1 });
        conn.push_inline(Response::Pong);
        conn.flush_ready();
        // Drain to the socket (loopback buffers easily hold two frames).
        assert!(conn.write_some(Instant::now()).unwrap());
        assert_eq!(conn.unsent(), 0);
        // The peer reads exactly the two frames, in order.
        let mut r = std::io::BufReader::new(b);
        let f0 = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        let f1 = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(decode_response(&f0).unwrap(), Response::UpdateAck { applied: true, epoch: 1 });
        assert_eq!(decode_response(&f1).unwrap(), Response::Pong);
    }

    #[test]
    fn read_some_reports_eof_and_feeds_the_assembler() {
        let (a, mut b) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(a, DEFAULT_MAX_FRAME, now);
        conn.stream.set_nonblocking(true).unwrap();
        b.write_all(&[0, 0, 0, 1, 0x02]).unwrap(); // a 1-byte PING frame
        drop(b);
        // Loopback delivery is immediate after the blocking write, but
        // poll briefly to be safe.
        let mut chunk = [0u8; READ_CHUNK];
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let mut saw_eof = false;
        let mut got = 0usize;
        while Instant::now() < deadline {
            let (n, status) = conn.read_some(&mut chunk).unwrap();
            got += n;
            if status == ReadStatus::PeerClosed {
                saw_eof = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(saw_eof);
        assert_eq!(got, 5);
        assert_eq!(conn.assembler.next_frame().unwrap().unwrap(), vec![0x02]);
    }
}
