//! Audited raw-syscall surface for the event-driven server: `epoll` and
//! `eventfd`.
//!
//! The build environment is offline — no `libc`, `mio` or `tokio` — so
//! the event loop declares the four syscall entry points it needs as
//! `extern "C"` functions (std already links the platform libc, the
//! declarations just expose symbols it does not re-export) and wraps
//! them in safe RAII types. **All `unsafe` in `cpqx-net` lives in this
//! file**; the cpqx-analyze `unsafe-allowlist` rule enforces that, and
//! every block below documents the invariant that makes it sound:
//!
//! 1. **FFI signatures match the kernel ABI.** The declarations below
//!    are the documented x86-64/AArch64 Linux signatures of
//!    `epoll_create1(2)`, `epoll_ctl(2)`, `epoll_wait(2)`,
//!    `eventfd(2)`, `read(2)`, `write(2)` and `close(2)`;
//!    [`EpollEvent`] is `#[repr(C, packed)]` exactly as
//!    `struct epoll_event` is declared (packed on x86-64, where the
//!    kernel reads the 12-byte layout).
//! 2. **Pointers passed to the kernel outlive the call.** Every pointer
//!    argument below derives from a live reference (`&mut [EpollEvent]`
//!    buffer, `&u64` scratch) whose borrow spans the call; the kernel
//!    does not retain pointers past syscall return.
//! 3. **Buffer lengths are exact.** `epoll_wait` gets
//!    `events.len()` as `maxevents`; `read`/`write` on the eventfd get
//!    exactly 8 bytes — the one transfer size `eventfd(2)` defines.
//! 4. **File descriptors are owned.** [`Epoll`] and [`EventFd`] are the
//!    sole owners of the descriptors they create and close them exactly
//!    once, in `Drop`. Registered sockets are *borrowed* (`epoll` holds
//!    a kernel-side interest, not a Rust alias), and the caller
//!    deregisters before closing — `close` on a registered fd would
//!    drop the interest anyway, so a missed [`Epoll::del`] degrades to
//!    a no-op, never a dangling read.
//! 5. **Error returns are checked.** Every call site turns `-1` into
//!    [`io::Error::last_os_error`] and retries `EINTR` where the
//!    operation is restartable (`epoll_wait`), so no partial state is
//!    ever interpreted as success.

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`); always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
/// `EPOLL_CLOEXEC` == `O_CLOEXEC` (octal 02000000 on Linux).
const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `EFD_CLOEXEC` == `O_CLOEXEC`.
const EFD_CLOEXEC: c_int = 0o2000000;
/// `EFD_NONBLOCK` == `O_NONBLOCK` (octal 04000 on Linux).
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`: an interest mask plus the caller's
/// 64-bit token. Packed to 12 bytes on x86-64 (the kernel ABI there);
/// naturally aligned elsewhere. Field reads copy by value — a packed
/// field is never borrowed.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// One decoded readiness event: the registered token plus the readiness
/// edges the event loop distinguishes.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Token supplied at registration.
    pub token: u64,
    /// Socket has bytes to read (or an accept to take).
    pub readable: bool,
    /// Socket can accept more bytes.
    pub writable: bool,
    /// Error / hang-up / peer-closed-write: the connection is done.
    pub closed: bool,
}

/// An owned `epoll` instance (level-triggered).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // Invariant 1/5: documented signature, -1 checked. The returned
        // fd is owned by the new value (invariant 4).
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        // Invariant 2: `ev` lives on this frame across the call; the
        // kernel copies it and retains nothing. DEL ignores the pointer.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`. Best-effort: closing the fd deregisters it too.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, appending decoded events to `out`.
    /// `timeout`: `None` blocks until an event; `Some(d)` wakes after
    /// `d` even if nothing is ready. Retries `EINTR` internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 1ns timeout does not busy-spin at 0ms.
            Some(d) => d.as_millis().saturating_add(1).min(i32::MAX as u128) as c_int,
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
        loop {
            // Invariants 2/3: `buf` outlives the call and maxevents is
            // its exact length, so the kernel writes only within it.
            let n =
                unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue; // invariant 5: EINTR is restartable here
                }
                return Err(e);
            }
            // The kernel initialized exactly `n` entries (invariant 5:
            // n >= 0 checked above, and n <= maxevents by contract).
            for ev in buf.iter().take(n as usize) {
                let bits = ev.events; // copy out of the packed struct
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // Invariant 4: sole owner, closed exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

/// An owned nonblocking `eventfd`, used to wake the event loop out of
/// `epoll_wait` from worker threads and from [`crate::Server::shutdown`].
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // Invariants 1/5: documented signature, -1 checked; the fd is
        // owned by the new value (invariant 4).
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The descriptor to register with [`Epoll::add`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the waiter. Infallible by design: the only failure mode of
    /// a nonblocking eventfd write is `EAGAIN` on counter overflow,
    /// which means a wake-up is already pending — exactly the goal.
    pub fn signal(&self) {
        let one: u64 = 1;
        // Invariants 2/3: 8 bytes from a live stack value — the one
        // transfer size eventfd(2) accepts.
        let _ = unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Drains pending wake-ups so level-triggered polling goes quiet.
    pub fn drain(&self) {
        let mut scratch: u64 = 0;
        // Invariants 2/3: 8 bytes into a live stack value. A nonblocking
        // eventfd read resets the counter to 0 in one call, so a single
        // read drains every signal since the last drain; EAGAIN (no
        // pending signal) is the expected idle result (invariant 5:
        // both outcomes are handled, neither is interpreted further).
        let _ = unsafe { read(self.fd, (&mut scratch as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // Invariant 4: sole owner, closed exactly once.
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw_fd(), EPOLLIN, 7).unwrap();
        // Nothing signalled: a zero timeout returns no events.
        let mut events = Vec::new();
        ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());
        // Signalled (twice — signals coalesce): readable with our token.
        efd.signal();
        efd.signal();
        ep.wait(&mut events, None).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Drained: quiet again.
        efd.drain();
        events.clear();
        ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(sock.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42).unwrap();
        let mut events = Vec::new();
        ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "no data yet");

        peer.write_all(b"hi").unwrap();
        events.clear();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Level-triggered: still readable until the bytes are consumed.
        events.clear();
        ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        let mut buf = [0u8; 8];
        let mut s = &sock;
        assert_eq!(s.read(&mut buf).unwrap(), 2);

        // MOD to write interest: an idle socket's send buffer is ready.
        ep.modify(sock.as_raw_fd(), EPOLLOUT, 43).unwrap();
        events.clear();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 43 && e.writable));

        // Peer close surfaces as a closed edge once IN is re-armed.
        ep.modify(sock.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 44).unwrap();
        drop(peer);
        events.clear();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 44 && e.closed));

        ep.del(sock.as_raw_fd()).unwrap();
    }
}
