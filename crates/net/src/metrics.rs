//! Text exposition of a [`WireMetrics`] report.
//!
//! [`render_prometheus`] renders the METRICS frame's typed report in the
//! Prometheus text format (`metric{label="value"} number` lines with
//! `# HELP` / `# TYPE` headers), so a scrape endpoint or a cron job can
//! expose the server's histograms without any metrics dependency.
//! Latency histograms render as summaries — `quantile="0.5"` /
//! `quantile="0.99"` series from the log-bucketed sketch, plus the exact
//! `_count` / `_sum` / `_max` series — because the log buckets are the
//! sketch's internal shape, not a useful axis for dashboards.

use crate::proto::WireMetrics;
use std::fmt::Write;

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `m` in the Prometheus text exposition format.
pub fn render_prometheus(m: &WireMetrics) -> String {
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(w, "# HELP cpqx_epoch Current engine snapshot epoch.");
    let _ = writeln!(w, "# TYPE cpqx_epoch gauge");
    let _ = writeln!(w, "cpqx_epoch {}", m.epoch);

    let _ = writeln!(w, "# HELP cpqx_requests_total Requests served, by opcode.");
    let _ = writeln!(w, "# TYPE cpqx_requests_total counter");
    for (name, v) in [
        ("ping", m.net.ping_requests),
        ("query", m.net.query_requests),
        ("batch", m.net.batch_requests),
        ("update", m.net.update_requests),
        ("delta", m.net.delta_requests),
        ("stats", m.net.stats_requests),
        ("metrics", m.net.metrics_requests),
    ] {
        let _ = writeln!(w, "cpqx_requests_total{{op=\"{name}\"}} {v}");
    }
    let _ = writeln!(w, "# TYPE cpqx_connections_total counter");
    let _ = writeln!(w, "cpqx_connections_total {}", m.net.connections);
    let _ = writeln!(w, "# TYPE cpqx_rejected_connections_total counter");
    let _ = writeln!(w, "cpqx_rejected_connections_total {}", m.net.rejected_connections);
    let _ = writeln!(w, "# HELP cpqx_open_connections Connections currently open.");
    let _ = writeln!(w, "# TYPE cpqx_open_connections gauge");
    let _ = writeln!(w, "cpqx_open_connections {}", m.net.open_connections);
    let _ = writeln!(w, "# TYPE cpqx_error_responses_total counter");
    let _ = writeln!(w, "cpqx_error_responses_total {}", m.net.error_responses);

    for (metric, help, series) in [
        (
            "cpqx_op_latency_us",
            "Whole-operation latency in microseconds, by opcode.",
            m.ops.iter().map(|(op, h)| (op.name(), h)).collect::<Vec<_>>(),
        ),
        (
            "cpqx_stage_latency_us",
            "Pipeline-stage latency in microseconds, by stage.",
            m.stages.iter().map(|(stage, h)| (stage.name(), h)).collect::<Vec<_>>(),
        ),
    ] {
        if series.is_empty() {
            continue;
        }
        let _ = writeln!(w, "# HELP {metric} {help}");
        let _ = writeln!(w, "# TYPE {metric} summary");
        let label = if metric == "cpqx_op_latency_us" { "op" } else { "stage" };
        for (name, h) in series {
            for (q, qn) in [(0.5, "0.5"), (0.99, "0.99")] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(w, "{metric}{{{label}=\"{name}\",quantile=\"{qn}\"}} {v}");
                }
            }
            let _ = writeln!(w, "{metric}_count{{{label}=\"{name}\"}} {}", h.count());
            let _ = writeln!(w, "{metric}_sum{{{label}=\"{name}\"}} {}", h.sum());
            let _ = writeln!(w, "{metric}_max{{{label}=\"{name}\"}} {}", h.max());
        }
    }

    let _ = writeln!(w, "# HELP cpqx_slow_queries_total Queries over the slow-query threshold.");
    let _ = writeln!(w, "# TYPE cpqx_slow_queries_total counter");
    let _ = writeln!(w, "cpqx_slow_queries_total {}", m.slow_total);

    if !m.workload.is_empty() {
        let _ = writeln!(
            w,
            "# HELP cpqx_workload_queries_total Queries served, by canonical query key."
        );
        let _ = writeln!(w, "# TYPE cpqx_workload_queries_total counter");
        for (key, count) in &m.workload {
            let _ =
                writeln!(w, "cpqx_workload_queries_total{{key=\"{}\"}} {count}", escape_label(key));
        }
    }
    let _ = writeln!(w, "# TYPE cpqx_workload_keys_dropped_total counter");
    let _ = writeln!(w, "cpqx_workload_keys_dropped_total {}", m.workload_dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireNetCounters;
    use cpqx_obs::{Histogram, Op as ObsOp, Stage};
    use std::time::Duration;

    #[test]
    fn renders_all_sections() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 4000] {
            h.record_duration(Duration::from_micros(us));
        }
        let m = WireMetrics {
            epoch: 3,
            ops: vec![(ObsOp::Query, h.snapshot())],
            stages: vec![(Stage::Eval, h.snapshot())],
            net: WireNetCounters {
                connections: 1,
                query_requests: 4,
                open_connections: 1,
                ..WireNetCounters::default()
            },
            slow_total: 1,
            workload: vec![("(f\"quoted\")".into(), 4)],
            ..WireMetrics::default()
        };
        let text = render_prometheus(&m);
        assert!(text.contains("cpqx_epoch 3"));
        assert!(text.contains("cpqx_requests_total{op=\"query\"} 4"));
        assert!(text.contains("cpqx_open_connections 1"));
        assert!(text.contains("cpqx_op_latency_us{op=\"query\",quantile=\"0.99\"}"));
        assert!(text.contains("cpqx_op_latency_us_count{op=\"query\"} 4"));
        assert!(text.contains("cpqx_stage_latency_us_max{stage=\"eval\"} 4000"));
        assert!(text.contains("cpqx_slow_queries_total 1"));
        // Label values are escaped.
        assert!(text.contains("key=\"(f\\\"quoted\\\")\""));
        // Every line is a comment or a `name{...} value` sample.
        for line in text.lines() {
            assert!(line.starts_with('#') || line.rsplit_once(' ').is_some(), "bad line {line:?}");
        }
    }

    #[test]
    fn empty_report_renders_counters_only() {
        let text = render_prometheus(&WireMetrics::default());
        assert!(text.contains("cpqx_epoch 0"));
        assert!(!text.contains("cpqx_op_latency_us"));
        assert!(!text.contains("cpqx_workload_queries_total{"));
    }
}
