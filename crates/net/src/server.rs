//! The threaded TCP front-end over [`cpqx_engine::Engine`].
//!
//! Architecture: one **acceptor** thread blocks in `accept()` and feeds a
//! *bounded* connection queue; a fixed **worker pool** (reusing the
//! sizing default of [`cpqx_engine::pool`]) pops connections and serves
//! them to completion — handshake first, then a pipelined
//! request/response loop in strict arrival order. When the queue is full
//! the acceptor closes new connections immediately instead of queueing
//! unbounded work (counted in [`NetStats::rejected_connections`]).
//!
//! Consistency: every QUERY pins one engine snapshot for parse *and*
//! evaluation, and every BATCH parses and evaluates all its queries on
//! one pinned snapshot, so answers always carry the epoch they reflect —
//! maintenance running concurrently (via UPDATE frames or in-process
//! writers) never produces a torn read.
//!
//! Shutdown: [`Server::shutdown`] flips a stop flag, *self-connects* to
//! wake the acceptor out of `accept()` (no platform-specific socket
//! deregistration needed), closes the sockets of in-flight connections,
//! and joins every thread. Dropping the server does the same.

use crate::proto::{
    decode_request, encode_response, read_frame, write_frame, ErrorCode, FrameError, Request,
    Response, WireError, WireMetrics, WireNetCounters, WireOp, WireOutcome, WireSeqLabel,
    WireStats, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use cpqx_engine::delta::{Delta, DeltaOp, OpOutcome};
use cpqx_engine::{BatchOptions, Engine};
use cpqx_graph::{Graph, Label, LabelSeq};
use cpqx_obs::{Op as ObsOp, Stage, TraceKind};
use cpqx_query::parse_cpq;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Worker threads serving connections. Default: the machine's
    /// available parallelism, capped at 8.
    pub workers: usize,
    /// Bound on connections waiting for a free worker; beyond it the
    /// acceptor closes new connections immediately. Default 64.
    pub accept_backlog: usize,
    /// Maximum accepted request payload size. Default
    /// [`DEFAULT_MAX_FRAME`].
    pub max_frame_len: usize,
    /// Per-connection read timeout (an idle connection past it is
    /// closed). Default 30 s; `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout. Default 30 s.
    pub write_timeout: Option<Duration>,
    /// Worker threads each BATCH frame fans out over (see
    /// [`Engine::evaluate_batch_on`]); `None` uses the engine default.
    /// Default `Some(2)` so concurrent connections don't oversubscribe
    /// the host.
    pub batch_threads: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: cpqx_engine::pool::default_threads().min(8),
            accept_backlog: 64,
            max_frame_len: DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            batch_threads: Some(2),
        }
    }
}

/// Point-in-time front-end counters (see [`Server::net_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted and handed to a worker.
    pub connections: u64,
    /// Connections closed because the queue was full.
    pub rejected_connections: u64,
    /// PING requests served.
    pub ping_requests: u64,
    /// QUERY requests served.
    pub query_requests: u64,
    /// BATCH requests served.
    pub batch_requests: u64,
    /// UPDATE requests served.
    pub update_requests: u64,
    /// DELTA requests served.
    pub delta_requests: u64,
    /// STATS requests served.
    pub stats_requests: u64,
    /// METRICS requests served.
    pub metrics_requests: u64,
    /// Error frames sent.
    pub error_responses: u64,
}

#[derive(Default)]
struct NetCounters {
    connections: AtomicU64,
    rejected_connections: AtomicU64,
    ping: AtomicU64,
    query: AtomicU64,
    batch: AtomicU64,
    update: AtomicU64,
    delta: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    errors: AtomicU64,
}

impl NetCounters {
    fn report(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            ping_requests: self.ping.load(Ordering::Relaxed),
            query_requests: self.query.load(Ordering::Relaxed),
            batch_requests: self.batch.load(Ordering::Relaxed),
            update_requests: self.update.load(Ordering::Relaxed),
            delta_requests: self.delta.load(Ordering::Relaxed),
            stats_requests: self.stats.load(Ordering::Relaxed),
            metrics_requests: self.metrics.load(Ordering::Relaxed),
            error_responses: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    engine: Arc<Engine>,
    opts: ServerOptions,
    /// Shutdown publication edge: set once with `AcqRel`, observed with
    /// `Acquire` (classified by the cpqx-analyze atomic-ordering rule).
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    counters: NetCounters,
    /// Socket clones of in-flight connections, so shutdown can unblock
    /// workers parked in `read`.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// A running TCP front-end. Threads start in [`Server::bind`] and stop in
/// [`Server::shutdown`] (or on drop).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor and worker threads.
    pub fn bind(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            opts: opts.clone(),
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            counters: NetCounters::default(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpqx-net-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cpqx-net-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &s))
                .expect("spawn acceptor")
        };
        Ok(Server { shared, local_addr, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Current front-end counters.
    pub fn net_stats(&self) -> NetStats {
        self.shared.counters.report()
    }

    /// Stops accepting, closes in-flight connections, and joins every
    /// thread. Idempotent with drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // AcqRel, not SeqCst: `stop` is a plain publication edge
        // (Release the set, Acquire at every load) — nothing here needs
        // a single total order across atomics (see the cpqx-analyze
        // atomic-ordering rule).
        if !self.shared.stop.swap(true, Ordering::AcqRel) {
            // Wake the acceptor out of accept() by connecting to it; any
            // failure means it is already unblocked (e.g. listener gone).
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        }
        self.shared.queue_cv.notify_all();
        for conn in self.shared.conns.lock().unwrap().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connections still queued but never served: close them.
        self.shared.queue.lock().unwrap().clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn acceptor_loop(listener: &TcpListener, s: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if s.stop.load(Ordering::Acquire) {
                    break; // the wake-up connection (or a race with it)
                }
                let mut q = s.queue.lock().unwrap();
                if q.len() >= s.opts.accept_backlog {
                    drop(q);
                    s.counters.rejected_connections.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                } else {
                    q.push_back(stream);
                    drop(q);
                    s.queue_cv.notify_one();
                }
            }
            Err(_) => {
                if s.stop.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept failure (EMFILE, ECONNABORTED, …):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    s.queue_cv.notify_all();
}

fn worker_loop(s: &Shared) {
    loop {
        let stream = {
            let mut q = s.queue.lock().unwrap();
            loop {
                if let Some(stream) = q.pop_front() {
                    break Some(stream);
                }
                if s.stop.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = s.queue_cv.wait_timeout(q, Duration::from_millis(200)).unwrap();
                q = guard;
            }
        };
        let Some(stream) = stream else {
            return;
        };
        if s.stop.load(Ordering::Acquire) {
            return; // drop the queued connection on shutdown
        }
        serve_connection(s, stream);
    }
}

fn serve_connection(s: &Shared, stream: TcpStream) {
    let id = s.next_conn.fetch_add(1, Ordering::Relaxed);
    // Register a socket clone *under the conns lock with a stop
    // re-check*: shutdown closes registered sockets while holding this
    // lock, so a connection either registers before the close sweep (and
    // gets closed by it) or observes `stop` here and never serves — it
    // cannot slip between the two and stall shutdown on a blocking read.
    // A connection whose socket cannot be cloned is dropped outright for
    // the same reason.
    {
        let mut conns = s.conns.lock().unwrap();
        let Ok(clone) = stream.try_clone() else {
            return;
        };
        if s.stop.load(Ordering::Acquire) {
            return;
        }
        conns.insert(id, clone);
    }
    s.counters.connections.fetch_add(1, Ordering::Relaxed);
    let _ = run_connection(s, &stream); // any error just closes the conn
    s.conns.lock().unwrap().remove(&id);
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_connection(s: &Shared, stream: &TcpStream) -> io::Result<()> {
    stream.set_read_timeout(s.opts.read_timeout)?;
    stream.set_write_timeout(s.opts.write_timeout)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    let mut send = |resp: &Response| -> io::Result<()> {
        if matches!(resp, Response::Error(_)) {
            s.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        write_frame(&mut writer, &encode_response(resp))
    };

    // Handshake: the first frame must be a version-matching HELLO.
    let payload = match read_frame(&mut reader, s.opts.max_frame_len) {
        Ok(p) => p,
        Err(too_large @ FrameError::TooLarge { .. }) => {
            // PROTOCOL.md promises one final ERROR frame before the
            // desynchronized connection is dropped, handshake included.
            return send(&Response::Error(WireError::new(
                ErrorCode::BadFrame,
                too_large.to_string(),
            )));
        }
        Err(_) => return Ok(()),
    };
    match decode_request(&payload) {
        Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
            send(&Response::HelloAck { version })?;
        }
        Ok(Request::Hello { version }) => {
            return send(&Response::Error(WireError::new(
                ErrorCode::UnsupportedVersion,
                format!("server speaks protocol {PROTOCOL_VERSION}, client sent {version}"),
            )));
        }
        Ok(other) => {
            return send(&Response::Error(WireError::new(
                ErrorCode::BadFrame,
                format!("expected HELLO, got {other:?}"),
            )));
        }
        Err(e) => return send(&Response::Error(WireError::from(e))),
    }

    // Pipelined request loop: one response per request, arrival order.
    loop {
        if s.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let payload = match read_frame(&mut reader, s.opts.max_frame_len) {
            Ok(p) => p,
            Err(FrameError::Closed) => return Ok(()),
            Err(too_large @ FrameError::TooLarge { .. }) => {
                // The stream is desynchronized; report and drop.
                return send(&Response::Error(WireError::new(
                    ErrorCode::BadFrame,
                    too_large.to_string(),
                )));
            }
            Err(FrameError::Io(_)) => return Ok(()), // timeout or broken pipe
        };
        let resp = match decode_request(&payload) {
            // Decode failures leave the frame boundary intact, so the
            // connection survives them.
            Err(e) => Response::Error(WireError::from(e)),
            Ok(req) => handle(s, req),
        };
        send(&resp)?;
    }
}

/// Serves one decoded request. Pure with respect to the connection: all
/// I/O stays in [`run_connection`].
fn handle(s: &Shared, req: Request) -> Response {
    match req {
        Request::Hello { .. } => Response::Error(WireError::new(
            ErrorCode::BadFrame,
            "HELLO after handshake".to_string(),
        )),
        Request::Ping => {
            s.counters.ping.fetch_add(1, Ordering::Relaxed);
            let t0 = s.engine.obs().timer();
            if let Some(t0) = t0 {
                s.engine.obs().record_op(ObsOp::Ping, t0.elapsed());
            }
            Response::Pong
        }
        Request::Query(text) => {
            s.counters.query.fetch_add(1, Ordering::Relaxed);
            // The server owns the whole-request trace so the span tree
            // covers parse as well as the engine's plan/cache/eval
            // stages (query_traced records into the same builder).
            let obs = s.engine.obs();
            let mut trace = obs.begin(TraceKind::Query);
            // One snapshot for parse + evaluation: the answer's epoch is
            // exactly the version the label names were resolved against.
            let snap = s.engine.snapshot();
            let parse_timer = obs.timer();
            let parsed = parse_cpq(&text, snap.graph());
            obs.stage(Stage::Parse, parse_timer, trace.as_mut());
            let resp = match parsed {
                Ok(q) => {
                    let pairs = s.engine.query_traced(&snap, &q, trace.as_mut());
                    Response::Result { epoch: snap.epoch(), pairs: (*pairs).clone() }
                }
                Err(e) => Response::Error(WireError::from(e)),
            };
            if let Some(tb) = trace {
                obs.finish(tb);
            }
            resp
        }
        Request::Batch(texts) => {
            s.counters.batch.fetch_add(1, Ordering::Relaxed);
            let snap = s.engine.snapshot();
            let mut queries = Vec::with_capacity(texts.len());
            for (i, text) in texts.iter().enumerate() {
                match parse_cpq(text, snap.graph()) {
                    Ok(q) => queries.push(q),
                    Err(e) => {
                        let mut w = WireError::from(e);
                        w.message = format!("batch query {i}: {}", w.message);
                        return Response::Error(w);
                    }
                }
            }
            let opts = BatchOptions { threads: s.opts.batch_threads, ..BatchOptions::default() };
            let out = s.engine.evaluate_batch_on(&snap, &queries, opts);
            Response::BatchResult {
                epoch: out.epoch,
                results: out.results.iter().map(|r| (**r).clone()).collect(),
            }
        }
        Request::Update { insert, src, dst, label } => {
            s.counters.update.fetch_add(1, Ordering::Relaxed);
            // The legacy opaque form is one op of the typed delta path.
            let op = if insert {
                WireOp::InsertEdge { src, dst, label }
            } else {
                WireOp::DeleteEdge { src, dst, label }
            };
            match apply_wire_delta(s, &[op]) {
                // The ack epoch was determined under the engine's writer
                // lock — re-reading `engine.epoch()` here could see a
                // later concurrent writer's install.
                Ok(report) => {
                    Response::UpdateAck { applied: report.applied > 0, epoch: report.epoch }
                }
                Err(e) => Response::Error(e),
            }
        }
        Request::Delta(ops) => {
            s.counters.delta.fetch_add(1, Ordering::Relaxed);
            match apply_wire_delta(s, &ops) {
                Ok(report) => Response::DeltaAck {
                    epoch: report.epoch,
                    rebuilt: report.rebuilt,
                    outcomes: report.outcomes.iter().map(wire_outcome).collect(),
                },
                Err(e) => Response::Error(e),
            }
        }
        Request::Stats => {
            s.counters.stats.fetch_add(1, Ordering::Relaxed);
            let t0 = s.engine.obs().timer();
            let resp = Response::Stats(Box::new(wire_stats(s)));
            if let Some(t0) = t0 {
                s.engine.obs().record_op(ObsOp::Stats, t0.elapsed());
            }
            resp
        }
        Request::Metrics => {
            s.counters.metrics.fetch_add(1, Ordering::Relaxed);
            let t0 = s.engine.obs().timer();
            let resp = Response::Metrics(Box::new(wire_metrics(s)));
            // This request's own latency lands in the *next* report —
            // the snapshot above must not be mutated after it is taken.
            if let Some(t0) = t0 {
                s.engine.obs().record_op(ObsOp::Metrics, t0.elapsed());
            }
            resp
        }
    }
}

/// Resolves wire ops against the current snapshot's label table and
/// applies them as one atomic engine transaction. Unknown labels,
/// over-long interests and engine-side rejections (e.g. out-of-range
/// vertices) all come back as [`ErrorCode::BadUpdate`] error frames
/// naming the offending op; nothing is applied in that case.
fn apply_wire_delta(s: &Shared, ops: &[WireOp]) -> Result<cpqx_engine::DeltaReport, WireError> {
    // Label ids are append-only, so resolving against the snapshot
    // current *now* stays valid when the engine applies the delta to a
    // possibly newer clone under its writer lock.
    let snap = s.engine.snapshot();
    let delta = resolve_ops(snap.graph(), ops)?;
    s.engine.apply_delta(&delta).map_err(|e| {
        WireError::new(ErrorCode::BadUpdate, format!("delta op {}: {}", e.op_index, e.reason))
    })
}

fn resolve_ops(g: &Graph, ops: &[WireOp]) -> Result<Delta, WireError> {
    let label = |name: &str, i: usize| -> Result<Label, WireError> {
        g.label_named(name).ok_or_else(|| {
            WireError::new(ErrorCode::BadUpdate, format!("delta op {i}: unknown label {name:?}"))
        })
    };
    let seq = |steps: &[WireSeqLabel], i: usize| -> Result<LabelSeq, WireError> {
        steps
            .iter()
            .map(|s| label(&s.label, i).map(|l| if s.inverse { l.inv() } else { l.fwd() }))
            .collect::<Result<Vec<_>, _>>()
            .map(|ls| LabelSeq::from_slice(&ls))
    };
    // Vertex ids are pre-validated here, against the snapshot's count
    // plus any preceding in-delta AddVertex ops, so a delta that can
    // only be rejected never reaches the engine's writer lock (where
    // rejection would cost a full graph + index clone). Ids only grow,
    // so passing here never turns into a spurious engine-side panic —
    // the engine still re-validates against the clone it mutates.
    let check = |v: u32, bound: u32, i: usize| -> Result<u32, WireError> {
        if v < bound {
            Ok(v)
        } else {
            Err(WireError::new(
                ErrorCode::BadUpdate,
                format!("delta op {i}: vertex {v} out of range (graph has {bound})"),
            ))
        }
    };
    let mut vertices = g.vertex_count();
    let mut resolved = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        resolved.push(match op {
            WireOp::InsertEdge { src, dst, label: l } => DeltaOp::InsertEdge {
                src: check(*src, vertices, i)?,
                dst: check(*dst, vertices, i)?,
                label: label(l, i)?,
            },
            WireOp::DeleteEdge { src, dst, label: l } => DeltaOp::DeleteEdge {
                src: check(*src, vertices, i)?,
                dst: check(*dst, vertices, i)?,
                label: label(l, i)?,
            },
            WireOp::ChangeEdgeLabel { src, dst, from, to } => DeltaOp::ChangeEdgeLabel {
                src: check(*src, vertices, i)?,
                dst: check(*dst, vertices, i)?,
                from: label(from, i)?,
                to: label(to, i)?,
            },
            WireOp::AddVertex { name } => {
                vertices += 1;
                DeltaOp::AddVertex { name: name.clone() }
            }
            WireOp::DeleteVertex { vertex } => {
                DeltaOp::DeleteVertex { vertex: check(*vertex, vertices, i)? }
            }
            WireOp::InsertInterest { seq: s } => DeltaOp::InsertInterest { seq: seq(s, i)? },
            WireOp::DeleteInterest { seq: s } => DeltaOp::DeleteInterest { seq: seq(s, i)? },
        });
    }
    Ok(Delta::from(resolved))
}

fn wire_outcome(o: &OpOutcome) -> WireOutcome {
    match o {
        OpOutcome::Applied => WireOutcome::Applied,
        OpOutcome::Noop => WireOutcome::Noop,
        OpOutcome::VertexAdded(v) => WireOutcome::VertexAdded(*v),
    }
}

fn wire_stats(s: &Shared) -> WireStats {
    let engine = s.engine.stats();
    let net = s.counters.report();
    WireStats {
        epoch: s.engine.epoch(),
        queries: engine.queries,
        result_hits: engine.result_hits,
        result_misses: engine.result_misses,
        plan_hits: engine.plan_hits,
        plan_misses: engine.plan_misses,
        snapshot_swaps: engine.snapshot_swaps,
        invalidated_results: engine.invalidated_results,
        rejected_admissions: engine.rejected_admissions,
        delta_transactions: engine.delta_transactions,
        lazy_update_ops: engine.lazy_update_ops,
        rebuilds: engine.rebuilds,
        auto_rebuilds: engine.auto_rebuilds,
        cow_chunks_copied: engine.cow_chunks_copied,
        cow_chunks_shared: engine.cow_chunks_shared,
        class_slots: engine.class_slots,
        baseline_classes: engine.baseline_classes,
        p50_us: engine.p50.as_micros().min(u64::MAX as u128) as u64,
        p99_us: engine.p99.as_micros().min(u64::MAX as u128) as u64,
        ping_requests: net.ping_requests,
        query_requests: net.query_requests,
        batch_requests: net.batch_requests,
        update_requests: net.update_requests,
        delta_requests: net.delta_requests,
        stats_requests: net.stats_requests,
        error_responses: net.error_responses,
        connections: net.connections,
        wal_appends: engine.wal_appends,
        wal_bytes: engine.wal_bytes,
        snapshots_written: engine.snapshots_written,
        snapshot_chunks_skipped: engine.snapshot_chunks_skipped,
    }
}

fn wire_metrics(s: &Shared) -> WireMetrics {
    let obs = s.engine.obs();
    let net = s.counters.report();
    // Empty histograms are omitted: the common deployment exercises a
    // handful of opcodes/stages, and the sparse form keeps the frame
    // proportional to actual traffic.
    let mut ops = Vec::new();
    for op in ObsOp::ALL {
        let h = obs.op_snapshot(op);
        if h.count() > 0 {
            ops.push((op, h));
        }
    }
    let mut stages = Vec::new();
    for stage in Stage::ALL {
        let h = obs.stage_snapshot(stage);
        if h.count() > 0 {
            stages.push((stage, h));
        }
    }
    WireMetrics {
        epoch: s.engine.epoch(),
        ops,
        stages,
        net: WireNetCounters {
            connections: net.connections,
            rejected_connections: net.rejected_connections,
            ping_requests: net.ping_requests,
            query_requests: net.query_requests,
            batch_requests: net.batch_requests,
            update_requests: net.update_requests,
            delta_requests: net.delta_requests,
            stats_requests: net.stats_requests,
            metrics_requests: net.metrics_requests,
            error_responses: net.error_responses,
        },
        slow: obs.slow_queries(),
        slow_total: obs.slow_query_count(),
        workload: obs.workload_counts(),
        workload_dropped: obs.workload_dropped(),
    }
}
