//! The event-driven TCP front-end over [`cpqx_engine::Engine`].
//!
//! Architecture: one **event-loop** thread owns the nonblocking
//! listener and every connection socket, multiplexed through raw
//! level-triggered `epoll` ([`crate::sys`]). The loop accepts, reads,
//! reassembles frames ([`crate::proto::FrameAssembler`]), answers cheap
//! requests inline and hands evaluation work (QUERY/BATCH/UPDATE/DELTA)
//! to a fixed **worker pool**; completions return over a shared list
//! plus an eventfd wake and are written out by the loop in strict
//! per-connection arrival order (see [`crate::event`] and
//! [`crate::conn`]). An idle connection therefore costs two buffers, not
//! a parked thread — thousands of idle clients coexist with a handful
//! of workers.
//!
//! Backpressure: per-connection pipeline and write-backlog bounds pause
//! reading from a peer that overruns the server, and a global
//! [`ServerOptions::max_connections`] cap rejects new connections with
//! a best-effort BUSY error frame (counted in
//! [`NetStats::rejected_connections`]).
//!
//! Consistency: every QUERY pins one engine snapshot for parse *and*
//! evaluation, and every BATCH parses and evaluates all its queries on
//! one pinned snapshot, so answers always carry the epoch they reflect —
//! maintenance running concurrently (via UPDATE frames or in-process
//! writers) never produces a torn read.
//!
//! Shutdown: [`Server::shutdown`] flips a stop flag, signals the
//! event-loop's wake eventfd, and joins every thread; the loop shuts
//! down every connection socket on its way out (accepted-but-unserved
//! ones included), so a peer blocked in a read observes EOF.

use crate::event::{event_loop, worker_loop, Completion, Job};
use crate::proto::{
    ErrorCode, Request, Response, WireError, WireMetrics, WireNetCounters, WireOp, WireOutcome,
    WireSeqLabel, WireStats, DEFAULT_MAX_FRAME,
};
use crate::sys::EventFd;
use cpqx_engine::delta::{Delta, DeltaOp, OpOutcome};
use cpqx_engine::{BatchOptions, Engine};
use cpqx_graph::{Graph, Label, LabelSeq};
use cpqx_obs::{Op as ObsOp, Stage, TraceKind};
use cpqx_query::parse_cpq;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Worker threads evaluating queries and deltas. Default: the
    /// machine's available parallelism, capped at 8. Workers never
    /// touch sockets, so this bounds CPU, not concurrency.
    pub workers: usize,
    /// Global cap on concurrently open connections; beyond it new
    /// connections get a best-effort BUSY error frame and are closed.
    /// Default 10 000.
    pub max_connections: usize,
    /// Per-connection bound on requests in flight (decoded, response
    /// not yet flushed). Past it the loop stops reading from that
    /// connection until responses drain. Default 128.
    pub max_pipeline: usize,
    /// Maximum accepted request payload size. Default
    /// [`DEFAULT_MAX_FRAME`].
    pub max_frame_len: usize,
    /// Per-connection idle timeout: a connection with no request in
    /// flight and no bytes arriving past it is closed — cleanly at a
    /// frame boundary, with a final TIMEOUT error frame if it dies
    /// mid-frame (the stream is desynchronized either way). Default
    /// 30 s; `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout: a peer that accepts no response
    /// bytes for this long is dropped. Default 30 s.
    pub write_timeout: Option<Duration>,
    /// Worker threads each BATCH frame fans out over (see
    /// [`Engine::evaluate_batch_on`]); `None` uses the engine default.
    /// Default `Some(2)` so concurrent connections don't oversubscribe
    /// the host.
    pub batch_threads: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: cpqx_engine::pool::default_threads().min(8),
            max_connections: 10_000,
            max_pipeline: 128,
            max_frame_len: DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            batch_threads: Some(2),
        }
    }
}

/// Point-in-time front-end counters (see [`Server::net_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted and registered with the event loop.
    pub connections: u64,
    /// Connections refused at the [`ServerOptions::max_connections`]
    /// cap (each got a best-effort BUSY error frame).
    pub rejected_connections: u64,
    /// Connections currently open (a gauge, not a counter).
    pub open_connections: u64,
    /// PING requests served.
    pub ping_requests: u64,
    /// QUERY requests served.
    pub query_requests: u64,
    /// BATCH requests served.
    pub batch_requests: u64,
    /// UPDATE requests served.
    pub update_requests: u64,
    /// DELTA requests served.
    pub delta_requests: u64,
    /// STATS requests served.
    pub stats_requests: u64,
    /// METRICS requests served.
    pub metrics_requests: u64,
    /// Error frames sent (BUSY rejections included).
    pub error_responses: u64,
}

#[derive(Default)]
pub(crate) struct NetCounters {
    pub(crate) connections: AtomicU64,
    pub(crate) rejected_connections: AtomicU64,
    /// Gauge: incremented on register, decremented on close.
    pub(crate) open: AtomicU64,
    pub(crate) ping: AtomicU64,
    pub(crate) query: AtomicU64,
    pub(crate) batch: AtomicU64,
    pub(crate) update: AtomicU64,
    pub(crate) delta: AtomicU64,
    pub(crate) stats: AtomicU64,
    pub(crate) metrics: AtomicU64,
    pub(crate) errors: AtomicU64,
}

impl NetCounters {
    fn report(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            open_connections: self.open.load(Ordering::Relaxed),
            ping_requests: self.ping.load(Ordering::Relaxed),
            query_requests: self.query.load(Ordering::Relaxed),
            batch_requests: self.batch.load(Ordering::Relaxed),
            update_requests: self.update.load(Ordering::Relaxed),
            delta_requests: self.delta.load(Ordering::Relaxed),
            stats_requests: self.stats.load(Ordering::Relaxed),
            metrics_requests: self.metrics.load(Ordering::Relaxed),
            error_responses: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// State shared by the event loop, the workers and the handle.
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) opts: ServerOptions,
    /// Shutdown publication edge: set once with `AcqRel`, observed with
    /// `Acquire` (classified by the cpqx-analyze atomic-ordering rule).
    pub(crate) stop: AtomicBool,
    /// Evaluation work queued for the pool (event loop → workers).
    pub(crate) jobs: Mutex<VecDeque<Job>>,
    pub(crate) jobs_cv: Condvar,
    /// Finished evaluations awaiting the loop (workers → event loop).
    pub(crate) done: Mutex<Vec<Completion>>,
    /// Wakes the event loop out of `epoll_wait` (completions posted,
    /// shutdown requested).
    pub(crate) waker: EventFd,
    pub(crate) counters: NetCounters,
}

/// A running TCP front-end. Threads start in [`Server::bind`] and stop in
/// [`Server::shutdown`] (or on drop).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the event-loop and worker threads.
    pub fn bind(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            opts: opts.clone(),
            stop: AtomicBool::new(false),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            done: Mutex::new(Vec::new()),
            waker: EventFd::new()?,
            counters: NetCounters::default(),
        });
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cpqx-net-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker")
            })
            .collect();
        let event = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cpqx-net-event".into())
                .spawn(move || event_loop(&s, listener))
                .expect("spawn event loop")
        };
        Ok(Server { shared, local_addr, event: Some(event), workers })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Current front-end counters.
    pub fn net_stats(&self) -> NetStats {
        self.shared.counters.report()
    }

    /// Stops accepting, closes every connection (queued work included),
    /// and joins every thread. Idempotent with drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // AcqRel, not SeqCst: `stop` is a plain publication edge
        // (Release the set, Acquire at every load) — nothing here needs
        // a single total order across atomics (see the cpqx-analyze
        // atomic-ordering rule).
        self.shared.stop.swap(true, Ordering::AcqRel);
        // Wake the event loop out of epoll_wait and the workers out of
        // their condvar; the loop shuts down every connection socket
        // (even ones accepted but never yet served) before exiting.
        self.shared.waker.signal();
        self.shared.jobs_cv.notify_all();
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves one decoded request. Pure with respect to the connection: all
/// socket I/O stays on the event loop ([`crate::event`]).
pub(crate) fn handle(s: &Shared, req: Request) -> Response {
    match req {
        Request::Hello { .. } => Response::Error(WireError::new(
            ErrorCode::BadFrame,
            "HELLO after handshake".to_string(),
        )),
        Request::Ping => {
            s.counters.ping.fetch_add(1, Ordering::Relaxed);
            let t0 = s.engine.obs().timer();
            if let Some(t0) = t0 {
                s.engine.obs().record_op(ObsOp::Ping, t0.elapsed());
            }
            Response::Pong
        }
        Request::Query(text) => {
            s.counters.query.fetch_add(1, Ordering::Relaxed);
            // The server owns the whole-request trace so the span tree
            // covers parse as well as the engine's plan/cache/eval
            // stages (query_traced records into the same builder).
            let obs = s.engine.obs();
            let mut trace = obs.begin(TraceKind::Query);
            // One snapshot for parse + evaluation: the answer's epoch is
            // exactly the version the label names were resolved against.
            let snap = s.engine.snapshot();
            let parse_timer = obs.timer();
            let parsed = parse_cpq(&text, snap.graph());
            obs.stage(Stage::Parse, parse_timer, trace.as_mut());
            let resp = match parsed {
                Ok(q) => {
                    let pairs = s.engine.query_traced(&snap, &q, trace.as_mut());
                    Response::Result { epoch: snap.epoch(), pairs: (*pairs).clone() }
                }
                Err(e) => Response::Error(WireError::from(e)),
            };
            if let Some(tb) = trace {
                obs.finish(tb);
            }
            resp
        }
        Request::Batch(texts) => {
            s.counters.batch.fetch_add(1, Ordering::Relaxed);
            let snap = s.engine.snapshot();
            let mut queries = Vec::with_capacity(texts.len());
            for (i, text) in texts.iter().enumerate() {
                match parse_cpq(text, snap.graph()) {
                    Ok(q) => queries.push(q),
                    Err(e) => {
                        let mut w = WireError::from(e);
                        w.message = format!("batch query {i}: {}", w.message);
                        return Response::Error(w);
                    }
                }
            }
            let opts = BatchOptions { threads: s.opts.batch_threads, ..BatchOptions::default() };
            let out = s.engine.evaluate_batch_on(&snap, &queries, opts);
            Response::BatchResult {
                epoch: out.epoch,
                results: out.results.iter().map(|r| (**r).clone()).collect(),
            }
        }
        Request::Update { insert, src, dst, label } => {
            s.counters.update.fetch_add(1, Ordering::Relaxed);
            // The legacy opaque form is one op of the typed delta path.
            let op = if insert {
                WireOp::InsertEdge { src, dst, label }
            } else {
                WireOp::DeleteEdge { src, dst, label }
            };
            match apply_wire_delta(s, &[op]) {
                // The ack epoch was determined under the engine's writer
                // lock — re-reading `engine.epoch()` here could see a
                // later concurrent writer's install.
                Ok(report) => {
                    Response::UpdateAck { applied: report.applied > 0, epoch: report.epoch }
                }
                Err(e) => Response::Error(e),
            }
        }
        Request::Delta(ops) => {
            s.counters.delta.fetch_add(1, Ordering::Relaxed);
            match apply_wire_delta(s, &ops) {
                Ok(report) => Response::DeltaAck {
                    epoch: report.epoch,
                    rebuilt: report.rebuilt,
                    outcomes: report.outcomes.iter().map(wire_outcome).collect(),
                },
                Err(e) => Response::Error(e),
            }
        }
        Request::Stats => {
            s.counters.stats.fetch_add(1, Ordering::Relaxed);
            let t0 = s.engine.obs().timer();
            let resp = Response::Stats(Box::new(wire_stats(s)));
            if let Some(t0) = t0 {
                s.engine.obs().record_op(ObsOp::Stats, t0.elapsed());
            }
            resp
        }
        Request::Metrics => {
            s.counters.metrics.fetch_add(1, Ordering::Relaxed);
            let t0 = s.engine.obs().timer();
            let resp = Response::Metrics(Box::new(wire_metrics(s)));
            // This request's own latency lands in the *next* report —
            // the snapshot above must not be mutated after it is taken.
            if let Some(t0) = t0 {
                s.engine.obs().record_op(ObsOp::Metrics, t0.elapsed());
            }
            resp
        }
    }
}

/// Resolves wire ops against the current snapshot's label table and
/// applies them as one atomic engine transaction. Unknown labels,
/// over-long interests and engine-side rejections (e.g. out-of-range
/// vertices) all come back as [`ErrorCode::BadUpdate`] error frames
/// naming the offending op; nothing is applied in that case.
fn apply_wire_delta(s: &Shared, ops: &[WireOp]) -> Result<cpqx_engine::DeltaReport, WireError> {
    // Label ids are append-only, so resolving against the snapshot
    // current *now* stays valid when the engine applies the delta to a
    // possibly newer clone under its writer lock.
    let snap = s.engine.snapshot();
    let delta = resolve_ops(snap.graph(), ops)?;
    s.engine.apply_delta(&delta).map_err(|e| {
        WireError::new(ErrorCode::BadUpdate, format!("delta op {}: {}", e.op_index, e.reason))
    })
}

fn resolve_ops(g: &Graph, ops: &[WireOp]) -> Result<Delta, WireError> {
    let label = |name: &str, i: usize| -> Result<Label, WireError> {
        g.label_named(name).ok_or_else(|| {
            WireError::new(ErrorCode::BadUpdate, format!("delta op {i}: unknown label {name:?}"))
        })
    };
    let seq = |steps: &[WireSeqLabel], i: usize| -> Result<LabelSeq, WireError> {
        steps
            .iter()
            .map(|s| label(&s.label, i).map(|l| if s.inverse { l.inv() } else { l.fwd() }))
            .collect::<Result<Vec<_>, _>>()
            .map(|ls| LabelSeq::from_slice(&ls))
    };
    // Vertex ids are pre-validated here, against the snapshot's count
    // plus any preceding in-delta AddVertex ops, so a delta that can
    // only be rejected never reaches the engine's writer lock (where
    // rejection would cost a full graph + index clone). Ids only grow,
    // so passing here never turns into a spurious engine-side panic —
    // the engine still re-validates against the clone it mutates.
    let check = |v: u32, bound: u32, i: usize| -> Result<u32, WireError> {
        if v < bound {
            Ok(v)
        } else {
            Err(WireError::new(
                ErrorCode::BadUpdate,
                format!("delta op {i}: vertex {v} out of range (graph has {bound})"),
            ))
        }
    };
    let mut vertices = g.vertex_count();
    let mut resolved = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        resolved.push(match op {
            WireOp::InsertEdge { src, dst, label: l } => DeltaOp::InsertEdge {
                src: check(*src, vertices, i)?,
                dst: check(*dst, vertices, i)?,
                label: label(l, i)?,
            },
            WireOp::DeleteEdge { src, dst, label: l } => DeltaOp::DeleteEdge {
                src: check(*src, vertices, i)?,
                dst: check(*dst, vertices, i)?,
                label: label(l, i)?,
            },
            WireOp::ChangeEdgeLabel { src, dst, from, to } => DeltaOp::ChangeEdgeLabel {
                src: check(*src, vertices, i)?,
                dst: check(*dst, vertices, i)?,
                from: label(from, i)?,
                to: label(to, i)?,
            },
            WireOp::AddVertex { name } => {
                vertices += 1;
                DeltaOp::AddVertex { name: name.clone() }
            }
            WireOp::DeleteVertex { vertex } => {
                DeltaOp::DeleteVertex { vertex: check(*vertex, vertices, i)? }
            }
            WireOp::InsertInterest { seq: s } => DeltaOp::InsertInterest { seq: seq(s, i)? },
            WireOp::DeleteInterest { seq: s } => DeltaOp::DeleteInterest { seq: seq(s, i)? },
        });
    }
    Ok(Delta::from(resolved))
}

fn wire_outcome(o: &OpOutcome) -> WireOutcome {
    match o {
        OpOutcome::Applied => WireOutcome::Applied,
        OpOutcome::Noop => WireOutcome::Noop,
        OpOutcome::VertexAdded(v) => WireOutcome::VertexAdded(*v),
    }
}

fn wire_stats(s: &Shared) -> WireStats {
    let engine = s.engine.stats();
    let net = s.counters.report();
    WireStats {
        epoch: s.engine.epoch(),
        queries: engine.queries,
        result_hits: engine.result_hits,
        result_misses: engine.result_misses,
        plan_hits: engine.plan_hits,
        plan_misses: engine.plan_misses,
        snapshot_swaps: engine.snapshot_swaps,
        invalidated_results: engine.invalidated_results,
        rejected_admissions: engine.rejected_admissions,
        delta_transactions: engine.delta_transactions,
        lazy_update_ops: engine.lazy_update_ops,
        rebuilds: engine.rebuilds,
        auto_rebuilds: engine.auto_rebuilds,
        cow_chunks_copied: engine.cow_chunks_copied,
        cow_chunks_shared: engine.cow_chunks_shared,
        class_slots: engine.class_slots,
        baseline_classes: engine.baseline_classes,
        p50_us: engine.p50.as_micros().min(u64::MAX as u128) as u64,
        p99_us: engine.p99.as_micros().min(u64::MAX as u128) as u64,
        ping_requests: net.ping_requests,
        query_requests: net.query_requests,
        batch_requests: net.batch_requests,
        update_requests: net.update_requests,
        delta_requests: net.delta_requests,
        stats_requests: net.stats_requests,
        metrics_requests: net.metrics_requests,
        error_responses: net.error_responses,
        connections: net.connections,
        rejected_connections: net.rejected_connections,
        wal_appends: engine.wal_appends,
        wal_bytes: engine.wal_bytes,
        snapshots_written: engine.snapshots_written,
        snapshot_chunks_skipped: engine.snapshot_chunks_skipped,
    }
}

fn wire_metrics(s: &Shared) -> WireMetrics {
    let obs = s.engine.obs();
    let net = s.counters.report();
    // Empty histograms are omitted: the common deployment exercises a
    // handful of opcodes/stages, and the sparse form keeps the frame
    // proportional to actual traffic.
    let mut ops = Vec::new();
    for op in ObsOp::ALL {
        let h = obs.op_snapshot(op);
        if h.count() > 0 {
            ops.push((op, h));
        }
    }
    let mut stages = Vec::new();
    for stage in Stage::ALL {
        let h = obs.stage_snapshot(stage);
        if h.count() > 0 {
            stages.push((stage, h));
        }
    }
    WireMetrics {
        epoch: s.engine.epoch(),
        ops,
        stages,
        net: WireNetCounters {
            connections: net.connections,
            rejected_connections: net.rejected_connections,
            ping_requests: net.ping_requests,
            query_requests: net.query_requests,
            batch_requests: net.batch_requests,
            update_requests: net.update_requests,
            delta_requests: net.delta_requests,
            stats_requests: net.stats_requests,
            metrics_requests: net.metrics_requests,
            error_responses: net.error_responses,
            open_connections: net.open_connections,
        },
        slow: obs.slow_queries(),
        slow_total: obs.slow_query_count(),
        workload: obs.workload_counts(),
        workload_dropped: obs.workload_dropped(),
    }
}
