//! The event loop: readiness-based serving on raw `epoll`.
//!
//! One thread owns the nonblocking listener, every connection socket and
//! a coarse timer wheel, and multiplexes them through [`crate::sys`]'s
//! level-triggered epoll wrapper. Workers never see a socket: the loop
//! decodes frames, answers cheap requests (PING/STATS/METRICS,
//! handshake, decode errors) inline, and hands evaluation work
//! (QUERY/BATCH/UPDATE/DELTA) to the pool as [`Job`]s; finished
//! [`Completion`]s come back over a mutex'd list plus an eventfd wake,
//! and the loop writes them out through each connection's ordered slot
//! queue — so per-connection arrival order survives any worker
//! interleaving, and an idle connection costs two buffers instead of a
//! parked thread.
//!
//! Backpressure has three rungs: a per-connection pipeline bound (reads
//! pause while too many requests are in flight), a write-backlog bound
//! (reads pause while the peer is not draining responses), and a global
//! connection cap (new connections get a best-effort
//! [`ErrorCode::Busy`] error frame, then close).
//!
//! Timeouts live on a hashed timer wheel, not on socket options: each
//! connection carries an authoritative deadline (idle or
//! write-progress) and is lazily filed under a wheel tick; a visit
//! whose deadline moved simply re-files. An idle timeout at a frame
//! boundary closes cleanly; one that lands mid-frame means the stream
//! is desynchronized, so the connection gets the PROTOCOL.md-promised
//! final [`ErrorCode::Timeout`] error frame before the close.

use crate::conn::{Conn, ConnState, ReadStatus, READ_CHUNK};
use crate::proto::{
    decode_request, encode_response, ErrorCode, Request, Response, WireError, PROTOCOL_VERSION,
};
use crate::server::{handle, Shared};
use crate::sys::{Epoll, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use cpqx_obs::Stage;
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Token of the wake-up eventfd.
const TOKEN_WAKER: u64 = 1;
/// First connection token.
const TOKEN_BASE: u64 = 2;

/// Pause reading from a connection while this many encoded response
/// bytes sit unsent (the peer is not draining its side).
const WBUF_PAUSE: usize = 1 << 20;

/// One evaluation request handed to the worker pool.
pub(crate) struct Job {
    /// Connection token the response slot belongs to.
    conn: u64,
    /// Reserved slot in that connection's response queue.
    seq: u64,
    req: Request,
    /// Enqueue instant (when obs is enabled) — the Evaluate stage
    /// includes queue wait, so the histogram shows client-experienced
    /// evaluation latency.
    queued: Option<Instant>,
}

/// One finished evaluation travelling back to the event loop.
pub(crate) struct Completion {
    conn: u64,
    seq: u64,
    resp: Response,
}

/// A hashed timer wheel with coarse ticks. Slots hold connection
/// tokens; entries are lazy — the connection's own deadline is
/// authoritative and a premature visit re-files.
struct TimerWheel {
    slots: Vec<Vec<u64>>,
    tick: Duration,
    start: Instant,
    /// First tick not yet processed.
    next_tick: u64,
}

const WHEEL_SLOTS: usize = 64;

impl TimerWheel {
    fn new(tick: Duration, start: Instant) -> TimerWheel {
        TimerWheel { slots: vec![Vec::new(); WHEEL_SLOTS], tick, start, next_tick: 1 }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let ms = t.saturating_duration_since(self.start).as_millis();
        (ms / self.tick.as_millis().max(1)) as u64
    }

    /// Files `token` under `tick` (clamped to the next unprocessed tick
    /// so nothing lands in the past). Returns the filed tick.
    fn file(&mut self, token: u64, tick: u64) -> u64 {
        let tick = tick.max(self.next_tick);
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(token);
        tick
    }

    /// Drains every slot whose tick has passed, collecting candidates.
    fn due(&mut self, now: Instant, out: &mut Vec<u64>) {
        let current = self.tick_of(now);
        // A slot holds entries for ticks ≡ slot (mod WHEEL_SLOTS); a
        // full lap visits each slot once, so bound the sweep by one lap.
        let until = current.min(self.next_tick + WHEEL_SLOTS as u64);
        while self.next_tick <= until {
            let idx = (self.next_tick % WHEEL_SLOTS as u64) as usize;
            out.append(&mut self.slots[idx]);
            self.next_tick += 1;
        }
    }
}

/// Spawned once per server: owns the listener and every connection.
pub(crate) fn event_loop(s: &Shared, listener: TcpListener) {
    if run_loop(s, listener).is_err() {
        // A failed epoll/eventfd setup (or a fatal wait error) means the
        // server cannot serve; flip the stop flag so workers and
        // `shutdown` don't hang waiting for a loop that already exited.
        s.stop.swap(true, Ordering::AcqRel);
        s.jobs_cv.notify_all();
    }
}

/// Everything the loop body threads through its helpers.
struct Loop<'a> {
    s: &'a Shared,
    epoll: Epoll,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
}

fn run_loop(s: &Shared, listener: TcpListener) -> std::io::Result<()> {
    use std::os::unix::io::AsRawFd;
    let epoll = Epoll::new()?;
    listener.set_nonblocking(true)?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(s.waker.raw_fd(), EPOLLIN, TOKEN_WAKER)?;

    // Tick granularity: fine enough that a timeout fires within ~1/4 of
    // the configured bound, bounded to [5ms, 1s] so short test timeouts
    // stay accurate and production defaults don't busy-wake.
    let shortest = [s.opts.read_timeout, s.opts.write_timeout]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or(Duration::from_secs(30));
    let tick = (shortest / 4).clamp(Duration::from_millis(5), Duration::from_secs(1));
    let timers_armed = s.opts.read_timeout.is_some() || s.opts.write_timeout.is_some();

    let mut lp = Loop {
        s,
        epoll,
        conns: HashMap::new(),
        wheel: TimerWheel::new(tick, Instant::now()),
        next_token: TOKEN_BASE,
    };
    let mut events = Vec::new();
    let mut chunk = Box::new([0u8; READ_CHUNK]);
    let mut due = Vec::new();

    loop {
        events.clear();
        let timeout = if timers_armed && !lp.conns.is_empty() { Some(tick) } else { None };
        lp.epoll.wait(&mut events, timeout)?;
        if s.stop.load(Ordering::Acquire) {
            break;
        }
        let now = Instant::now();
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => accept_burst(&mut lp, &listener, now),
                TOKEN_WAKER => s.waker.drain(),
                token => {
                    let keep =
                        on_conn_event(&mut lp, token, ev.readable, ev.closed, &mut chunk, now);
                    if !keep {
                        close_conn(&mut lp, token);
                    }
                }
            }
        }
        drain_completions(&mut lp, now);
        due.clear();
        lp.wheel.due(now, &mut due);
        for token in due.drain(..) {
            check_deadline(&mut lp, token, now);
        }
    }

    // Shutdown: close every connection's socket explicitly, so a peer
    // blocked in a read observes EOF instead of a silent leak (including
    // connections accepted but never yet served — the old thread-pool
    // core dropped those without a shutdown).
    for (_, conn) in lp.conns.drain() {
        let _ = conn.stream.shutdown(Shutdown::Both);
        s.counters.open.fetch_sub(1, Ordering::Relaxed);
    }
    Ok(())
}

/// Accepts until `WouldBlock`; over-capacity connections get a
/// best-effort BUSY error frame before the close.
fn accept_burst(lp: &mut Loop<'_>, listener: &TcpListener, now: Instant) {
    use std::os::unix::io::AsRawFd;
    let obs = lp.s.engine.obs();
    let t0 = obs.timer();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if lp.conns.len() >= lp.s.opts.max_connections {
                    reject_busy(lp.s, &stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue; // dropped: closes the socket
                }
                let _ = stream.set_nodelay(true);
                let token = lp.next_token;
                lp.next_token += 1;
                let fd = stream.as_raw_fd();
                let mut conn = Conn::new(stream, lp.s.opts.max_frame_len, now);
                conn.interest = EPOLLIN | EPOLLRDHUP;
                if lp.epoll.add(fd, conn.interest, token).is_err() {
                    continue;
                }
                lp.s.counters.connections.fetch_add(1, Ordering::Relaxed);
                lp.s.counters.open.fetch_add(1, Ordering::Relaxed);
                lp.conns.insert(token, conn);
                if !pump(lp, token, now) {
                    close_conn(lp, token);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, …):
                // back off briefly instead of spinning the loop.
                std::thread::sleep(Duration::from_millis(10));
                break;
            }
        }
    }
    obs.stage(Stage::Accept, t0, None);
}

/// Sends one best-effort BUSY error frame and closes. The write is a
/// single nonblocking attempt: the frame is ~60 bytes and a fresh
/// socket's send buffer always holds it unless the peer already died —
/// in which case nobody is reading anyway.
fn reject_busy(s: &Shared, stream: &TcpStream) {
    s.counters.rejected_connections.fetch_add(1, Ordering::Relaxed);
    s.counters.errors.fetch_add(1, Ordering::Relaxed);
    let payload = encode_response(&Response::Error(WireError::new(
        ErrorCode::Busy,
        "server at connection capacity; retry later",
    )));
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    let _ = stream.set_nonblocking(true);
    let _ = (&*stream).write(&frame);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handles one readiness event for a connection. Returns `false` when
/// the connection should close.
fn on_conn_event(
    lp: &mut Loop<'_>,
    token: u64,
    readable: bool,
    closed: bool,
    chunk: &mut [u8; READ_CHUNK],
    now: Instant,
) -> bool {
    let obs = lp.s.engine.obs();
    let t0 = obs.timer();
    let Some(conn) = lp.conns.get_mut(&token) else {
        return true; // already closed this batch
    };
    if readable && conn.state != ConnState::Draining {
        match conn.read_some(chunk) {
            Ok((n, status)) => {
                if n > 0 {
                    conn.last_activity = now;
                }
                if status == ReadStatus::PeerClosed {
                    conn.peer_eof = true;
                }
            }
            Err(_) => return false,
        }
    } else if closed {
        // Error/hang-up edge with nothing to read: the peer's write
        // half is gone. In-flight responses still get a delivery
        // attempt (pump closes once everything drains, or the write
        // fails fast on a truly dead socket).
        conn.peer_eof = true;
    }
    let keep = pump(lp, token, now);
    obs.stage(Stage::Readiness, t0, None);
    keep
}

/// The per-connection driver: pops buffered frames (respecting the
/// pipeline bound), flushes completed responses, writes, and reconciles
/// epoll interest and the timer wheel. Returns `false` to close.
fn pump(lp: &mut Loop<'_>, token: u64, now: Instant) -> bool {
    let s = lp.s;
    let Some(conn) = lp.conns.get_mut(&token) else {
        return true;
    };
    // 1. Decode and dispatch buffered frames.
    while conn.state != ConnState::Draining && conn.pending_len() < s.opts.max_pipeline {
        match conn.assembler.next_frame() {
            Ok(Some(frame)) => process_frame(s, conn, token, &frame),
            Ok(None) => break,
            Err(too_large) => {
                // Desynchronized: PROTOCOL.md promises one final error
                // frame before the drop.
                queue_inline(
                    s,
                    conn,
                    Response::Error(WireError::new(ErrorCode::BadFrame, too_large.to_string())),
                );
                conn.state = ConnState::Draining;
                break;
            }
        }
    }
    // 2. Stage completed responses and push bytes.
    if conn.flush_ready() > 0 {
        conn.last_activity = now;
    }
    if conn.unsent() > 0 {
        let obs = s.engine.obs();
        let t0 = obs.timer();
        let drained = match conn.write_some(now) {
            Ok(drained) => drained,
            Err(_) => return false,
        };
        obs.stage(Stage::Write, t0, None);
        if drained && conn.state == ConnState::Draining {
            return false; // final frame delivered
        }
    } else if conn.state == ConnState::Draining {
        return false; // nothing left to drain
    }
    // Peer EOF with everything served and flushed: close. (With the
    // pipeline empty, the dispatch loop above ran the assembler dry, so
    // no complete frame is still buffered — at most a truncated tail.)
    if conn.peer_eof && conn.pending_len() == 0 && conn.unsent() == 0 {
        return false;
    }
    // 3. Reconcile epoll interest.
    let paused = conn.pending_len() >= s.opts.max_pipeline || conn.unsent() > WBUF_PAUSE;
    let mut want = 0u32;
    // An EOF'd socket stays readable forever under level-triggered
    // epoll; dropping read interest once EOF is seen keeps the loop
    // from spinning while responses are still in flight.
    if conn.state != ConnState::Draining && !paused && !conn.peer_eof {
        want |= EPOLLIN | EPOLLRDHUP;
    }
    if conn.unsent() > 0 {
        want |= EPOLLOUT;
    }
    if want != conn.interest {
        use std::os::unix::io::AsRawFd;
        let fd = conn.stream.as_raw_fd();
        // `interest == 0` ⇔ the fd is deregistered. Keeping a
        // zero-interest fd registered is not an option: level-triggered
        // ERR/HUP edges are delivered regardless of the mask and would
        // spin the loop (e.g. a reset peer whose request is still at a
        // worker).
        let ok = if conn.interest == 0 {
            lp.epoll.add(fd, want, token).is_ok()
        } else if want == 0 {
            lp.epoll.del(fd).is_ok()
        } else {
            lp.epoll.modify(fd, want, token).is_ok()
        };
        if !ok {
            return false;
        }
        conn.interest = want;
    }
    // 4. File the nearest deadline on the wheel (lazily).
    if let Some(deadline) = deadline_of(s, conn) {
        let tick = lp.wheel.tick_of(deadline);
        if conn.filed.is_none_or(|filed| tick < filed) {
            conn.filed = Some(lp.wheel.file(token, tick));
        }
    }
    true
}

/// The connection's authoritative deadline: idle timeout while no
/// request is in flight, write timeout while bytes are unsent.
fn deadline_of(s: &Shared, conn: &Conn) -> Option<Instant> {
    let idle = if conn.pending_len() == 0 {
        s.opts.read_timeout.map(|t| conn.last_activity + t)
    } else {
        None // evaluation time is not idle time (matches the old core)
    };
    let write = if conn.unsent() > 0 {
        s.opts.write_timeout.map(|t| conn.last_write_progress + t)
    } else {
        None
    };
    match (idle, write) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Revisits a wheel candidate: re-files if the deadline moved, times
/// the connection out if it really expired.
fn check_deadline(lp: &mut Loop<'_>, token: u64, now: Instant) {
    let s = lp.s;
    let Some(conn) = lp.conns.get_mut(&token) else {
        return; // closed since filing — lazy deletion
    };
    conn.filed = None;
    let Some(deadline) = deadline_of(s, conn) else {
        return; // no longer needs a timer; pump re-files when it does
    };
    if deadline > now {
        let tick = lp.wheel.tick_of(deadline);
        conn.filed = Some(lp.wheel.file(token, tick));
        return;
    }
    let write_expired = conn.unsent() > 0
        && s.opts.write_timeout.is_some_and(|t| now.duration_since(conn.last_write_progress) >= t);
    if write_expired {
        // The peer stopped draining responses: nothing can be delivered,
        // including an error frame. Hard close.
        close_conn(lp, token);
        return;
    }
    if conn.assembler.mid_frame() && conn.state != ConnState::Draining {
        // Timed out mid-frame: the stream is desynchronized. Send the
        // promised final error frame, then drain and close.
        queue_inline(
            s,
            conn,
            Response::Error(WireError::new(
                ErrorCode::Timeout,
                "read timed out mid-frame; dropping desynchronized connection",
            )),
        );
        conn.state = ConnState::Draining;
        if !pump(lp, token, now) {
            close_conn(lp, token);
        }
    } else {
        // Idle at a frame boundary: clean close, no error frame.
        close_conn(lp, token);
    }
}

/// Decodes and routes one frame according to the connection state.
fn process_frame(s: &Shared, conn: &mut Conn, token: u64, frame: &[u8]) {
    match conn.state {
        ConnState::Handshake => match decode_request(frame) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                conn.push_inline(Response::HelloAck { version });
                conn.state = ConnState::Serving;
            }
            Ok(Request::Hello { version }) => {
                queue_inline(
                    s,
                    conn,
                    Response::Error(WireError::new(
                        ErrorCode::UnsupportedVersion,
                        format!("server speaks protocol {PROTOCOL_VERSION}, client sent {version}"),
                    )),
                );
                conn.state = ConnState::Draining;
            }
            Ok(other) => {
                queue_inline(
                    s,
                    conn,
                    Response::Error(WireError::new(
                        ErrorCode::BadFrame,
                        format!("expected HELLO, got {other:?}"),
                    )),
                );
                conn.state = ConnState::Draining;
            }
            Err(e) => {
                queue_inline(s, conn, Response::Error(WireError::from(e)));
                conn.state = ConnState::Draining;
            }
        },
        ConnState::Serving => match decode_request(frame) {
            // Decode failures leave the frame boundary intact, so the
            // connection survives them.
            Err(e) => queue_inline(s, conn, Response::Error(WireError::from(e))),
            // Cheap requests complete inline on the event loop; only
            // evaluation work visits the pool.
            Ok(
                req @ (Request::Hello { .. } | Request::Ping | Request::Stats | Request::Metrics),
            ) => {
                let resp = handle(s, req);
                queue_inline(s, conn, resp);
            }
            Ok(req) => {
                let seq = conn.reserve_slot();
                let queued = s.engine.obs().timer();
                s.jobs.lock().unwrap().push_back(Job { conn: token, seq, req, queued });
                s.jobs_cv.notify_one();
            }
        },
        ConnState::Draining => {} // unreachable: pump stops popping
    }
}

/// Queues an inline response, keeping the error counter exact.
fn queue_inline(s: &Shared, conn: &mut Conn, resp: Response) {
    if matches!(resp, Response::Error(_)) {
        s.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    conn.push_inline(resp);
}

/// Moves finished evaluations into their connections' slot queues and
/// pumps every touched connection.
fn drain_completions(lp: &mut Loop<'_>, now: Instant) {
    let completed = std::mem::take(&mut *lp.s.done.lock().unwrap());
    if completed.is_empty() {
        return;
    }
    let mut touched = Vec::new();
    for c in completed {
        if matches!(c.resp, Response::Error(_)) {
            lp.s.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(conn) = lp.conns.get_mut(&c.conn) {
            conn.complete_slot(c.seq, c.resp);
            if !touched.contains(&c.conn) {
                touched.push(c.conn);
            }
        }
        // else: the connection closed while the worker ran — the work
        // is done (deltas committed), only the acknowledgment is moot.
    }
    for token in touched {
        if !pump(lp, token, now) {
            close_conn(lp, token);
        }
    }
}

/// Deregisters, shuts down and forgets one connection. Wheel entries
/// are left to lazy deletion.
fn close_conn(lp: &mut Loop<'_>, token: u64) {
    use std::os::unix::io::AsRawFd;
    if let Some(conn) = lp.conns.remove(&token) {
        let _ = lp.epoll.del(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        lp.s.counters.open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Worker-pool body: pop a job, evaluate it, post the completion, wake
/// the loop. Exits when the stop flag is up and the queue is empty.
pub(crate) fn worker_loop(s: &Shared) {
    loop {
        let job = {
            let mut jobs = s.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break Some(job);
                }
                if s.stop.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = s.jobs_cv.wait_timeout(jobs, Duration::from_millis(200)).unwrap();
                jobs = guard;
            }
        };
        let Some(job) = job else {
            return;
        };
        let resp = handle(s, job.req);
        s.engine.obs().stage(Stage::Evaluate, job.queued, None);
        s.done.lock().unwrap().push(Completion { conn: job.conn, seq: job.seq, resp });
        s.waker.signal();
    }
}
