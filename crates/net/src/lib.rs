//! `cpqx-net` — the network front-end over the cpqx serving engine.
//!
//! [PR 1's engine](cpqx_engine) made the index concurrent but in-process
//! only; this crate puts it on the wire:
//!
//! 1. **Wire protocol** ([`proto`]): versioned, length-prefixed binary
//!    frames with a magic + version handshake; `QUERY` / `BATCH` /
//!    `UPDATE` / `STATS` / `METRICS` / `PING` requests, typed error
//!    frames (parse
//!    errors keep their byte position and their syntax-vs-unknown-label
//!    classification), pure, panic-free codecs, and an incremental
//!    [`proto::FrameAssembler`] for nonblocking reads.
//! 2. **Server** ([`server`]): an event-driven front-end — one
//!    event-loop thread multiplexes the listener and every connection
//!    over raw level-triggered `epoll` ([`sys`]), a fixed worker pool
//!    evaluates queries and deltas, completions flow back over an
//!    eventfd wake and leave each connection in strict arrival order.
//!    Idle connections cost buffers, not threads; timeouts run on a
//!    timer wheel; overload answers with BUSY error frames. No async
//!    runtime: the build environment is offline, so the design sticks
//!    to the standard library plus an audited syscall shim.
//! 3. **Client** ([`client`]): a blocking library used by the examples,
//!    the integration tests and the loopback CI smoke job.
//!
//! Consistency contract: every response that carries answers also
//! carries the **epoch** of the engine snapshot that produced them, and
//! a `BATCH` parses *and* evaluates all its queries on one pinned
//! snapshot — so clients observe snapshot isolation end-to-end even
//! while `UPDATE` frames (or in-process writers) swap snapshots under
//! them.
//!
//! ```
//! use cpqx_engine::Engine;
//! use cpqx_graph::generate::gex;
//! use cpqx_net::{Client, Server, ServerOptions};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::build(gex(), 2));
//! let server = Server::bind(engine, "127.0.0.1:0", ServerOptions::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.query("(f . f) & f^-1").unwrap();
//! assert_eq!(reply.pairs.len(), 3);
//! assert_eq!(reply.epoch, 0);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
mod conn;
mod event;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod sys;

pub use client::{
    BatchReply, Client, ClientError, ClientOptions, DeltaReply, QueryReply, UpdateReply,
};
pub use metrics::render_prometheus;
pub use proto::{
    ErrorCode, Request, Response, WireError, WireMetrics, WireNetCounters, WireOp, WireOutcome,
    WireSeqLabel, WireStats, PROTOCOL_VERSION,
};
pub use server::{NetStats, Server, ServerOptions};
