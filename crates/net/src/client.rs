//! A blocking client for the cpqx wire protocol.
//!
//! [`Client::connect`] dials the server, performs the version handshake,
//! and then exposes one method per request opcode. The client is strictly
//! request/response (one outstanding request); for pipelining, open more
//! clients — the server handles each connection independently — or speak
//! the frame layer of [`crate::proto`] directly.
//!
//! Server-reported failures surface as [`ClientError::Server`] carrying
//! the typed [`WireError`] (e.g. a parse error with its byte position);
//! transport failures as [`ClientError::Io`]; protocol violations (a
//! response of the wrong type) as [`ClientError::Protocol`].

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, DecodeError, FrameError, Request,
    Response, WireError, WireMetrics, WireOp, WireOutcome, WireStats, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
use cpqx_graph::Pair;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client construction knobs.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Maximum accepted response payload size. Default
    /// [`DEFAULT_MAX_FRAME`]; raise it for huge answer sets.
    pub max_frame_len: usize,
    /// Read timeout while waiting for a response. Default 30 s.
    pub read_timeout: Option<Duration>,
    /// Write timeout. Default 30 s.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            max_frame_len: DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes timeouts and closed connections).
    Io(io::Error),
    /// The server answered with an error frame.
    Server(WireError),
    /// The server violated the protocol (undecodable or mistyped
    /// response, oversized frame, version mismatch).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Closed => ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            too_large @ FrameError::TooLarge { .. } => ClientError::Protocol(too_large.to_string()),
        }
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// One query's answer.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReply {
    /// Epoch of the snapshot the answer reflects.
    pub epoch: u64,
    /// The sorted, deduplicated answer set.
    pub pairs: Vec<Pair>,
}

/// A batch's answers: all evaluated on one snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReply {
    /// Epoch of the snapshot every answer reflects.
    pub epoch: u64,
    /// Per-query answer sets, in request order.
    pub results: Vec<Vec<Pair>>,
}

/// An update's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// Whether the update changed the graph.
    pub applied: bool,
    /// The engine epoch after the update.
    pub epoch: u64,
}

/// A delta transaction's outcome: the transaction committed atomically
/// (rejected deltas surface as [`ClientError::Server`] instead, with
/// the offending op named in the message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaReply {
    /// The engine epoch whose snapshot reflects the whole transaction.
    pub epoch: u64,
    /// Whether the server's fragmentation threshold triggered a
    /// defragmenting rebuild inside this transaction.
    pub rebuilt: bool,
    /// Per-op outcomes, in op order.
    pub outcomes: Vec<WireOutcome>,
}

impl DeltaReply {
    /// Ops that changed the graph/index.
    pub fn applied(&self) -> usize {
        self.outcomes.iter().filter(|o| !matches!(o, WireOutcome::Noop)).count()
    }
}

/// A connected, handshaken client (see module docs).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_len: usize,
}

impl Client {
    /// Connects with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connects, configures timeouts, and performs the handshake.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        opts: ClientOptions,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(opts.read_timeout)?;
        stream.set_write_timeout(opts.write_timeout)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client { reader, writer, max_frame_len: opts.max_frame_len };
        match client.roundtrip(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::HelloAck { version: PROTOCOL_VERSION } => Ok(client),
            Response::HelloAck { version } => {
                Err(ClientError::Protocol(format!("server acknowledged alien version {version}")))
            }
            other => Err(ClientError::Protocol(format!("expected HELLO_ACK, got {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(mistyped("PONG", &other)),
        }
    }

    /// Evaluates one CPQ given in text syntax (see
    /// [`cpqx_query::parse_cpq`]).
    pub fn query(&mut self, text: &str) -> Result<QueryReply, ClientError> {
        match self.roundtrip(&Request::Query(text.to_string()))? {
            Response::Result { epoch, pairs } => Ok(QueryReply { epoch, pairs }),
            other => Err(mistyped("RESULT", &other)),
        }
    }

    /// Evaluates several CPQs against one consistent server snapshot.
    pub fn batch<S: AsRef<str>>(&mut self, texts: &[S]) -> Result<BatchReply, ClientError> {
        let texts: Vec<String> = texts.iter().map(|s| s.as_ref().to_string()).collect();
        match self.roundtrip(&Request::Batch(texts))? {
            Response::BatchResult { epoch, results } => Ok(BatchReply { epoch, results }),
            other => Err(mistyped("BATCH_RESULT", &other)),
        }
    }

    /// Inserts a base edge (`applied: false` if it already existed).
    pub fn insert_edge(
        &mut self,
        src: u32,
        dst: u32,
        label: &str,
    ) -> Result<UpdateReply, ClientError> {
        self.update(true, src, dst, label)
    }

    /// Deletes a base edge (`applied: false` if it did not exist).
    pub fn delete_edge(
        &mut self,
        src: u32,
        dst: u32,
        label: &str,
    ) -> Result<UpdateReply, ClientError> {
        self.update(false, src, dst, label)
    }

    /// Applies an atomic typed delta transaction (see
    /// [`crate::proto::WireOp`]): one engine write transaction for the
    /// whole op list, acknowledged with per-op outcomes. A rejected
    /// delta (unknown label, out-of-range vertex, …) changes nothing
    /// server-side and surfaces as [`ClientError::Server`] with
    /// [`crate::ErrorCode::BadUpdate`].
    pub fn apply_delta(&mut self, ops: Vec<WireOp>) -> Result<DeltaReply, ClientError> {
        // Over-long interest sequences can never encode (the codec
        // refuses to emit a count it could not decode); fail with a
        // typed error before framing instead of panicking mid-encode.
        for (i, op) in ops.iter().enumerate() {
            if let WireOp::InsertInterest { seq } | WireOp::DeleteInterest { seq } = op {
                if seq.len() > cpqx_graph::MAX_SEQ_LEN {
                    return Err(ClientError::Protocol(format!(
                        "delta op {i}: interest sequence of {} steps exceeds the wire bound of {}",
                        seq.len(),
                        cpqx_graph::MAX_SEQ_LEN
                    )));
                }
            }
        }
        match self.roundtrip(&Request::Delta(ops))? {
            Response::DeltaAck { epoch, rebuilt, outcomes } => {
                Ok(DeltaReply { epoch, rebuilt, outcomes })
            }
            other => Err(mistyped("DELTA_ACK", &other)),
        }
    }

    /// Fetches the server's statistics report.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(mistyped("STATS_RESULT", &other)),
        }
    }

    /// Fetches the server's observability report (protocol ≥ 5):
    /// per-opcode and per-stage latency histograms, the slow-query ring,
    /// and canonical-key workload counts.
    pub fn metrics(&mut self) -> Result<WireMetrics, ClientError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            other => Err(mistyped("METRICS_RESULT", &other)),
        }
    }

    fn update(
        &mut self,
        insert: bool,
        src: u32,
        dst: u32,
        label: &str,
    ) -> Result<UpdateReply, ClientError> {
        let req = Request::Update { insert, src, dst, label: label.to_string() };
        match self.roundtrip(&req)? {
            Response::UpdateAck { applied, epoch } => Ok(UpdateReply { applied, epoch }),
            other => Err(mistyped("UPDATE_ACK", &other)),
        }
    }

    /// Sends one request and reads one response, unwrapping error frames
    /// into [`ClientError::Server`].
    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req))?;
        let payload = read_frame(&mut self.reader, self.max_frame_len)?;
        match decode_response(&payload)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }
}

fn mistyped(expected: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {expected}, got {got:?}"))
}
