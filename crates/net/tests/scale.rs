//! Scaling harness for the event-driven core: a horde of idle
//! connections far exceeding the worker count must coexist with active
//! clients that are still answered promptly, correctly, and in order.
//!
//! The connection budget comes from `CPQX_SCALE_CONNS` (default 1000).
//! On hosts whose fd limit cannot carry the budget, the test degrades
//! to an explicit skip instead of a spurious failure — CI sets the
//! budget; laptops with tight ulimits just see the skip line.

use cpqx_engine::{Engine, EngineOptions, Snapshot};
use cpqx_graph::generate::{self, sample_edges, RandomGraphConfig};
use cpqx_graph::Pair;
use cpqx_net::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
use cpqx_net::{Client, Server, ServerOptions};
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{parse_cpq, Cpq, Template};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const ACTIVE_CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 20;
const WRITER_ROUNDS: u64 = 4;
const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn conn_budget() -> usize {
    std::env::var("CPQX_SCALE_CONNS").ok().and_then(|v| v.parse().ok()).unwrap_or(1000)
}

/// Opens one connection and completes the handshake, or reports why it
/// could not.
fn handshaken(addr: std::net::SocketAddr) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    write_frame(&mut stream, &encode_request(&Request::Hello { version: PROTOCOL_VERSION }))
        .map_err(std::io::Error::other)?;
    let ack = read_frame(&mut stream, DEFAULT_MAX_FRAME).map_err(std::io::Error::other)?;
    match decode_response(&ack) {
        Ok(Response::HelloAck { .. }) => Ok(stream),
        other => Err(std::io::Error::other(format!("expected HELLO_ACK, got {other:?}"))),
    }
}

#[test]
fn idle_horde_does_not_starve_active_clients() {
    let budget = conn_budget();
    let g = generate::random_graph(&RandomGraphConfig::social(150, 700, 3, 17));
    let probe_graph = g.clone();
    let (engine, _) = Engine::with_options(g, EngineOptions { k: 2, ..Default::default() });
    let engine = Arc::new(engine);
    // Two workers against `budget` idle connections: with the old
    // thread-per-connection core this configuration deadlocks the
    // active clients behind parked reads; the event loop must not care.
    let server = Server::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            max_connections: budget + 64,
            read_timeout: Some(READ_TIMEOUT),
            write_timeout: Some(READ_TIMEOUT),
            ..ServerOptions::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Phase 1: the idle horde. Every connection handshakes, then goes
    // silent. Resource exhaustion (EMFILE and friends) downgrades to an
    // explicit skip — the harness proves scheduling, not ulimits.
    let mut horde: Vec<TcpStream> = Vec::with_capacity(budget);
    for _ in 0..budget {
        match handshaken(addr) {
            Ok(stream) => horde.push(stream),
            Err(e) => {
                eprintln!(
                    "cpqx-net scale: SKIPPED — opened {}/{budget} connections ({e}); \
                     raise the fd limit or lower CPQX_SCALE_CONNS",
                    horde.len()
                );
                return;
            }
        }
    }
    let open = server.net_stats().open_connections;
    assert!(open >= budget as u64, "gauge says {open} open, expected ≥ {budget}");

    // Phase 2: active clients query (and one writes) through the horde.
    // Every answer must match sequential evaluation on the snapshot of
    // the epoch it reports, and the whole active workload must finish
    // well inside the read timeout — idle connections cost the loop
    // nothing after registration.
    let probe = GraphProbe(&probe_graph);
    let mut gen = WorkloadGen::new(&probe_graph, 23);
    let workload: Vec<(String, Cpq)> = Template::ALL
        .iter()
        .flat_map(|&t| gen.queries(t, 2, &probe))
        .map(|q| (q.to_text(&probe_graph), q))
        .collect();
    assert!(workload.len() >= 8, "workload too small");

    let snapshots: Mutex<HashMap<u64, Arc<Snapshot>>> = Mutex::new(HashMap::new());
    snapshots.lock().unwrap().insert(engine.epoch(), engine.snapshot());

    let t0 = Instant::now();
    type Served = (usize, u64, Vec<Pair>);
    let observations: Vec<Vec<Served>> = std::thread::scope(|scope| {
        let workload = &workload;
        let snapshots = &snapshots;
        let engine = &engine;

        let writer = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            for round in 0..WRITER_ROUNDS {
                let snap = engine.snapshot();
                let (v, u, l) = sample_edges(snap.graph(), 1, round)[0];
                let name = snap.graph().label_name(l).to_string();
                let ack = client.delete_edge(v, u, &name).expect("wire delete");
                if ack.applied {
                    let now = engine.snapshot();
                    assert_eq!(now.epoch(), ack.epoch, "sole writer: ack epoch is current");
                    snapshots.lock().unwrap().insert(ack.epoch, now);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let readers: Vec<_> = (0..ACTIVE_CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("active client connects");
                    let mut served: Vec<Served> = Vec::new();
                    for j in 0..QUERIES_PER_CLIENT {
                        let at = (c * 7 + j * 3) % workload.len();
                        let reply = client.query(&workload[at].0).expect("wire query");
                        served.push((at, reply.epoch, reply.pairs));
                    }
                    served
                })
            })
            .collect();

        writer.join().expect("writer thread");
        readers.into_iter().map(|r| r.join().expect("active client")).collect()
    });
    let active_elapsed = t0.elapsed();
    assert!(
        active_elapsed < READ_TIMEOUT,
        "active clients took {active_elapsed:?} behind {budget} idle connections"
    );

    // Differential check: every answer equals sequential evaluation on
    // the snapshot of its reported epoch.
    let snapshots = snapshots.into_inner().unwrap();
    let mut checked = 0usize;
    for served in &observations {
        for (at, epoch, pairs) in served {
            let snap = snapshots
                .get(epoch)
                .unwrap_or_else(|| panic!("answer reports unknown epoch {epoch}"));
            let (text, q) = &workload[*at];
            assert_eq!(&snap.evaluate(q), pairs, "torn read for {text:?} at epoch {epoch}");
            checked += 1;
        }
    }
    assert_eq!(checked, ACTIVE_CLIENTS * QUERIES_PER_CLIENT);

    // Phase 3: arrival order survives the horde. One connection
    // pipelines a burst without reading, then collects: responses come
    // back in exactly the order requests went out.
    let mut pipelined = handshaken(addr).expect("pipelining connection");
    let snap = engine.snapshot();
    let burst: Vec<&(String, Cpq)> = (0..6).map(|i| &workload[(i * 5) % workload.len()]).collect();
    for (text, _) in &burst {
        write_frame(&mut pipelined, &encode_request(&Request::Query(text.clone()))).unwrap();
    }
    write_frame(&mut pipelined, &encode_request(&Request::Ping)).unwrap();
    for (text, _) in &burst {
        let payload = read_frame(&mut pipelined, DEFAULT_MAX_FRAME).unwrap();
        match decode_response(&payload).unwrap() {
            Response::Result { pairs, .. } => {
                let q = parse_cpq(text, snap.graph()).unwrap();
                assert_eq!(pairs, snap.evaluate(&q), "pipelined answer for {text:?}");
            }
            other => panic!("expected RESULT for {text:?}, got {other:?}"),
        }
    }
    let pong = read_frame(&mut pipelined, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_response(&pong).unwrap(), Response::Pong));

    // Phase 4: the horde is still alive — sampled members answer PING
    // (the loop never traded idle connections for active throughput).
    for stream in horde.iter_mut().step_by((budget / 10).max(1)) {
        write_frame(stream, &encode_request(&Request::Ping)).unwrap();
        let payload = read_frame(stream, DEFAULT_MAX_FRAME).unwrap();
        assert!(matches!(decode_response(&payload).unwrap(), Response::Pong));
    }

    // Phase 5: shutdown with the horde still connected stays prompt —
    // the loop explicitly shuts every socket down on its way out.
    let t1 = Instant::now();
    server.shutdown();
    assert!(t1.elapsed() < Duration::from_secs(10), "shutdown took {:?}", t1.elapsed());
}
