//! Loopback tests for the METRICS frame: byte-exact codec behaviour
//! over a live TCP connection, histogram percentiles agreeing with the
//! engine's reservoir report, and slow-query capture with a full span
//! tree.

use cpqx_engine::{Engine, EngineOptions, ObsOptions};
use cpqx_graph::generate::{self, RandomGraphConfig};
use cpqx_net::proto::{
    decode_response, encode_request, encode_response, read_frame, write_frame, Request, Response,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use cpqx_net::{Client, Server, ServerOptions};
use cpqx_obs::{bucket_index, Op as ObsOp, Stage, TraceKind};
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::Template;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start_server(options: EngineOptions) -> (Arc<Engine>, Server) {
    let g = generate::random_graph(&RandomGraphConfig::social(150, 700, 3, 17));
    let (engine, _) = Engine::with_options(g, options);
    let engine = Arc::new(engine);
    let server = Server::bind(Arc::clone(&engine), "127.0.0.1:0", ServerOptions::default())
        .expect("bind ephemeral port");
    (engine, server)
}

fn drive_queries(client: &mut Client, engine: &Engine, n: usize) {
    let snap = engine.snapshot();
    let probe = GraphProbe(snap.graph());
    let mut gen = WorkloadGen::new(snap.graph(), 7);
    let texts: Vec<String> = Template::ALL
        .iter()
        .flat_map(|&t| gen.queries(t, 1 + n / Template::ALL.len(), &probe))
        .map(|q| q.to_text(snap.graph()))
        .collect();
    assert!(!texts.is_empty());
    for text in texts.iter().cycle().take(n) {
        client.query(text).expect("query over loopback");
    }
}

/// The METRICS response survives a decode → re-encode cycle byte for
/// byte: what the server put on the wire is exactly what the codec
/// produces for the decoded report.
#[test]
fn metrics_roundtrip_is_byte_exact_over_loopback() {
    let (engine, server) = start_server(EngineOptions { k: 2, ..Default::default() });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    drive_queries(&mut client, &engine, 40);

    // Speak the frame layer directly so the raw response bytes are
    // observable.
    let stream = TcpStream::connect(server.local_addr()).expect("raw connect");
    let mut reader = std::io::BufReader::new(&stream);
    let mut writer = std::io::BufWriter::new(&stream);
    let hello = encode_request(&Request::Hello { version: PROTOCOL_VERSION });
    write_frame(&mut writer, &hello).unwrap();
    let ack = read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_response(&ack), Ok(Response::HelloAck { .. })));
    write_frame(&mut writer, &encode_request(&Request::Metrics)).unwrap();
    let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap();

    let resp = decode_response(&payload).expect("METRICS_RESULT decodes");
    let Response::Metrics(m) = &resp else { panic!("expected METRICS_RESULT, got {resp:?}") };
    assert!(m.op_histogram(ObsOp::Query).is_some(), "query traffic must be present");
    assert_eq!(encode_response(&resp), payload, "re-encode must reproduce the wire bytes");
    server.shutdown();
}

/// `Client::metrics()` returns per-opcode histograms whose p50/p99 agree
/// with the engine's reservoir-based percentiles to within one log
/// bucket, and whose workload table names the canonical keys served.
#[test]
fn metrics_percentiles_agree_with_reservoir() {
    let (engine, server) = start_server(EngineOptions { k: 2, ..Default::default() });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    drive_queries(&mut client, &engine, 120);

    let m = client.metrics().expect("metrics over loopback");
    assert_eq!(m.epoch, engine.epoch());
    assert_eq!(m.net.query_requests, 120);
    assert_eq!(m.net.metrics_requests, 1);

    let h = m.op_histogram(ObsOp::Query).expect("query histogram");
    assert_eq!(h.count(), 120);
    let reservoir = engine.reservoir_report();
    for (p, exact) in [(0.5, reservoir.p50), (0.99, reservoir.p99)] {
        let wire = h.quantile(p).expect("non-empty histogram") as u128;
        let exact = exact.as_micros();
        assert!(
            bucket_index(wire as u64).abs_diff(bucket_index(exact as u64)) <= 1,
            "p{p}: wire {wire}us vs reservoir {exact}us disagree by more than one bucket"
        );
    }

    // Query stages were exercised; their histograms travel too.
    for stage in [Stage::Parse, Stage::Plan, Stage::Eval] {
        assert!(m.stage_histogram(stage).is_some(), "missing {} histogram", stage.name());
    }
    // Canonical keys of the served workload feed the advisor table.
    // Keys are counted on sampled traces (one in `sample_every`), so the
    // table is a sampled frequency estimate, not an exact census.
    assert!(!m.workload.is_empty());
    let sampled: u64 = m.workload.iter().map(|(_, c)| c).sum();
    assert!((1..=120).contains(&sampled), "sampled workload count {sampled} out of range");
    server.shutdown();
}

/// With a slow-query threshold armed, a wire query over the threshold
/// lands in the slow ring carrying its parse/plan/eval span tree, its
/// canonical key and the epoch it was served at.
#[test]
fn slow_queries_capture_span_tree_over_the_wire() {
    let obs = ObsOptions {
        slow_query: Some(Duration::from_nanos(1)),
        sample_every: 0, // slow capture must not depend on trace sampling
        ..ObsOptions::default()
    };
    let options = EngineOptions {
        k: 2,
        obs,
        // No result cache: every wire query must evaluate, so slow
        // entries always carry the full parse/plan/eval tree.
        result_cache_capacity: 0,
        ..Default::default()
    };
    let (engine, server) = start_server(options);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    drive_queries(&mut client, &engine, 10);

    let m = client.metrics().expect("metrics over loopback");
    assert!(m.slow_total >= 1, "1ns threshold must flag queries");
    let slow = m.slow.last().expect("slow ring entry");
    assert_eq!(slow.kind, TraceKind::Query);
    assert!(!slow.key.is_empty(), "slow entry must carry the canonical key");
    assert_eq!(slow.epoch, engine.epoch());
    for stage in [Stage::Parse, Stage::Plan, Stage::Eval] {
        assert!(slow.span(stage).is_some(), "missing {} span: {}", stage.name(), slow.render());
    }
    server.shutdown();
}
