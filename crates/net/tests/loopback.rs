//! Loopback integration tests: a live TCP server under concurrent
//! clients and wire-driven maintenance, verified against sequential
//! engine evaluation on pinned snapshots.

use cpqx_engine::{Engine, EngineOptions, Snapshot};
use cpqx_graph::generate::{self, sample_edges, RandomGraphConfig};
use cpqx_graph::Pair;
use cpqx_net::proto::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, Response,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use cpqx_net::{Client, ClientError, ErrorCode, Server, ServerOptions, WireOp, WireOutcome};
use cpqx_query::workload::{GraphProbe, WorkloadGen};
use cpqx_query::{benchqueries, parse_cpq, Cpq, Template};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A CPQ workload rendered both as text (for the wire) and AST (for the
/// verification oracle).
fn text_workload(g: &cpqx_graph::Graph, per_template: usize) -> Vec<(String, Cpq)> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, 23);
    Template::ALL
        .iter()
        .flat_map(|&t| gen.queries(t, per_template, &probe))
        .map(|q| (q.to_text(g), q))
        .collect()
}

fn start_server(graph: cpqx_graph::Graph, workers: usize) -> (Arc<Engine>, Server) {
    start_server_with(graph, workers, EngineOptions { k: 2, ..Default::default() })
}

fn start_server_with(
    graph: cpqx_graph::Graph,
    workers: usize,
    opts: EngineOptions,
) -> (Arc<Engine>, Server) {
    let (engine, _) = Engine::with_options(graph, opts);
    let engine = Arc::new(engine);
    let server = Server::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerOptions { workers, ..ServerOptions::default() },
    )
    .expect("bind ephemeral port");
    (engine, server)
}

/// The acceptance scenario: ≥8 concurrent TCP clients query a live
/// server while a writer client applies UPDATE frames over the same
/// wire; every response must match sequential engine evaluation on the
/// snapshot of the epoch it reported — no torn reads — and the server
/// must shut down cleanly afterwards.
#[test]
fn concurrent_clients_with_live_wire_maintenance() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 36;
    const WRITER_ROUNDS: u64 = 8;

    let g = generate::random_graph(&RandomGraphConfig::social(200, 1_000, 4, 11));
    let workload = text_workload(&g, 2);
    assert!(workload.len() >= 12, "workload too small to exercise the server");
    let (engine, server) = start_server(g, CLIENTS + 4);
    let addr = server.local_addr();

    // Oracle: every installed epoch's snapshot, pinned. The writer is
    // the only source of installs, so it can record each one right
    // after its UPDATE is acknowledged.
    let snapshots: Mutex<HashMap<u64, Arc<Snapshot>>> = Mutex::new(HashMap::new());
    snapshots.lock().unwrap().insert(0, engine.snapshot());

    // (workload index, reported epoch, answer) per served query.
    type Served = (usize, u64, Vec<Pair>);

    let observations: Vec<Vec<Served>> = std::thread::scope(|scope| {
        let workload = &workload;
        let snapshots = &snapshots;
        let engine = &engine;

        let writer = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut applied = 0u64;
            for round in 0..WRITER_ROUNDS {
                let snap = engine.snapshot();
                for (v, u, l) in sample_edges(snap.graph(), 2, round) {
                    let name = snap.graph().label_name(l).to_string();
                    for insert in [false, true] {
                        let ack = if insert {
                            client.insert_edge(v, u, &name).expect("wire insert")
                        } else {
                            client.delete_edge(v, u, &name).expect("wire delete")
                        };
                        if ack.applied {
                            applied += 1;
                            let now = engine.snapshot();
                            assert_eq!(
                                now.epoch(),
                                ack.epoch,
                                "sole writer: ack epoch must be current"
                            );
                            snapshots.lock().unwrap().insert(ack.epoch, now);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(3));
            }
            applied
        });

        let readers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("reader connects");
                    let mut served: Vec<Served> = Vec::new();
                    for j in 0..QUERIES_PER_CLIENT {
                        let at = (c * 7 + j * 3) % workload.len();
                        if j % 6 == 5 {
                            // Exercise BATCH: three queries, one snapshot.
                            let idxs = [at, (at + 1) % workload.len(), (at + 2) % workload.len()];
                            let texts: Vec<&str> =
                                idxs.iter().map(|&i| workload[i].0.as_str()).collect();
                            let reply = client.batch(&texts).expect("wire batch");
                            assert_eq!(reply.results.len(), idxs.len());
                            for (&i, pairs) in idxs.iter().zip(reply.results) {
                                served.push((i, reply.epoch, pairs));
                            }
                        } else {
                            let reply = client.query(&workload[at].0).expect("wire query");
                            served.push((at, reply.epoch, reply.pairs));
                        }
                    }
                    // Keep querying (bounded) until this reader has
                    // witnessed at least one maintenance install, so the
                    // read/write overlap is guaranteed, not probabilistic.
                    let mut extra = 0usize;
                    while served.iter().all(|&(_, epoch, _)| epoch == 0) && extra < 500 {
                        let at = (c + extra) % workload.len();
                        let reply = client.query(&workload[at].0).expect("wire query");
                        served.push((at, reply.epoch, reply.pairs));
                        extra += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    served
                })
            })
            .collect();

        let applied = writer.join().expect("writer thread");
        assert!(applied > 0, "the writer must actually install snapshots");
        readers.into_iter().map(|r| r.join().expect("reader thread")).collect()
    });

    // Verify every wire answer against sequential evaluation on the
    // snapshot of the epoch the server reported.
    let snapshots = snapshots.into_inner().unwrap();
    let mut checked = 0usize;
    let mut epochs_seen: Vec<u64> = Vec::new();
    for served in &observations {
        for (at, epoch, pairs) in served {
            let snap = snapshots
                .get(epoch)
                .unwrap_or_else(|| panic!("answer reports unknown epoch {epoch}"));
            let (text, q) = &workload[*at];
            assert_eq!(&snap.evaluate(q), pairs, "torn read for {text:?} at epoch {epoch}");
            checked += 1;
            epochs_seen.push(*epoch);
        }
    }
    assert!(checked >= CLIENTS * QUERIES_PER_CLIENT, "checked only {checked} answers");
    epochs_seen.sort_unstable();
    epochs_seen.dedup();
    assert!(
        epochs_seen.len() > 1,
        "maintenance must have been visible to readers (saw epochs {epochs_seen:?})"
    );

    let stats = engine.stats();
    assert!(stats.snapshot_swaps > 0);
    server.shutdown();
    // Clean shutdown: the port no longer accepts connections.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "server port must be released after shutdown"
    );
}

/// Typed delta transactions over the wire under concurrent readers,
/// with the engine's fragmentation threshold set low enough that an
/// automatic defragmenting rebuild fires mid-run: readers pinned on the
/// pre-churn epoch stay byte-for-byte consistent, every live answer
/// matches sequential evaluation on the snapshot of the epoch it
/// reports, and per-op DELTA acks carry correct typed outcomes.
#[test]
fn typed_deltas_with_pinned_readers_and_auto_rebuild() {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 24;
    const WRITER_ROUNDS: u64 = 24;

    let g = generate::random_graph(&RandomGraphConfig::social(150, 700, 3, 17));
    let workload = text_workload(&g, 2);
    assert!(workload.len() >= 10);
    let (engine, server) = start_server_with(
        g,
        CLIENTS + 2,
        EngineOptions { k: 2, auto_rebuild_ratio: Some(1.05), ..Default::default() },
    );
    let addr = server.local_addr();

    // The pre-churn snapshot and its answers: the pin readers re-check
    // against these *while* deltas and rebuilds land.
    let snap0 = engine.snapshot();
    let initial: Vec<Vec<Pair>> = workload.iter().map(|(_, q)| snap0.evaluate(q)).collect();

    let snapshots: Mutex<HashMap<u64, Arc<Snapshot>>> = Mutex::new(HashMap::new());
    snapshots.lock().unwrap().insert(0, engine.snapshot());

    type Served = (usize, u64, Vec<Pair>);
    let (observations, rebuilt_over_wire): (Vec<Vec<Served>>, bool) = std::thread::scope(|scope| {
        let workload = &workload;
        let snapshots = &snapshots;
        let engine = &engine;
        let snap0 = &snap0;
        let initial = &initial;

        let writer = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let mut rebuilt = false;
            for round in 0..WRITER_ROUNDS {
                let snap = engine.snapshot();
                let name = |l| snap.graph().label_name(l).to_string();
                let victims = sample_edges(snap.graph(), 2, round);
                let (v1, u1, l1) = victims[0];
                let (v2, u2, l2) = victims[1];
                // One multi-op transaction: churn two edges, relabel
                // one, and every few rounds grow the graph by a
                // vertex wired to an existing one *within the same
                // delta* (exercising in-delta id visibility).
                let mut ops = vec![
                    WireOp::DeleteEdge { src: v1, dst: u1, label: name(l1) },
                    WireOp::InsertEdge { src: v1, dst: u1, label: name(l1) },
                    WireOp::ChangeEdgeLabel { src: v2, dst: u2, from: name(l2), to: name(l1) },
                    WireOp::ChangeEdgeLabel { src: v2, dst: u2, from: name(l1), to: name(l2) },
                ];
                if round % 6 == 5 {
                    let fresh_id = snap.graph().vertex_count();
                    ops.push(WireOp::AddVertex { name: format!("wire-{round}") });
                    ops.push(WireOp::InsertEdge { src: fresh_id, dst: v1, label: name(l1) });
                    ops.push(WireOp::DeleteVertex { vertex: fresh_id });
                }
                let n_ops = ops.len();
                let ack = client.apply_delta(ops).expect("wire delta");
                assert_eq!(ack.outcomes.len(), n_ops);
                if round % 6 == 5 {
                    assert_eq!(
                        ack.outcomes[n_ops - 3],
                        WireOutcome::VertexAdded(snap.graph().vertex_count()),
                        "AddVertex must report the allocated id"
                    );
                }
                rebuilt |= ack.rebuilt;
                let now = engine.snapshot();
                assert_eq!(now.epoch(), ack.epoch, "sole writer: ack epoch must be current");
                snapshots.lock().unwrap().insert(ack.epoch, now);
                std::thread::sleep(Duration::from_millis(2));
            }
            rebuilt
        });

        let readers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("reader connects");
                    let mut served: Vec<Served> = Vec::new();
                    for j in 0..QUERIES_PER_CLIENT {
                        let at = (c * 5 + j * 3) % workload.len();
                        let reply = client.query(&workload[at].0).expect("wire query");
                        served.push((at, reply.epoch, reply.pairs));
                        // Pinned-epoch consistency: the pre-churn
                        // snapshot answers exactly as before, however
                        // many deltas and auto-rebuilds have landed.
                        let pin = (c + j) % workload.len();
                        assert_eq!(
                            snap0.evaluate(&workload[pin].1),
                            initial[pin],
                            "pinned epoch-0 reader observed drift"
                        );
                    }
                    // Guarantee overlap with maintenance: keep
                    // querying (bounded) until a delta install is
                    // visible to this reader.
                    let mut extra = 0usize;
                    while served.iter().all(|&(_, epoch, _)| epoch == 0) && extra < 500 {
                        let at = (c + extra) % workload.len();
                        let reply = client.query(&workload[at].0).expect("wire query");
                        served.push((at, reply.epoch, reply.pairs));
                        extra += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    served
                })
            })
            .collect();

        let rebuilt = writer.join().expect("writer thread");
        (readers.into_iter().map(|r| r.join().expect("reader thread")).collect(), rebuilt)
    });

    assert!(rebuilt_over_wire, "threshold 1.05 must trip an auto-rebuild over the wire");
    let stats = engine.stats();
    assert!(stats.auto_rebuilds >= 1, "engine must count the auto-rebuild");
    assert!(stats.delta_transactions >= WRITER_ROUNDS);

    // Every live answer matches sequential evaluation on the snapshot of
    // the epoch it reported — even across rebuild installs.
    let snapshots = snapshots.into_inner().unwrap();
    let mut epochs_seen: Vec<u64> = Vec::new();
    for served in &observations {
        for (at, epoch, pairs) in served {
            let snap = snapshots
                .get(epoch)
                .unwrap_or_else(|| panic!("answer reports unknown epoch {epoch}"));
            let (text, q) = &workload[*at];
            assert_eq!(&snap.evaluate(q), pairs, "torn read for {text:?} at epoch {epoch}");
            epochs_seen.push(*epoch);
        }
    }
    epochs_seen.sort_unstable();
    epochs_seen.dedup();
    assert!(epochs_seen.len() > 1, "deltas must have been visible to readers");

    let wire_stats = Client::connect(addr).unwrap().stats().expect("stats");
    assert!(wire_stats.delta_requests >= WRITER_ROUNDS);
    assert!(wire_stats.rebuilds >= 1);
    assert!(wire_stats.fragmentation_ratio() > 0.0);
    server.shutdown();
    // The STATS frame must round-trip the engine's fragmentation and
    // copy-on-write gauges exactly — the server is quiescent now, so a
    // fresh engine report and the last wire report describe the same
    // counters.
    let end = engine.stats();
    assert_eq!(wire_stats.class_slots, end.class_slots);
    assert_eq!(wire_stats.baseline_classes, end.baseline_classes);
    assert_eq!(wire_stats.cow_chunks_copied, end.cow_chunks_copied);
    assert_eq!(wire_stats.cow_chunks_shared, end.cow_chunks_shared);
    assert!(end.cow_chunks_copied > 0, "write transactions must have copied chunks: {end}");
}

/// The CI smoke scenario: benchmark-query batches plus one UPDATE over
/// the wire, answers equal to direct engine evaluation.
#[test]
fn loopback_smoke_benchqueries() {
    let g = generate::gmark(400, 3);
    let (engine, server) = start_server(g, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    let snap = engine.snapshot();
    let named: Vec<_> = benchqueries::yago_queries(snap.graph(), 7)
        .into_iter()
        .chain(benchqueries::lubm_queries(snap.graph(), 7))
        .chain(benchqueries::watdiv_queries(snap.graph(), 7))
        .collect();
    let texts: Vec<String> = named.iter().map(|nq| nq.query.to_text(snap.graph())).collect();

    let reply = client.batch(&texts).expect("batch");
    assert_eq!(reply.epoch, snap.epoch());
    assert_eq!(reply.results.len(), named.len());
    for (nq, pairs) in named.iter().zip(&reply.results) {
        assert_eq!(&snap.evaluate(&nq.query), pairs, "{} must match direct evaluation", nq.name);
    }

    // One UPDATE: delete an existing edge, verify a query reflects it.
    let (v, u, l) = sample_edges(snap.graph(), 1, 5)[0];
    let name = snap.graph().label_name(l).to_string();
    let ack = client.delete_edge(v, u, &name).expect("wire delete");
    assert!(ack.applied);
    assert_eq!(ack.epoch, 1);
    let after = client.batch(&texts).expect("batch after update");
    assert_eq!(after.epoch, 1);
    let snap1 = engine.snapshot();
    for (nq, pairs) in named.iter().zip(&after.results) {
        assert_eq!(&snap1.evaluate(&nq.query), pairs, "{} stale after update", nq.name);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.batch_requests, 2);
    assert_eq!(stats.update_requests, 1);
    assert_eq!(stats.ping_requests, 1);
    assert_eq!(stats.stats_requests, 1);
    assert!(stats.queries >= 2 * texts.len() as u64);
    // COW gauges round-trip the engine's report: one small delta copied a
    // few chunks and left the rest of the snapshot shared.
    let engine_stats = engine.stats();
    assert_eq!(stats.cow_chunks_copied, engine_stats.cow_chunks_copied);
    assert_eq!(stats.cow_chunks_shared, engine_stats.cow_chunks_shared);
    assert!(stats.cow_chunks_copied > 0, "the UPDATE delta copied chunks");
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    write_frame(&mut stream, &encode_request(&Request::Hello { version: PROTOCOL_VERSION }))
        .unwrap();
    let ack = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_response(&ack).unwrap(), Response::HelloAck { .. }));

    // Write a full pipeline before reading anything.
    let texts = ["f", "f . f", "(f . f) & f^-1", "id", "f^-1"];
    for t in texts {
        write_frame(&mut stream, &encode_request(&Request::Query(t.into()))).unwrap();
    }
    write_frame(&mut stream, &encode_request(&Request::Ping)).unwrap();

    let snap = server.engine().snapshot();
    for t in texts {
        let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
        match decode_response(&payload).unwrap() {
            Response::Result { pairs, .. } => {
                let q = parse_cpq(t, snap.graph()).unwrap();
                assert_eq!(pairs, snap.evaluate(&q), "pipelined answer for {t:?}");
            }
            other => panic!("expected RESULT for {t:?}, got {other:?}"),
        }
    }
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_response(&payload).unwrap(), Response::Pong));
    server.shutdown();
}

#[test]
fn typed_errors_over_the_wire() {
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Syntax error: position survives the wire.
    match client.query("(f . f") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Parse);
            assert!(e.position.is_some());
        }
        other => panic!("expected parse error, got {other:?}"),
    }
    // Unknown label: distinct code.
    match client.query("f . nosuch") {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::UnknownLabel);
            assert_eq!(e.position, Some(4));
            assert!(e.message.contains("nosuch"));
        }
        other => panic!("expected unknown-label error, got {other:?}"),
    }
    // Bad update: unknown label and out-of-range vertex.
    match client.insert_edge(0, 1, "ghost") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::BadUpdate),
        other => panic!("expected bad-update error, got {other:?}"),
    }
    match client.delete_edge(0, u32::MAX, "f") {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::BadUpdate),
        other => panic!("expected bad-update error, got {other:?}"),
    }
    // The connection survives all of the above (errors are recoverable).
    client.ping().expect("connection still alive");
    let reply = client.query("f").expect("valid query after errors");
    assert!(!reply.pairs.is_empty());
    server.shutdown();
}

#[test]
fn hostile_queries_cannot_kill_the_server() {
    // A deeply nested or absurdly long query text fits comfortably under
    // the frame-size bound but would blow the worker's stack if it ever
    // reached unbounded recursion — it must come back as a parse error
    // frame with the server (and even the connection) intact.
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let deep = format!("{}f{}", "(".repeat(200_000), ")".repeat(200_000));
    let long = vec!["f"; 200_000].join(" . ");
    for hostile in [deep, long] {
        match client.query(&hostile) {
            Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Parse),
            other => panic!("expected parse error frame, got {:?}", other.map(|r| r.epoch)),
        }
    }
    client.ping().expect("server must survive hostile queries");
    assert!(!client.query("f").expect("still serving").pairs.is_empty());
    server.shutdown();
}

#[test]
fn oversized_handshake_frame_gets_a_final_error() {
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Announce a payload over the server's bound as the very first frame.
    use std::io::Write;
    stream.write_all(&(64u32 * 1024 * 1024).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match decode_response(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn handshake_is_enforced() {
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);

    // Wrong version is refused with a typed error.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, &encode_request(&Request::Hello { version: 999 })).unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match decode_response(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected version error, got {other:?}"),
    }

    // A first frame that is not HELLO is refused.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, &encode_request(&Request::Ping)).unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    match decode_response(&payload).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected handshake error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn batch_parse_failures_name_the_query() {
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.batch(&["f", "f . f", "(f"]) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Parse);
            assert!(e.message.contains("batch query 2"), "got {:?}", e.message);
        }
        other => panic!("expected batch parse error, got {other:?}"),
    }
    server.shutdown();
}

/// Filling the connection cap answers new connections with a typed BUSY
/// error frame — not a bare close — counts the rejection in STATS and
/// METRICS, and frees the slot when a connection departs.
#[test]
fn connection_cap_rejects_with_busy_error() {
    let g = generate::gex();
    let (engine, _) = Engine::with_options(g, EngineOptions { k: 2, ..Default::default() });
    let engine = Arc::new(engine);
    let server = Server::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerOptions { workers: 2, max_connections: 2, ..ServerOptions::default() },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut a = Client::connect(addr).expect("first connection fits");
    let b = Client::connect(addr).expect("second connection fits");

    // Over capacity. Read without sending HELLO: the BUSY frame arrives
    // unprompted, followed by a clean close (sending first could race
    // the server's shutdown into an RST that discards the frame).
    let mut rejected = TcpStream::connect(addr).expect("tcp connect still succeeds");
    let payload = read_frame(&mut rejected, DEFAULT_MAX_FRAME).expect("a BUSY frame, not a close");
    match decode_response(&payload).expect("decodes") {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Busy);
            assert!(e.message.contains("capacity"), "got {:?}", e.message);
        }
        other => panic!("expected BUSY error, got {other:?}"),
    }
    match read_frame(&mut rejected, DEFAULT_MAX_FRAME) {
        Err(FrameError::Closed) => {}
        other => panic!("expected close after BUSY, got {other:?}"),
    }

    // The rejection and the open-connection gauge are visible over the
    // wire (METRICS) and in the process-local report.
    let metrics = a.metrics().expect("metrics");
    assert_eq!(metrics.net.rejected_connections, 1);
    assert_eq!(metrics.net.open_connections, 2);
    let stats = a.stats().expect("stats");
    assert_eq!(stats.rejected_connections, 1);
    assert_eq!(stats.metrics_requests, 1, "STATS must carry the METRICS counter");
    assert!(stats.error_responses >= 1, "the BUSY frame counts as an error response");
    let local = server.net_stats();
    assert_eq!(local.rejected_connections, 1);
    assert_eq!(local.open_connections, 2);

    // Departures free slots: close one, the next connect succeeds.
    drop(b);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(_) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("slot never freed after departure: {e:?}"),
        }
    }
    server.shutdown();
}

/// A read timeout that lands mid-frame means the stream is
/// desynchronized: the server must send the promised final TIMEOUT
/// error frame before closing, never a silent drop.
#[test]
fn mid_frame_read_timeout_sends_a_final_timeout_error() {
    let g = generate::gex();
    let (engine, _) = Engine::with_options(g, EngineOptions { k: 2, ..Default::default() });
    let engine = Arc::new(engine);
    let server = Server::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, &encode_request(&Request::Hello { version: PROTOCOL_VERSION }))
        .unwrap();
    let ack = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_response(&ack).unwrap(), Response::HelloAck { .. }));

    // A header promising 8 payload bytes, followed by only 3, then
    // silence: the connection dies mid-frame.
    use std::io::Write;
    stream.write_all(&8u32.to_be_bytes()).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    stream.flush().unwrap();

    let payload =
        read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("a final error frame, not a bare close");
    match decode_response(&payload).unwrap() {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Timeout);
            assert!(e.message.contains("mid-frame"), "got {:?}", e.message);
        }
        other => panic!("expected TIMEOUT error, got {other:?}"),
    }
    match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
        Err(FrameError::Closed) => {}
        other => panic!("expected close after the final error, got {other:?}"),
    }
    server.shutdown();
}

/// An idle timeout at a frame boundary is a clean close: EOF, no error
/// frame — an idle client did nothing wrong.
#[test]
fn idle_timeout_at_a_frame_boundary_closes_cleanly() {
    let g = generate::gex();
    let (engine, _) = Engine::with_options(g, EngineOptions { k: 2, ..Default::default() });
    let engine = Arc::new(engine);
    let server = Server::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, &encode_request(&Request::Hello { version: PROTOCOL_VERSION }))
        .unwrap();
    let ack = read_frame(&mut stream, DEFAULT_MAX_FRAME).unwrap();
    assert!(matches!(decode_response(&ack).unwrap(), Response::HelloAck { .. }));

    // Go silent at the frame boundary; the next thing on the wire must
    // be EOF, not an error frame.
    match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
        Err(FrameError::Closed) => {}
        other => panic!("expected a clean close, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn shutdown_unblocks_idle_connections() {
    // An idle client parked inside the server's read must not stall
    // shutdown for its full read timeout.
    let g = generate::gex();
    let (_engine, server) = start_server(g, 2);
    let mut idle = Client::connect(server.local_addr()).expect("connect");
    idle.ping().expect("ping");
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with an idle connection",
        t0.elapsed()
    );
    assert!(idle.ping().is_err(), "connection must be closed by shutdown");
}
