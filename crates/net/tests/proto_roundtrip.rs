//! Wire round-trip properties: a CPQ that crosses the protocol — render
//! to text, frame, decode, parse — must come back semantically unchanged
//! (equal canonical form), for every benchmark query and for randomly
//! generated query trees.

use cpqx_graph::generate;
use cpqx_graph::{ExtLabel, Graph};
use cpqx_net::proto::{
    decode_request, encode_request, read_frame, write_frame, Request, WireOp, WireSeqLabel,
    DEFAULT_MAX_FRAME,
};
use cpqx_query::canonical::{cache_key, canonicalize};
use cpqx_query::{benchqueries, parse_cpq, Cpq};
use proptest::prelude::*;

/// Sends `q` through the full wire path (text → request frame → bytes →
/// decoded request → parse) and returns what the server would evaluate.
fn through_the_wire(q: &Cpq, g: &Graph) -> Cpq {
    let text = q.to_text(g);
    let mut wire = Vec::new();
    write_frame(&mut wire, &encode_request(&Request::Query(text))).unwrap();
    let payload = read_frame(&mut std::io::Cursor::new(wire), DEFAULT_MAX_FRAME).unwrap();
    let Request::Query(received) = decode_request(&payload).unwrap() else {
        panic!("query decoded as a different opcode");
    };
    parse_cpq(&received, g).expect("server-side parse of client-rendered text")
}

#[test]
fn every_benchquery_survives_the_wire() {
    for seed in [1u64, 7, 42] {
        let g = generate::gmark(400, seed);
        let named: Vec<_> = benchqueries::yago_queries(&g, seed)
            .into_iter()
            .chain(benchqueries::lubm_queries(&g, seed))
            .chain(benchqueries::watdiv_queries(&g, seed))
            .collect();
        assert_eq!(named.len(), 4 + 7 + 12);
        for nq in named {
            let received = through_the_wire(&nq.query, &g);
            assert_eq!(
                canonicalize(&received),
                canonicalize(&nq.query),
                "{} (seed {seed}) changed across the wire",
                nq.name
            );
            assert_eq!(cache_key(&received), cache_key(&nq.query));
        }
    }
}

fn cpq_strategy(ext_labels: u16) -> BoxedStrategy<Cpq> {
    let leaf = prop_oneof![
        5 => (0..ext_labels).prop_map(|l| Cpq::ext(ExtLabel(l))),
        1 => Just(Cpq::Id),
    ];
    leaf.boxed().prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.join(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.conj(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_query_trees_survive_the_wire(
        (seed, pick) in (0u64..3, 0u64..u64::MAX),
    ) {
        let g = generate::gmark(60, seed);
        let strat = cpq_strategy(g.ext_label_count());
        let mut rng = TestRng::new(pick);
        let q = strat.new_value(&mut rng);
        let received = through_the_wire(&q, &g);
        prop_assert_eq!(canonicalize(&received), canonicalize(&q), "query {:?}", q);
    }
}

fn wire_op_strategy() -> BoxedStrategy<WireOp> {
    let label = || {
        prop_oneof![
            Just("cites".to_string()),
            Just("livesIn".to_string()),
            Just("héldIn".to_string()), // non-ASCII names must survive UTF-8 framing
            Just(String::new()),
        ]
    };
    let seq = prop::collection::vec(
        (prop::bool::ANY, label()).prop_map(|(inverse, label)| WireSeqLabel { inverse, label }),
        0..cpqx_graph::MAX_SEQ_LEN,
    );
    prop_oneof![
        (any::<u32>(), any::<u32>(), label()).prop_map(|(src, dst, label)| WireOp::InsertEdge {
            src,
            dst,
            label
        }),
        (any::<u32>(), any::<u32>(), label()).prop_map(|(src, dst, label)| WireOp::DeleteEdge {
            src,
            dst,
            label
        }),
        (any::<u32>(), any::<u32>(), label(), label())
            .prop_map(|(src, dst, from, to)| WireOp::ChangeEdgeLabel { src, dst, from, to }),
        label().prop_map(|name| WireOp::AddVertex { name }),
        any::<u32>().prop_map(|vertex| WireOp::DeleteVertex { vertex }),
        seq.prop_map(|seq| WireOp::InsertInterest { seq }),
        prop::collection::vec(
            (prop::bool::ANY, label()).prop_map(|(inverse, label)| WireSeqLabel { inverse, label }),
            0..cpqx_graph::MAX_SEQ_LEN,
        )
        .prop_map(|seq| WireOp::DeleteInterest { seq }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Typed delta frames round-trip op-for-op, including truncation
    // robustness of every random encoding.
    #[test]
    fn random_deltas_survive_the_wire(
        ops in prop::collection::vec(wire_op_strategy(), 0..12),
    ) {
        let req = Request::Delta(ops);
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req.clone());
        for cut in 0..bytes.len() {
            let _ = decode_request(&bytes[..cut]); // must never panic
        }
        // Framed transport preserves the payload byte-for-byte.
        let mut wire = Vec::new();
        write_frame(&mut wire, &bytes).unwrap();
        let payload = read_frame(&mut std::io::Cursor::new(wire), DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(decode_request(&payload).unwrap(), req);
    }
}
