//! Query canonicalization — stable cache keys for semantically equal CPQs.
//!
//! Two CPQs that differ only in conjunct order, join/conjunction
//! associativity, duplicate conjuncts, or identity no-ops denote the same
//! relation. A serving layer that caches plans or results per query text
//! would miss all of those equalities, so this module rewrites a [`Cpq`]
//! into a canonical representative:
//!
//! * joins are flattened and re-associated left-to-right, and identity
//!   factors are dropped (`q ∘ id = id ∘ q = q`, the planner's rewrite 2);
//! * conjunctions are flattened, deduplicated (`q ∩ q = q`), and sorted by
//!   a total syntactic order (`∩` is commutative and associative);
//! * an identity conjunct, if any, is moved to a single trailing `∩ id`
//!   (the planner fuses exactly that shape);
//! * `id ∩ id`, `id ∘ id` and friends collapse to `id`.
//!
//! [`cache_key`] renders the canonical form as a compact string over
//! extended-label ids — the key the engine's plan and result caches use.
//! Canonicalization is purely syntactic and graph-independent; it never
//! changes query semantics (every rewrite above is an identity of the CPQ
//! algebra, Sec. III-B).

use crate::ast::Cpq;

/// Rewrites `q` into its canonical representative (see module docs).
/// Idempotent: `canonicalize(&canonicalize(q)) == canonicalize(q)`.
pub fn canonicalize(q: &Cpq) -> Cpq {
    match q {
        Cpq::Id => Cpq::Id,
        Cpq::Label(l) => Cpq::Label(*l),
        Cpq::Join(..) => {
            let mut factors = Vec::new();
            collect_join_factors(q, &mut factors);
            rebuild_join(factors)
        }
        Cpq::Conj(..) => {
            let mut conjuncts = Vec::new();
            let mut has_id = false;
            collect_conjuncts(q, &mut conjuncts, &mut has_id);
            rebuild_conj(conjuncts, has_id)
        }
    }
}

/// The canonical cache key of `q`: a compact, injective rendering of its
/// canonical form over extended-label ids (`l3`, `j(...)`, `c(...)`, `i`).
pub fn cache_key(q: &Cpq) -> String {
    encode(&canonicalize(q))
}

/// Flattens a join tree, canonicalizes every factor, drops identities and
/// re-flattens factors whose canonical form is itself a join.
fn collect_join_factors(q: &Cpq, out: &mut Vec<Cpq>) {
    match q {
        Cpq::Join(a, b) => {
            collect_join_factors(a, out);
            collect_join_factors(b, out);
        }
        other => {
            let canon = canonicalize(other);
            match canon {
                Cpq::Id => {}
                // A factor can canonicalize into a join (e.g. `(a∘b) ∩
                // (b∘a ∩ a∘b)` → `a∘b` after dedup+sort): splice it in.
                Cpq::Join(..) => splice_join(canon, out),
                other => out.push(other),
            }
        }
    }
}

fn splice_join(q: Cpq, out: &mut Vec<Cpq>) {
    match q {
        Cpq::Join(a, b) => {
            splice_join(*a, out);
            splice_join(*b, out);
        }
        other => out.push(other),
    }
}

fn rebuild_join(factors: Vec<Cpq>) -> Cpq {
    let mut it = factors.into_iter();
    let Some(first) = it.next() else {
        return Cpq::Id; // id ∘ id ∘ … = id
    };
    it.fold(first, |acc, f| acc.join(f))
}

/// Flattens a conjunction tree, canonicalizes every conjunct, splices
/// nested canonical conjunctions and records identity conjuncts.
fn collect_conjuncts(q: &Cpq, out: &mut Vec<Cpq>, has_id: &mut bool) {
    match q {
        Cpq::Conj(a, b) => {
            collect_conjuncts(a, out, has_id);
            collect_conjuncts(b, out, has_id);
        }
        other => {
            let canon = canonicalize(other);
            splice_conj(canon, out, has_id);
        }
    }
}

fn splice_conj(q: Cpq, out: &mut Vec<Cpq>, has_id: &mut bool) {
    match q {
        Cpq::Id => *has_id = true,
        Cpq::Conj(a, b) => {
            splice_conj(*a, out, has_id);
            splice_conj(*b, out, has_id);
        }
        other => out.push(other),
    }
}

fn rebuild_conj(mut conjuncts: Vec<Cpq>, has_id: bool) -> Cpq {
    conjuncts.sort_by_cached_key(encode);
    conjuncts.dedup();
    let mut it = conjuncts.into_iter();
    let Some(first) = it.next() else {
        return Cpq::Id; // id ∩ id ∩ … = id
    };
    let folded = it.fold(first, |acc, c| acc.conj(c));
    if has_id {
        folded.with_id()
    } else {
        folded
    }
}

/// Injective compact rendering used both as the sort order and the cache
/// key. Stable across processes (depends only on extended-label ids).
fn encode(q: &Cpq) -> String {
    let mut s = String::new();
    encode_into(q, &mut s);
    s
}

fn encode_into(q: &Cpq, s: &mut String) {
    use std::fmt::Write;
    match q {
        Cpq::Id => s.push('i'),
        Cpq::Label(l) => {
            let _ = write!(s, "l{}", l.0);
        }
        Cpq::Join(a, b) => {
            s.push_str("j(");
            encode_into(a, s);
            s.push(',');
            encode_into(b, s);
            s.push(')');
        }
        Cpq::Conj(a, b) => {
            s.push_str("c(");
            encode_into(a, s);
            s.push(',');
            encode_into(b, s);
            s.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_reference;
    use cpqx_graph::{generate, ExtLabel, Label};

    fn l(i: u16) -> Cpq {
        Cpq::ext(Label(i).fwd())
    }

    #[test]
    fn conjunction_order_is_normalized() {
        let a = l(0).join(l(1)).conj(l(2));
        let b = l(2).conj(l(0).join(l(1)));
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_eq!(cache_key(&a), cache_key(&b));
    }

    #[test]
    fn join_associativity_is_normalized() {
        let a = l(0).join(l(1)).join(l(2));
        let b = l(0).join(l(1).join(l(2)));
        assert_eq!(canonicalize(&a), canonicalize(&b));
        assert_ne!(cache_key(&a), cache_key(&l(2).join(l(1)).join(l(0))), "join is ordered");
    }

    #[test]
    fn identity_no_ops_are_dropped() {
        let q = l(0).join(Cpq::Id).join(l(1));
        assert_eq!(canonicalize(&q), canonicalize(&l(0).join(l(1))));
        assert_eq!(canonicalize(&Cpq::Id.join(Cpq::Id)), Cpq::Id);
        assert_eq!(canonicalize(&Cpq::Id.conj(Cpq::Id)), Cpq::Id);
        // But ∩ id is semantic (loop restriction) and must survive.
        let q = l(0).with_id();
        assert!(matches!(canonicalize(&q), Cpq::Conj(_, b) if *b == Cpq::Id));
    }

    #[test]
    fn duplicate_conjuncts_collapse() {
        let q = l(0).conj(l(0)).conj(l(0));
        assert_eq!(canonicalize(&q), l(0));
        let q = l(0).conj(l(1)).conj(l(0));
        assert_eq!(canonicalize(&q), canonicalize(&l(0).conj(l(1))));
    }

    #[test]
    fn nested_id_conjunctions_hoist() {
        // (a ∩ id) ∩ (b ∩ id) and (a ∩ b) ∩ id share a canonical form.
        let a = l(0).with_id().conj(l(1).with_id());
        let b = l(0).conj(l(1)).with_id();
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let qs = [
            l(0),
            Cpq::Id,
            l(0).join(l(1)).conj(l(2).join(l(3))).with_id(),
            l(1).conj(l(0)).join(l(2).conj(l(2))),
            Cpq::Id.join(l(0).conj(l(1)).conj(l(0))),
        ];
        for q in &qs {
            let once = canonicalize(q);
            assert_eq!(canonicalize(&once), once, "not idempotent for {q:?}");
        }
    }

    #[test]
    fn encode_is_injective_on_structure() {
        assert_ne!(encode(&l(0).join(l(1))), encode(&l(0).conj(l(1))));
        assert_ne!(encode(&l(0)), encode(&Cpq::ext(Label(0).inv())));
        assert_ne!(encode(&l(10)), encode(&l(1)));
    }

    #[test]
    fn canonicalization_preserves_semantics() {
        // Deterministic sweep over structured queries on the running
        // example graph: canonical form evaluates identically.
        let g = generate::gex();
        let nl = g.ext_label_count();
        let lbl = |i: u16| Cpq::ext(ExtLabel(i % nl));
        let mut queries = Vec::new();
        for i in 0..nl {
            for j in 0..nl {
                queries.push(lbl(i).join(lbl(j)).conj(lbl(j).join(lbl(i))));
                queries.push(lbl(j).conj(lbl(i)).conj(lbl(j)).with_id());
                queries.push(
                    lbl(i).join(Cpq::Id).join(lbl(j)).conj(Cpq::Id.conj(lbl(i).join(lbl(j)))),
                );
            }
        }
        for q in &queries {
            let canon = canonicalize(q);
            assert_eq!(
                eval_reference(&g, q),
                eval_reference(&g, &canon),
                "semantics changed for {q:?} -> {canon:?}"
            );
        }
    }
}
