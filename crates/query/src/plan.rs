//! Physical query plans — the paper's parse tree of Sec. IV-D (Fig. 4).
//!
//! The planner lowers a [`Cpq`] into a tree of LOOKUP / JOIN / CONJUNCTION
//! nodes with identity *fused* into the operators, applying the paper's
//! three optimizations: (1) sorted-merge physical operators (the executors'
//! concern), (2) the rewrite `q ∘ id = q` so only `q ∩ id` remains as
//! IDENTITY, and (3) IDENTITY executed together with the other operators
//! (the `…Id` node variants). Maximal label chains are chunked into
//! LOOKUPs of length ≤ k; an `is_indexed` oracle lets interest-aware indexes
//! force splits of non-indexed sequences (Sec. V-B).

use crate::ast::Cpq;
use cpqx_graph::{ExtLabel, LabelSeq};

/// A physical plan node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Plan {
    /// The whole-identity relation (the bare query `id`).
    AllId,
    /// Index lookup of a label sequence (length `1..=k`).
    Lookup(LabelSeq),
    /// Fused `⟦seq⟧ ∩ id` (the paper's LOOK UP with IDENTITY).
    LookupId(LabelSeq),
    /// Relational join of two sub-plans.
    Join(Box<Plan>, Box<Plan>),
    /// Fused `(left ∘ right) ∩ id`.
    JoinId(Box<Plan>, Box<Plan>),
    /// Conjunction (set intersection) of two sub-plans.
    Conj(Box<Plan>, Box<Plan>),
    /// Fused `(left ∩ right) ∩ id`.
    ConjId(Box<Plan>, Box<Plan>),
}

impl Plan {
    /// Number of LOOKUP leaves (Thm. 4.5's cost drivers α₁/α₂ relate to the
    /// join/conjunction node counts below).
    pub fn lookup_count(&self) -> usize {
        match self {
            Plan::AllId => 0,
            Plan::Lookup(_) | Plan::LookupId(_) => 1,
            Plan::Join(a, b) | Plan::JoinId(a, b) | Plan::Conj(a, b) | Plan::ConjId(a, b) => {
                a.lookup_count() + b.lookup_count()
            }
        }
    }

    /// Number of JOIN nodes (α₁ in Thm. 4.5).
    pub fn join_count(&self) -> usize {
        match self {
            Plan::AllId | Plan::Lookup(_) | Plan::LookupId(_) => 0,
            Plan::Join(a, b) | Plan::JoinId(a, b) => 1 + a.join_count() + b.join_count(),
            Plan::Conj(a, b) | Plan::ConjId(a, b) => a.join_count() + b.join_count(),
        }
    }

    /// Number of CONJUNCTION nodes (α₂ in Thm. 4.5).
    pub fn conj_count(&self) -> usize {
        match self {
            Plan::AllId | Plan::Lookup(_) | Plan::LookupId(_) => 0,
            Plan::Conj(a, b) | Plan::ConjId(a, b) => 1 + a.conj_count() + b.conj_count(),
            Plan::Join(a, b) | Plan::JoinId(a, b) => a.conj_count() + b.conj_count(),
        }
    }

    /// All LOOKUP label sequences in the plan.
    pub fn lookup_seqs(&self) -> Vec<LabelSeq> {
        let mut out = Vec::new();
        self.collect_seqs(&mut out);
        out
    }

    fn collect_seqs(&self, out: &mut Vec<LabelSeq>) {
        match self {
            Plan::AllId => {}
            Plan::Lookup(s) | Plan::LookupId(s) => out.push(*s),
            Plan::Join(a, b) | Plan::JoinId(a, b) | Plan::Conj(a, b) | Plan::ConjId(a, b) => {
                a.collect_seqs(out);
                b.collect_seqs(out);
            }
        }
    }
}

impl std::fmt::Display for Plan {
    /// Indented plan tree, EXPLAIN-style.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn rec(p: &Plan, f: &mut std::fmt::Formatter<'_>, depth: usize) -> std::fmt::Result {
            let pad = "  ".repeat(depth);
            match p {
                Plan::AllId => writeln!(f, "{pad}IDENTITY (all vertices)"),
                Plan::Lookup(s) => writeln!(f, "{pad}LOOKUP {s:?}"),
                Plan::LookupId(s) => writeln!(f, "{pad}LOOKUP∩id {s:?}"),
                Plan::Join(a, b) | Plan::JoinId(a, b) => {
                    let tag = if matches!(p, Plan::JoinId(..)) { "JOIN∩id" } else { "JOIN" };
                    writeln!(f, "{pad}{tag}")?;
                    rec(a, f, depth + 1)?;
                    rec(b, f, depth + 1)
                }
                Plan::Conj(a, b) | Plan::ConjId(a, b) => {
                    let tag = if matches!(p, Plan::ConjId(..)) {
                        "CONJUNCTION∩id"
                    } else {
                        "CONJUNCTION"
                    };
                    writeln!(f, "{pad}{tag}")?;
                    rec(a, f, depth + 1)?;
                    rec(b, f, depth + 1)
                }
            }
        }
        rec(self, f, 0)
    }
}

/// One factor of a flattened join chain: either a run of plain labels or a
/// complex (conjunction) subquery.
enum Factor<'q> {
    Labels(Vec<ExtLabel>),
    Complex(&'q Cpq),
}

/// Lowers `q` into a physical plan.
///
/// * `k` — the index path-length parameter; label chains are chunked into
///   LOOKUPs of at most `k` labels.
/// * `is_indexed` — whether a sequence of length `2..=k` can be answered by
///   one lookup. Full indexes (CPQx, Path) answer every sequence of length
///   ≤ k; interest-aware indexes only the interests plus all length-1
///   sequences (which are always indexed, Sec. V-A).
pub fn plan_query(q: &Cpq, k: usize, is_indexed: &dyn Fn(&LabelSeq) -> bool) -> Plan {
    assert!(k >= 1, "index parameter k must be at least 1");
    build(q, k, is_indexed)
}

/// Convenience planner for full indexes: every sequence of length ≤ k is
/// answerable by one lookup.
pub fn plan_for_k(q: &Cpq, k: usize) -> Plan {
    plan_query(q, k, &|_seq| true)
}

fn build(q: &Cpq, k: usize, is_indexed: &dyn Fn(&LabelSeq) -> bool) -> Plan {
    match q {
        Cpq::Id => Plan::AllId,
        Cpq::Label(l) => Plan::Lookup(LabelSeq::single(*l)),
        Cpq::Conj(..) => {
            // Flatten nested conjunctions; `∩ id` becomes a fused variant.
            let mut conjuncts = Vec::new();
            flatten_conj(q, &mut conjuncts);
            let mut has_id = false;
            let mut plans = Vec::new();
            for c in conjuncts {
                if matches!(c, Cpq::Id) {
                    has_id = true;
                } else {
                    plans.push(build(c, k, is_indexed));
                }
            }
            let Some(mut plan) = plans.pop() else {
                return Plan::AllId; // id ∩ id ∩ …
            };
            while let Some(p) = plans.pop() {
                plan = Plan::Conj(Box::new(p), Box::new(plan));
            }
            if has_id {
                fuse_id(plan)
            } else {
                plan
            }
        }
        Cpq::Join(..) => {
            let mut factors = Vec::new();
            flatten_join(q, &mut factors);
            // `q ∘ id = q`: drop identity factors.
            let mut parts: Vec<Factor<'_>> = Vec::new();
            for f in factors {
                match f {
                    Cpq::Id => {}
                    Cpq::Label(l) => match parts.last_mut() {
                        Some(Factor::Labels(run)) => run.push(*l),
                        _ => parts.push(Factor::Labels(vec![*l])),
                    },
                    complex => parts.push(Factor::Complex(complex)),
                }
            }
            if parts.is_empty() {
                return Plan::AllId; // id ∘ id ∘ …
            }
            let mut plans = Vec::new();
            for part in parts {
                match part {
                    Factor::Labels(run) => chunk_run(&run, k, is_indexed, &mut plans),
                    Factor::Complex(c) => plans.push(build(c, k, is_indexed)),
                }
            }
            let mut it = plans.into_iter();
            let mut plan = it.next().unwrap();
            for p in it {
                plan = Plan::Join(Box::new(plan), Box::new(p));
            }
            plan
        }
    }
}

/// Splits a maximal label run into LOOKUPs, greedily taking the longest
/// indexed prefix (≤ k); single labels are always indexed.
fn chunk_run(
    run: &[ExtLabel],
    k: usize,
    is_indexed: &dyn Fn(&LabelSeq) -> bool,
    out: &mut Vec<Plan>,
) {
    let mut i = 0;
    while i < run.len() {
        let max_len = k.min(run.len() - i).min(cpqx_graph::MAX_SEQ_LEN);
        let mut taken = 1;
        for len in (2..=max_len).rev() {
            let seq = LabelSeq::from_slice(&run[i..i + len]);
            if is_indexed(&seq) {
                taken = len;
                break;
            }
        }
        out.push(Plan::Lookup(LabelSeq::from_slice(&run[i..i + taken])));
        i += taken;
    }
}

fn flatten_conj<'q>(q: &'q Cpq, out: &mut Vec<&'q Cpq>) {
    match q {
        Cpq::Conj(a, b) => {
            flatten_conj(a, out);
            flatten_conj(b, out);
        }
        other => out.push(other),
    }
}

fn flatten_join<'q>(q: &'q Cpq, out: &mut Vec<&'q Cpq>) {
    match q {
        Cpq::Join(a, b) => {
            flatten_join(a, out);
            flatten_join(b, out);
        }
        other => out.push(other),
    }
}

/// Fuses a trailing `∩ id` into the plan's root operator (the paper's
/// LOOK-UP-ID / JOIN-ID / CONJUNCTION-ID nodes).
fn fuse_id(plan: Plan) -> Plan {
    match plan {
        Plan::Lookup(s) => Plan::LookupId(s),
        Plan::Join(a, b) => Plan::JoinId(a, b),
        Plan::Conj(a, b) => Plan::ConjId(a, b),
        // Already identity-restricted (or the identity itself).
        fused => fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::Label;

    fn l(i: u16) -> ExtLabel {
        Label(i).fwd()
    }

    fn seq(ls: &[ExtLabel]) -> LabelSeq {
        LabelSeq::from_slice(ls)
    }

    #[test]
    fn chain_is_chunked_by_k() {
        // Fig. 4: ℓ1∘ℓ2∘ℓ3 with k = 2 → LOOKUP⟨ℓ1,ℓ2⟩ ⋈ LOOKUP⟨ℓ3⟩.
        let q = Cpq::chain(&[l(0), l(1), l(2)]);
        let p = plan_for_k(&q, 2);
        assert_eq!(
            p,
            Plan::Join(
                Box::new(Plan::Lookup(seq(&[l(0), l(1)]))),
                Box::new(Plan::Lookup(seq(&[l(2)]))),
            )
        );
        let p1 = plan_for_k(&q, 1);
        assert_eq!(p1.lookup_count(), 3);
        assert_eq!(p1.join_count(), 2);
        let p3 = plan_for_k(&q, 3);
        assert_eq!(p3, Plan::Lookup(seq(&[l(0), l(1), l(2)])));
    }

    #[test]
    fn join_with_id_is_rewritten_away() {
        // q ∘ id = q (paper's second optimization).
        let q = Cpq::ext(l(0)).join(Cpq::Id).join(Cpq::ext(l(1)));
        let p = plan_for_k(&q, 2);
        assert_eq!(p, Plan::Lookup(seq(&[l(0), l(1)])));
    }

    #[test]
    fn conj_id_is_fused() {
        let q = Cpq::chain(&[l(0), l(1)]).with_id();
        assert_eq!(plan_for_k(&q, 2), Plan::LookupId(seq(&[l(0), l(1)])));
        let q = Cpq::chain(&[l(0), l(1), l(2)]).with_id();
        assert!(matches!(plan_for_k(&q, 2), Plan::JoinId(..)));
        let q = Cpq::chain(&[l(0), l(1)]).conj(Cpq::ext(l(2))).with_id();
        assert!(matches!(plan_for_k(&q, 2), Plan::ConjId(..)));
    }

    #[test]
    fn fig4_example_shape() {
        // [(ℓ1∘ℓ2∘ℓ3) ∩ (ℓ4∘ℓ5)] ∩ id with k = 2.
        let q = Cpq::chain(&[l(1), l(2), l(3)]).conj(Cpq::chain(&[l(4), l(5)])).with_id();
        let p = plan_for_k(&q, 2);
        match p {
            Plan::ConjId(left, right) => {
                assert!(matches!(*left, Plan::Join(..)));
                assert_eq!(*right, Plan::Lookup(seq(&[l(4), l(5)])));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn pure_identity_queries() {
        assert_eq!(plan_for_k(&Cpq::Id, 2), Plan::AllId);
        assert_eq!(plan_for_k(&Cpq::Id.clone().conj(Cpq::Id), 2), Plan::AllId);
        assert_eq!(plan_for_k(&Cpq::Id.clone().join(Cpq::Id), 2), Plan::AllId);
    }

    #[test]
    fn interest_oracle_forces_splits() {
        // Only ⟨l0,l1⟩ is indexed; ⟨l1,l2⟩ or ⟨l2,l3⟩ must split.
        let indexed = seq(&[l(0), l(1)]);
        let oracle = move |s: &LabelSeq| *s == indexed;
        let q = Cpq::chain(&[l(0), l(1), l(2), l(3)]);
        let p = plan_query(&q, 2, &oracle);
        let seqs = p.lookup_seqs();
        assert_eq!(seqs[0], seq(&[l(0), l(1)]));
        assert_eq!(seqs[1], seq(&[l(2)]));
        assert_eq!(seqs[2], seq(&[l(3)]));
    }

    #[test]
    fn counts_match_structure() {
        let q = Cpq::chain(&[l(0), l(1)]).conj(Cpq::chain(&[l(2), l(3)])).join(Cpq::ext(l(4)));
        let p = plan_for_k(&q, 2);
        assert_eq!(p.lookup_count(), 3);
        assert_eq!(p.join_count(), 1);
        assert_eq!(p.conj_count(), 1);
    }

    #[test]
    fn nested_conj_flattens() {
        let q = Cpq::ext(l(0)).conj(Cpq::ext(l(1)).conj(Cpq::ext(l(2))));
        let p = plan_for_k(&q, 2);
        assert_eq!(p.conj_count(), 2);
        assert_eq!(p.lookup_count(), 3);
    }
}
