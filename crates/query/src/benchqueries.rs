//! CPQ translations of the synthetic benchmark query sets used in
//! Figs. 9–10: YAGO2 (Y1–Y4, from Harbi et al.), LUBM (L1–L7) and WatDiv
//! (linear L1–L5 and star S1–S7).
//!
//! The paper transforms these benchmark queries "into CPQs with keeping
//! query shapes and their edge labels" and assigns sources/targets itself.
//! The original SPARQL texts are not available offline, so we do the same
//! transformation one level up: each query keeps its documented *shape*
//! (chain, star, triangle, snowflake, of the documented size) and labels are
//! instantiated on the stand-in graph under the paper's non-empty-subpath
//! filter. The shapes below follow the published query classifications of
//! the respective benchmarks.

use crate::ast::{Cpq, Template};
use crate::workload::{GraphProbe, SeqProbe, WorkloadGen};
use cpqx_graph::{ExtLabel, Graph};

/// A named benchmark query.
#[derive(Clone, Debug)]
pub struct NamedQuery {
    /// Benchmark identifier (e.g. `Y1`).
    pub name: String,
    /// The CPQ translation.
    pub query: Cpq,
}

fn instantiate(
    gen: &mut WorkloadGen<'_>,
    probe: &dyn SeqProbe,
    name: &str,
    template: Template,
) -> NamedQuery {
    // Fall back to an unfiltered instantiation on very sparse stand-ins so
    // the harness always has a runnable query (its answer may be empty,
    // which Fig. 7 measures anyway).
    let query = gen.instantiate(template, probe, 300).unwrap_or_else(|| {
        let labels: Vec<ExtLabel> = (0..template.arity()).map(|_| gen.random_label()).collect();
        template.instantiate(&labels)
    });
    NamedQuery { name: name.to_string(), query }
}

/// The four YAGO2 benchmark queries of Fig. 9.
///
/// Shapes per Harbi et al.'s classification: Y1 star (2 legs), Y2 large
/// star, Y3 snowflake, Y4 complex snowflake/chain combination.
pub fn yago_queries(g: &Graph, seed: u64) -> Vec<NamedQuery> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, seed);
    vec![
        instantiate(&mut gen, &probe, "Y1", Template::C2),
        instantiate(&mut gen, &probe, "Y2", Template::St),
        instantiate(&mut gen, &probe, "Y3", Template::TC),
        instantiate(&mut gen, &probe, "Y4", Template::ST),
    ]
}

/// The seven LUBM benchmark queries of Fig. 10 (left series).
///
/// LUBM queries are small chains, triangles and stars over the university
/// schema; the shape ladder below mirrors their published pattern sizes.
pub fn lubm_queries(g: &Graph, seed: u64) -> Vec<NamedQuery> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, seed);
    vec![
        instantiate(&mut gen, &probe, "L1", Template::C2),
        instantiate(&mut gen, &probe, "L2", Template::T),
        instantiate(&mut gen, &probe, "L3", Template::S),
        instantiate(&mut gen, &probe, "L4", Template::St),
        instantiate(&mut gen, &probe, "L5", Template::C4),
        instantiate(&mut gen, &probe, "L6", Template::C2i),
        instantiate(&mut gen, &probe, "L7", Template::ST),
    ]
}

/// The WatDiv benchmark queries of Fig. 10 (right series): linear queries
/// L1–L5 (chains — WatDiv's "linear" class) and star queries S1–S7.
pub fn watdiv_queries(g: &Graph, seed: u64) -> Vec<NamedQuery> {
    let probe = GraphProbe(g);
    let mut gen = WorkloadGen::new(g, seed);
    let mut out = Vec::new();
    // Linear class: chains of growing length (WatDiv L-queries join 2–4
    // triple patterns in a path).
    for (i, t) in [Template::C2, Template::C2, Template::C4, Template::C4, Template::C2]
        .into_iter()
        .enumerate()
    {
        out.push(instantiate(&mut gen, &probe, &format!("L{}", i + 1), t));
    }
    // Star class: source-rooted stars of 2–4 legs (St) and star+chain
    // combinations (TT / TC / SC).
    for (i, t) in [
        Template::St,
        Template::St,
        Template::T,
        Template::TT,
        Template::TC,
        Template::SC,
        Template::S,
    ]
    .into_iter()
    .enumerate()
    {
        out.push(instantiate(&mut gen, &probe, &format!("S{}", i + 1), t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;

    #[test]
    fn yago_set_is_stable_and_shaped() {
        let g = generate::gmark(500, 2);
        let qs = yago_queries(&g, 42);
        assert_eq!(qs.len(), 4);
        assert_eq!(qs[0].name, "Y1");
        assert_eq!(qs[0].query.diameter(), 2);
        let qs2 = yago_queries(&g, 42);
        for (a, b) in qs.iter().zip(&qs2) {
            assert_eq!(a.query, b.query);
        }
    }

    #[test]
    fn lubm_and_watdiv_counts() {
        let g = generate::gmark(500, 2);
        assert_eq!(lubm_queries(&g, 1).len(), 7);
        let w = watdiv_queries(&g, 1);
        assert_eq!(w.len(), 12);
        assert!(w.iter().filter(|q| q.name.starts_with('S')).count() == 7);
    }

    #[test]
    fn queries_reference_existing_labels() {
        let g = generate::gmark(400, 5);
        for nq in lubm_queries(&g, 3) {
            for l in nq.query.labels_used() {
                assert!(l.0 < g.ext_label_count(), "{} uses out-of-range label", nq.name);
            }
        }
    }
}
