//! Physical pair-set operators shared by every engine.
//!
//! All operators consume and produce *normalized* pair sets: sorted
//! source-major, deduplicated. The index executors (Sec. IV-D), the Path
//! baseline, and the BFS baseline all reuse these, so engine comparisons in
//! the benchmarks measure index design rather than operator implementations
//! (the paper does the same: "we used the same query plans for all methods").
//!
//! Hot compositions go through an [`EvalContext`]: a per-evaluation scratch
//! buffer that the sorted-merge join re-keys the left operand into, so a
//! plan with many joins allocates the buffer once instead of once per join.
//! Operators that touch the graph read its per-chunk CSR faces
//! ([`cpqx_graph::csr`]): [`expand_adjacency`] walks forward faces,
//! [`join_label_left`] streams reverse faces — the left operand is never
//! materialized or re-sorted at all.

use cpqx_graph::{ExtLabel, Graph, Pair};

/// Reusable per-evaluation scratch state for the pair-set operators.
///
/// One evaluation (a plan execution, a BFS recursion, a path-index
/// recursion) creates a context up front and threads it through its
/// joins; the target-major re-key buffer then grows to the largest left
/// operand once and is reused by every subsequent join instead of being
/// allocated and freed per call.
#[derive(Default)]
pub struct EvalContext {
    /// Scratch for the target-major re-key of the join's left operand.
    swap: Vec<Pair>,
}

impl EvalContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorted-merge join `{(v, y) | (v, u) ∈ left, (u, y) ∈ right}`.
    ///
    /// `right` must be normalized. `left` may be in any order (it is
    /// re-keyed target-major into the context's scratch buffer). Output is
    /// normalized.
    pub fn join_pairs(&mut self, left: &[Pair], right: &[Pair]) -> Vec<Pair> {
        self.join_inner(left, right, false)
    }

    /// The paper's fused `JOIN-ID`: like [`EvalContext::join_pairs`] but
    /// keeps only cyclic results (`v = y`).
    pub fn join_pairs_id(&mut self, left: &[Pair], right: &[Pair]) -> Vec<Pair> {
        self.join_inner(left, right, true)
    }

    fn join_inner(&mut self, left: &[Pair], right: &[Pair], require_loop: bool) -> Vec<Pair> {
        if left.is_empty() || right.is_empty() {
            return Vec::new();
        }
        // Re-key the left side target-major into the reused scratch.
        self.swap.clear();
        self.swap.extend(left.iter().map(|p| p.swap()));
        self.swap.sort_unstable();
        let mut out = Vec::new();
        merge_join(&self.swap, right, require_loop, &mut out);
        cpqx_graph::pair::normalize(&mut out);
        out
    }
}

/// One-shot convenience wrapper over [`EvalContext::join_pairs`] (tests,
/// cold paths). Hot loops should hold a context instead.
pub fn join_pairs(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
    EvalContext::new().join_pairs(left, right)
}

/// One-shot convenience wrapper over [`EvalContext::join_pairs_id`].
pub fn join_pairs_id(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
    EvalContext::new().join_pairs_id(left, right)
}

/// Join where the left operand is **already keyed target-major** — i.e.
/// `left_by_target` holds `(u, v)` for every left pair `(v, u)`, sorted.
/// Skips the re-key entirely; the canonical source is a reverse relation
/// the graph already materializes (`⟦ℓ⁻¹⟧` is `⟦ℓ⟧` target-major).
pub fn join_pairs_keyed(left_by_target: &[Pair], right: &[Pair]) -> Vec<Pair> {
    let mut out = Vec::new();
    merge_join(left_by_target, right, false, &mut out);
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// Sorted-merge join core over a target-major-keyed left operand.
fn merge_join(by_target: &[Pair], right: &[Pair], require_loop: bool, out: &mut Vec<Pair>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < by_target.len() && j < right.len() {
        let ku = by_target[i].src();
        let kv = right[j].src();
        match ku.cmp(&kv) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = by_target[i..].partition_point(|p| p.src() == ku) + i;
                let j_end = right[j..].partition_point(|p| p.src() == kv) + j;
                for a in &by_target[i..i_end] {
                    for b in &right[j..j_end] {
                        let v = a.dst();
                        let y = b.dst();
                        if !require_loop || v == y {
                            out.push(Pair::new(v, y));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
}

/// Join `⟦ℓ⟧ ⋈ right` with the left operand streamed from the graph's
/// per-chunk **reverse CSR faces** — zero materialization, zero sorting of
/// the left side.
///
/// Each chunk's reverse face holds the chunk's `ℓ`-pairs keyed by target
/// with grouped sorted sources; a sorted merge of those keys against
/// `right`'s source groups yields the join contributions chunk by chunk,
/// and one final normalization restores global source-major order (join
/// output is normalized anyway, so per-chunk order costs nothing extra).
/// With `require_loop`, keeps only cyclic results (fused `JOIN-ID`).
pub fn join_label_left(g: &Graph, l: ExtLabel, right: &[Pair], require_loop: bool) -> Vec<Pair> {
    let mut out = Vec::new();
    for csr in g.csr_chunks() {
        let Some(face) = csr.face(l) else { continue };
        let keys = face.rev_keys();
        let (mut i, mut j) = (0usize, 0usize);
        while i < keys.len() && j < right.len() {
            let ku = keys[i];
            let kv = right[j].src();
            match ku.cmp(&kv) {
                std::cmp::Ordering::Less => {
                    i += keys[i..].partition_point(|&k| k < kv);
                }
                std::cmp::Ordering::Greater => {
                    j += right[j..].partition_point(|p| p.src() < ku);
                }
                std::cmp::Ordering::Equal => {
                    let j_end = j + right[j..].partition_point(|p| p.src() == kv);
                    for &v in face.rev_sources(i) {
                        for b in &right[j..j_end] {
                            let y = b.dst();
                            if !require_loop || v == y {
                                out.push(Pair::new(v, y));
                            }
                        }
                    }
                    i += 1;
                    j = j_end;
                }
            }
        }
    }
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// Sorted intersection of two normalized pair sets (galloping on skewed
/// inputs — see [`cpqx_graph::pair::intersect_sorted`]).
pub fn intersect_pairs(a: &[Pair], b: &[Pair]) -> Vec<Pair> {
    let mut out = Vec::new();
    cpqx_graph::pair::intersect_sorted(a, b, &mut out);
    out
}

/// Filters a normalized pair set to cyclic pairs (the bare `IDENTITY`
/// operator applied to a pair set).
pub fn filter_loops(pairs: &[Pair]) -> Vec<Pair> {
    pairs.iter().copied().filter(|p| p.is_loop()).collect()
}

/// Expands a normalized pair set by one adjacency step: for every `(v, u)`
/// and every edge `(u, t, ℓ)`, emits `(v, t)`. This is the frontier
/// expansion the index-free BFS baseline uses for chain suffixes, served
/// from the per-chunk forward CSR faces (two array loads per step instead
/// of binary searches over the mixed-label adjacency row).
pub fn expand_adjacency(g: &Graph, pairs: &[Pair], l: ExtLabel) -> Vec<Pair> {
    let mut out = Vec::new();
    for p in pairs {
        for &t in g.csr_targets(p.dst(), l) {
            out.push(Pair::new(p.src(), t));
        }
    }
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// Fused `expand ∩ id`: like [`expand_adjacency`] but keeps only cyclic
/// results `(v, v)` — the one-label-suffix form of `JOIN-ID`.
pub fn expand_adjacency_id(g: &Graph, pairs: &[Pair], l: ExtLabel) -> Vec<Pair> {
    let mut out = Vec::new();
    let rel = g.edge_pairs(l);
    if rel.len() < pairs.len() {
        // The label relation is the smaller side: scan it once and
        // binary-search the (sorted) left operand for the closing pair —
        // an edge `m →ℓ v` yields the loop `(v, v)` iff `(v, m)` is in
        // the left. `O(|ℓ| · log |left|)` instead of one face probe per
        // left pair.
        for e in rel.iter() {
            if pairs.binary_search(&e.swap()).is_ok() {
                out.push(Pair::new(e.dst(), e.dst()));
            }
        }
    } else {
        for p in pairs {
            if g.csr_targets(p.dst(), l).binary_search(&p.src()).is_ok() {
                out.push(Pair::new(p.src(), p.src()));
            }
        }
    }
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// The full identity relation `{(v, v)}` of a graph.
pub fn all_loops(g: &Graph) -> Vec<Pair> {
    g.vertices().map(|v| Pair::new(v, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;

    fn p(v: u32, u: u32) -> Pair {
        Pair::new(v, u)
    }

    #[test]
    fn join_matches_middle() {
        let left = vec![p(0, 1), p(0, 2), p(5, 1)];
        let right = vec![p(1, 7), p(2, 8), p(3, 9)];
        assert_eq!(join_pairs(&left, &right), vec![p(0, 7), p(0, 8), p(5, 7)]);
    }

    #[test]
    fn join_dedups() {
        let left = vec![p(0, 1), p(0, 2)];
        let right = vec![p(1, 7), p(2, 7)];
        assert_eq!(join_pairs(&left, &right), vec![p(0, 7)]);
    }

    #[test]
    fn join_id_keeps_cycles_only() {
        let left = vec![p(0, 1), p(7, 2)];
        let right = vec![p(1, 0), p(2, 8)];
        assert_eq!(join_pairs_id(&left, &right), vec![p(0, 0)]);
    }

    #[test]
    fn join_empty_sides() {
        assert!(join_pairs(&[], &[p(0, 1)]).is_empty());
        assert!(join_pairs(&[p(0, 1)], &[]).is_empty());
    }

    #[test]
    fn context_reuse_matches_one_shot() {
        let mut ctx = EvalContext::new();
        let left = vec![p(0, 1), p(0, 2), p(5, 1)];
        let right = vec![p(1, 7), p(2, 8), p(3, 9)];
        let a = ctx.join_pairs(&left, &right);
        // Second join with a different shape reuses the same scratch.
        let b = ctx.join_pairs(&right, &left);
        assert_eq!(a, join_pairs(&left, &right));
        assert_eq!(b, join_pairs(&right, &left));
        assert_eq!(ctx.join_pairs_id(&[p(0, 1)], &[p(1, 0)]), vec![p(0, 0)]);
    }

    #[test]
    fn keyed_join_skips_rekey() {
        let left = vec![p(0, 1), p(0, 2), p(5, 1)];
        let mut keyed: Vec<Pair> = left.iter().map(|q| q.swap()).collect();
        keyed.sort_unstable();
        let right = vec![p(1, 7), p(2, 8), p(3, 9)];
        assert_eq!(join_pairs_keyed(&keyed, &right), join_pairs(&left, &right));
    }

    #[test]
    fn label_left_join_streams_reverse_faces() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap().fwd();
        let v = g.label_named("v").unwrap().fwd();
        for l in [f, v] {
            let left = g.edge_pairs(l).to_vec();
            let right = g.edge_pairs(f).to_vec();
            assert_eq!(join_label_left(&g, l, &right, false), join_pairs(&left, &right));
            assert_eq!(join_label_left(&g, l, &right, true), join_pairs_id(&left, &right));
        }
        assert!(join_label_left(&g, f, &[], false).is_empty());
    }

    #[test]
    fn expand_matches_join_on_edge_relation() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap().fwd();
        let v = g.label_named("v").unwrap().fwd();
        let base = g.edge_pairs(f).to_vec();
        let a = expand_adjacency(&g, &base, v);
        let b = join_pairs(&base, &g.edge_pairs(v).to_vec());
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let a_id = expand_adjacency_id(&g, &base, v);
        let b_id = join_pairs_id(&base, &g.edge_pairs(v).to_vec());
        assert_eq!(a_id, b_id);
    }

    #[test]
    fn loops_filter() {
        let pairs = vec![p(0, 0), p(0, 1), p(2, 2)];
        assert_eq!(filter_loops(&pairs), vec![p(0, 0), p(2, 2)]);
        let g = generate::cycle(4, "f");
        assert_eq!(all_loops(&g).len(), 4);
    }
}
