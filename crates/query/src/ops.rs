//! Physical pair-set operators shared by every engine.
//!
//! All operators consume and produce *normalized* pair sets: sorted
//! source-major, deduplicated. The index executors (Sec. IV-D), the Path
//! baseline, and the BFS baseline all reuse these, so engine comparisons in
//! the benchmarks measure index design rather than operator implementations
//! (the paper does the same: "we used the same query plans for all methods").

use cpqx_graph::{ExtLabel, Graph, Pair};

/// Sorted-merge join `{(v, y) | (v, u) ∈ left, (u, y) ∈ right}`.
///
/// `right` must be normalized. `left` may be in any order (it is re-sorted
/// target-major internally). Output is normalized.
pub fn join_pairs(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
    join_pairs_inner(left, right, false)
}

/// The paper's fused `JOIN-ID`: like [`join_pairs`] but keeps only cyclic
/// results (`v = y`).
pub fn join_pairs_id(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
    join_pairs_inner(left, right, true)
}

fn join_pairs_inner(left: &[Pair], right: &[Pair], require_loop: bool) -> Vec<Pair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    // Re-key the left side target-major.
    let mut by_target: Vec<Pair> = left.iter().map(|p| p.swap()).collect();
    by_target.sort_unstable();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < by_target.len() && j < right.len() {
        let ku = by_target[i].src();
        let kv = right[j].src();
        match ku.cmp(&kv) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = by_target[i..].partition_point(|p| p.src() == ku) + i;
                let j_end = right[j..].partition_point(|p| p.src() == kv) + j;
                for a in &by_target[i..i_end] {
                    for b in &right[j..j_end] {
                        let v = a.dst();
                        let y = b.dst();
                        if !require_loop || v == y {
                            out.push(Pair::new(v, y));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// Sorted intersection of two normalized pair sets.
pub fn intersect_pairs(a: &[Pair], b: &[Pair]) -> Vec<Pair> {
    let mut out = Vec::new();
    cpqx_graph::pair::intersect_sorted(a, b, &mut out);
    out
}

/// Filters a normalized pair set to cyclic pairs (the bare `IDENTITY`
/// operator applied to a pair set).
pub fn filter_loops(pairs: &[Pair]) -> Vec<Pair> {
    pairs.iter().copied().filter(|p| p.is_loop()).collect()
}

/// Expands a normalized pair set by one adjacency step: for every `(v, u)`
/// and every edge `(u, t, ℓ)`, emits `(v, t)`. This is the frontier
/// expansion the index-free BFS baseline uses for chain suffixes.
pub fn expand_adjacency(g: &Graph, pairs: &[Pair], l: ExtLabel) -> Vec<Pair> {
    let mut out = Vec::new();
    for p in pairs {
        for &(_, t) in g.neighbors(p.dst(), l) {
            out.push(Pair::new(p.src(), t));
        }
    }
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// The full identity relation `{(v, v)}` of a graph.
pub fn all_loops(g: &Graph) -> Vec<Pair> {
    g.vertices().map(|v| Pair::new(v, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;

    fn p(v: u32, u: u32) -> Pair {
        Pair::new(v, u)
    }

    #[test]
    fn join_matches_middle() {
        let left = vec![p(0, 1), p(0, 2), p(5, 1)];
        let right = vec![p(1, 7), p(2, 8), p(3, 9)];
        assert_eq!(join_pairs(&left, &right), vec![p(0, 7), p(0, 8), p(5, 7)]);
    }

    #[test]
    fn join_dedups() {
        let left = vec![p(0, 1), p(0, 2)];
        let right = vec![p(1, 7), p(2, 7)];
        assert_eq!(join_pairs(&left, &right), vec![p(0, 7)]);
    }

    #[test]
    fn join_id_keeps_cycles_only() {
        let left = vec![p(0, 1), p(7, 2)];
        let right = vec![p(1, 0), p(2, 8)];
        assert_eq!(join_pairs_id(&left, &right), vec![p(0, 0)]);
    }

    #[test]
    fn join_empty_sides() {
        assert!(join_pairs(&[], &[p(0, 1)]).is_empty());
        assert!(join_pairs(&[p(0, 1)], &[]).is_empty());
    }

    #[test]
    fn expand_matches_join_on_edge_relation() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap().fwd();
        let v = g.label_named("v").unwrap().fwd();
        let base = g.edge_pairs(f).to_vec();
        let a = expand_adjacency(&g, &base, v);
        let b = join_pairs(&base, &g.edge_pairs(v).to_vec());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn loops_filter() {
        let pairs = vec![p(0, 0), p(0, 1), p(2, 2)];
        assert_eq!(filter_loops(&pairs), vec![p(0, 0), p(2, 2)]);
        let g = generate::cycle(4, "f");
        assert_eq!(all_loops(&g).len(), 4);
    }
}
