//! Index-free CPQ evaluation: the reference oracle and the BFS baseline.

use crate::ast::Cpq;
use crate::ops;
use cpqx_graph::{Graph, Pair};
use std::collections::{HashMap, HashSet};

/// Naive reference evaluator — the correctness oracle for every engine.
///
/// Implements the denotational semantics of Sec. III-B directly on hash
/// sets, sharing no code with the optimized engines, so agreement between
/// this and an engine is meaningful evidence of correctness. Returns a
/// normalized (sorted, deduplicated) pair vector.
pub fn eval_reference(g: &Graph, q: &Cpq) -> Vec<Pair> {
    let set = eval_ref_set(g, q);
    let mut out: Vec<Pair> = set.into_iter().map(|(v, u)| Pair::new(v, u)).collect();
    out.sort_unstable();
    out
}

fn eval_ref_set(g: &Graph, q: &Cpq) -> HashSet<(u32, u32)> {
    match q {
        Cpq::Id => g.vertices().map(|v| (v, v)).collect(),
        Cpq::Label(l) => g.edge_pairs(*l).iter().map(|p| (p.src(), p.dst())).collect(),
        Cpq::Join(a, b) => {
            let left = eval_ref_set(g, a);
            let right = eval_ref_set(g, b);
            let mut by_src: HashMap<u32, Vec<u32>> = HashMap::new();
            for (m, y) in right {
                by_src.entry(m).or_default().push(y);
            }
            let mut out = HashSet::new();
            for (v, m) in left {
                if let Some(ys) = by_src.get(&m) {
                    for &y in ys {
                        out.insert((v, y));
                    }
                }
            }
            out
        }
        Cpq::Conj(a, b) => {
            let left = eval_ref_set(g, a);
            let right = eval_ref_set(g, b);
            left.intersection(&right).copied().collect()
        }
    }
}

/// The paper's index-free **BFS** baseline (Sec. VI, "Methods").
///
/// Evaluates the query bottom-up on normalized pair vectors, using frontier
/// expansion over the adjacency lists whenever a join's right operand is a
/// single edge label (breadth-first chain traversal) and sorted-merge
/// operators otherwise. No index is consulted.
#[derive(Debug, Default, Clone, Copy)]
pub struct BfsEngine;

impl BfsEngine {
    /// Evaluates `q` on `g`, returning a normalized pair set. One
    /// [`ops::EvalContext`] scratch buffer serves every join of the
    /// recursion.
    pub fn evaluate(&self, g: &Graph, q: &Cpq) -> Vec<Pair> {
        self.eval_ctx(g, q, &mut ops::EvalContext::new())
    }

    fn eval_ctx(&self, g: &Graph, q: &Cpq, ctx: &mut ops::EvalContext) -> Vec<Pair> {
        match q {
            Cpq::Id => ops::all_loops(g),
            Cpq::Label(l) => g.edge_pairs(*l).to_vec(),
            Cpq::Join(a, b) => match &**b {
                // BFS frontier expansion for chain suffixes (forward CSR
                // faces).
                Cpq::Label(l) => {
                    let left = self.eval_ctx(g, a, ctx);
                    ops::expand_adjacency(g, &left, *l)
                }
                _ => {
                    let left = self.eval_ctx(g, a, ctx);
                    if left.is_empty() {
                        return Vec::new();
                    }
                    let right = self.eval_ctx(g, b, ctx);
                    ctx.join_pairs(&left, &right)
                }
            },
            Cpq::Conj(a, b) => {
                let left = self.eval_ctx(g, a, ctx);
                if left.is_empty() {
                    return Vec::new();
                }
                let right = self.eval_ctx(g, b, ctx);
                ops::intersect_pairs(&left, &right)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Template;
    use crate::parser::parse_cpq;
    use cpqx_graph::generate;
    use cpqx_graph::{ExtLabel, Label};

    #[test]
    fn triad_query_on_gex() {
        // The introduction's example: ﬀ ∩ f⁻¹ finds the follows-triad
        // {(sue, zoe), (joe, sue), (zoe, joe)}.
        let g = generate::gex();
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        let named: std::collections::BTreeSet<(&str, &str)> = eval_reference(&g, &q)
            .iter()
            .map(|p| (g.vertex_name(p.src()), g.vertex_name(p.dst())))
            .collect();
        let expected: std::collections::BTreeSet<(&str, &str)> =
            [("sue", "zoe"), ("joe", "sue"), ("zoe", "joe")].into_iter().collect();
        assert_eq!(named, expected);
    }

    #[test]
    fn identity_semantics() {
        let g = generate::cycle(3, "f");
        let q = parse_cpq("id", &g).unwrap();
        assert_eq!(eval_reference(&g, &q).len(), 3);
        // fff on a 3-cycle is the identity on all vertices.
        let q = parse_cpq("(f . f . f) & id", &g).unwrap();
        assert_eq!(eval_reference(&g, &q).len(), 3);
        // ff is not.
        let q = parse_cpq("(f . f) & id", &g).unwrap();
        assert!(eval_reference(&g, &q).is_empty());
    }

    #[test]
    fn join_with_identity_is_noop() {
        let g = generate::gex();
        let a = eval_reference(&g, &parse_cpq("f . id", &g).unwrap());
        let b = eval_reference(&g, &parse_cpq("f", &g).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn inverse_label_swaps_pairs() {
        let g = generate::gex();
        let fwd = eval_reference(&g, &parse_cpq("f", &g).unwrap());
        let inv = eval_reference(&g, &parse_cpq("f^-1", &g).unwrap());
        let mut swapped: Vec<Pair> = fwd.iter().map(|p| p.swap()).collect();
        swapped.sort_unstable();
        assert_eq!(inv, swapped);
    }

    #[test]
    fn bfs_agrees_with_reference_on_templates() {
        let g = generate::gex();
        let labels: Vec<ExtLabel> = vec![
            Label(0).fwd(),
            Label(1).fwd(),
            Label(0).inv(),
            Label(1).inv(),
            Label(0).fwd(),
            Label(1).fwd(),
            Label(0).inv(),
        ];
        let bfs = BfsEngine;
        for t in Template::ALL {
            let q = t.instantiate(&labels[..t.arity()]);
            assert_eq!(bfs.evaluate(&g, &q), eval_reference(&g, &q), "template {}", t.name());
        }
    }

    #[test]
    fn bfs_agrees_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for seed in 0..5u64 {
            let cfg = cpqx_graph::generate::RandomGraphConfig::social(60, 240, 3, seed);
            let g = generate::random_graph(&cfg);
            let bfs = BfsEngine;
            for t in Template::ALL {
                let labels: Vec<ExtLabel> = (0..t.arity())
                    .map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count())))
                    .collect();
                let q = t.instantiate(&labels);
                assert_eq!(
                    bfs.evaluate(&g, &q),
                    eval_reference(&g, &q),
                    "seed {seed} template {}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn empty_on_missing_structure() {
        let g = generate::labeled_path(&["a", "b"]);
        let q = parse_cpq("b . a", &g).unwrap();
        assert!(eval_reference(&g, &q).is_empty());
        assert!(BfsEngine.evaluate(&g, &q).is_empty());
    }
}
