//! The CPQ algebra and the paper's query templates (Fig. 5).

use cpqx_graph::{ExtLabel, Graph, Label};

/// A conjunctive path query expression.
///
/// Grammar (Sec. III-B): `CPQ ::= id | ℓ | CPQ ∘ CPQ | CPQ ∩ CPQ | (CPQ)`.
/// Labels are *extended* labels, so `ℓ⁻¹` is a plain `Label` node carrying
/// an inverse [`ExtLabel`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cpq {
    /// The identity relation `{(v, v) | v ∈ V}`.
    Id,
    /// A single (extended) edge label `ℓ` or `ℓ⁻¹`.
    Label(ExtLabel),
    /// Composition `q₁ ∘ q₂` (relational join on the middle vertex).
    Join(Box<Cpq>, Box<Cpq>),
    /// Conjunction `q₁ ∩ q₂` (intersection of the result sets).
    Conj(Box<Cpq>, Box<Cpq>),
}

impl Cpq {
    /// A forward label atom.
    pub fn label(l: Label) -> Cpq {
        Cpq::Label(l.fwd())
    }

    /// An inverse label atom (`ℓ⁻¹`).
    pub fn inv(l: Label) -> Cpq {
        Cpq::Label(l.inv())
    }

    /// An extended-label atom.
    pub fn ext(l: ExtLabel) -> Cpq {
        Cpq::Label(l)
    }

    /// `self ∘ other`.
    pub fn join(self, other: Cpq) -> Cpq {
        Cpq::Join(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn conj(self, other: Cpq) -> Cpq {
        Cpq::Conj(Box::new(self), Box::new(other))
    }

    /// `self ∩ id` — the cyclic-pattern restriction.
    pub fn with_id(self) -> Cpq {
        self.conj(Cpq::Id)
    }

    /// A join chain over extended labels; `seq` must be non-empty.
    pub fn chain(seq: &[ExtLabel]) -> Cpq {
        assert!(!seq.is_empty(), "chain needs at least one label");
        let mut it = seq.iter();
        let mut q = Cpq::ext(*it.next().unwrap());
        for &l in it {
            q = q.join(Cpq::ext(l));
        }
        q
    }

    /// The query diameter (Sec. III-B): `dia(id) = 0`, `dia(ℓ) = 1`,
    /// `dia(q₁ ∩ q₂) = max`, `dia(q₁ ∘ q₂) = sum`.
    pub fn diameter(&self) -> usize {
        match self {
            Cpq::Id => 0,
            Cpq::Label(_) => 1,
            Cpq::Conj(a, b) => a.diameter().max(b.diameter()),
            Cpq::Join(a, b) => a.diameter() + b.diameter(),
        }
    }

    /// Number of AST nodes (query size).
    pub fn node_count(&self) -> usize {
        match self {
            Cpq::Id | Cpq::Label(_) => 1,
            Cpq::Conj(a, b) | Cpq::Join(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    /// All extended labels mentioned by the query, in syntax order.
    pub fn labels_used(&self) -> Vec<ExtLabel> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut Vec<ExtLabel>) {
        match self {
            Cpq::Id => {}
            Cpq::Label(l) => out.push(*l),
            Cpq::Conj(a, b) | Cpq::Join(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
        }
    }

    /// Maximal label runs: for every join chain in the query, the maximal
    /// consecutive sequences of plain label atoms. The paper's workload
    /// filter ("all (sub-)paths of length two are non-empty", Sec. VI)
    /// checks the length-2 windows of these runs.
    pub fn label_runs(&self) -> Vec<Vec<ExtLabel>> {
        let mut runs = Vec::new();
        let mut current = Vec::new();
        self.runs_rec(&mut runs, &mut current);
        if !current.is_empty() {
            runs.push(current);
        }
        runs
    }

    fn runs_rec(&self, runs: &mut Vec<Vec<ExtLabel>>, current: &mut Vec<ExtLabel>) {
        match self {
            Cpq::Label(l) => current.push(*l),
            Cpq::Join(a, b) => {
                a.runs_rec(runs, current);
                b.runs_rec(runs, current);
            }
            Cpq::Id | Cpq::Conj(..) => {
                if !current.is_empty() {
                    runs.push(std::mem::take(current));
                }
                if let Cpq::Conj(a, b) = self {
                    let mut ca = Vec::new();
                    a.runs_rec(runs, &mut ca);
                    if !ca.is_empty() {
                        runs.push(ca);
                    }
                    let mut cb = Vec::new();
                    b.runs_rec(runs, &mut cb);
                    if !cb.is_empty() {
                        runs.push(cb);
                    }
                }
            }
        }
    }

    /// Renders the query in the crate's text syntax using the graph's label
    /// names; the output parses back via [`crate::parse_cpq`].
    pub fn to_text(&self, g: &Graph) -> String {
        match self {
            Cpq::Id => "id".to_string(),
            Cpq::Label(l) => {
                let name = g.label_name(l.base());
                if l.is_inverse() {
                    format!("{name}^-1")
                } else {
                    name.to_string()
                }
            }
            Cpq::Join(a, b) => format!("({} . {})", a.to_text(g), b.to_text(g)),
            Cpq::Conj(a, b) => format!("({} & {})", a.to_text(g), b.to_text(g)),
        }
    }
}

/// The twelve query templates of the paper's Fig. 5.
///
/// Abbreviations: C = chain, T = triangle, S = square, St = star,
/// `i` suffix = conjunction with identity (cyclic pattern).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Template {
    C2,
    C4,
    T,
    S,
    TT,
    St,
    TC,
    SC,
    ST,
    C2i,
    Ti,
    Si,
}

impl Template {
    /// All templates in the order the paper's figures report them.
    pub const ALL: [Template; 12] = [
        Template::T,
        Template::S,
        Template::TT,
        Template::St,
        Template::TC,
        Template::SC,
        Template::ST,
        Template::C2,
        Template::C4,
        Template::C2i,
        Template::Ti,
        Template::Si,
    ];

    /// The template's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Template::C2 => "C2",
            Template::C4 => "C4",
            Template::T => "T",
            Template::S => "S",
            Template::TT => "TT",
            Template::St => "St",
            Template::TC => "TC",
            Template::SC => "SC",
            Template::ST => "ST",
            Template::C2i => "C2i",
            Template::Ti => "Ti",
            Template::Si => "Si",
        }
    }

    /// Number of label slots to instantiate.
    pub fn arity(&self) -> usize {
        match self {
            Template::C2 => 2,
            Template::C4 => 4,
            Template::T => 3,
            Template::S => 4,
            Template::TT => 5,
            Template::St => 3,
            Template::TC => 4,
            Template::SC => 5,
            Template::ST => 7,
            Template::C2i => 2,
            Template::Ti => 3,
            Template::Si => 4,
        }
    }

    /// Whether the template conjoins with identity (cyclic answer shape).
    pub fn is_cyclic(&self) -> bool {
        matches!(self, Template::C2i | Template::Ti | Template::Si | Template::St)
    }

    /// Whether the template contains a conjunction.
    pub fn has_conjunction(&self) -> bool {
        !matches!(self, Template::C2 | Template::C4)
    }

    /// Instantiates the template with `labels` (length = [`Template::arity`]).
    ///
    /// Shapes follow Fig. 5 exactly: `C2 = ℓ1∘ℓ2`, `C4 = C2∘C2`,
    /// `T = C2 ∩ ℓ`, `S = C2 ∩ C2`, `TT = T ∩ C2`, `TC = T∘ℓ`, `SC = S∘ℓ`,
    /// `ST = S∘T`, `C2i = C2 ∩ id`, `Ti = (C2∘ℓ) ∩ id`, `Si = C4 ∩ id`, and
    /// `St = (ℓ1∘ℓ1⁻¹) ∩ (ℓ2∘ℓ2⁻¹) ∩ (ℓ3∘ℓ3⁻¹) ∩ id` (the paper prints
    /// `ℓ3 ∩ ℓ3⁻¹` for the third factor, a typo for the drawn star shape).
    pub fn instantiate(&self, labels: &[ExtLabel]) -> Cpq {
        assert_eq!(labels.len(), self.arity(), "wrong number of labels for {}", self.name());
        let l = |i: usize| Cpq::ext(labels[i]);
        let c2 = |i: usize| l(i).join(l(i + 1));
        match self {
            Template::C2 => c2(0),
            Template::C4 => c2(0).join(c2(2)),
            Template::T => c2(0).conj(l(2)),
            Template::S => c2(0).conj(c2(2)),
            Template::TT => c2(0).conj(l(2)).conj(c2(3)),
            Template::TC => c2(0).conj(l(2)).join(l(3)),
            Template::SC => c2(0).conj(c2(2)).join(l(4)),
            Template::ST => c2(0).conj(c2(2)).join(c2(4).conj(l(6))),
            Template::C2i => c2(0).with_id(),
            Template::Ti => c2(0).join(l(2)).with_id(),
            Template::Si => c2(0).join(c2(2)).with_id(),
            Template::St => {
                let leg = |i: usize| l(i).join(Cpq::ext(labels[i].inverse()));
                leg(0).conj(leg(1)).conj(leg(2)).with_id()
            }
        }
    }
}

impl std::fmt::Display for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u16) -> ExtLabel {
        Label(i).fwd()
    }

    #[test]
    fn diameter_follows_paper_rules() {
        assert_eq!(Cpq::Id.diameter(), 0);
        assert_eq!(Cpq::ext(l(0)).diameter(), 1);
        let joined = Cpq::ext(l(0)).join(Cpq::ext(l(1)));
        assert_eq!(joined.diameter(), 2);
        let conj = joined.clone().conj(Cpq::ext(l(2)));
        assert_eq!(conj.diameter(), 2);
        assert_eq!(joined.clone().join(joined).diameter(), 4);
        assert_eq!(Cpq::ext(l(0)).with_id().diameter(), 1);
    }

    #[test]
    fn template_diameters() {
        let ls: Vec<ExtLabel> = (0..8).map(l).collect();
        assert_eq!(Template::C2.instantiate(&ls[..2]).diameter(), 2);
        assert_eq!(Template::C4.instantiate(&ls[..4]).diameter(), 4);
        assert_eq!(Template::T.instantiate(&ls[..3]).diameter(), 2);
        assert_eq!(Template::S.instantiate(&ls[..4]).diameter(), 2);
        assert_eq!(Template::TC.instantiate(&ls[..4]).diameter(), 3);
        assert_eq!(Template::ST.instantiate(&ls[..7]).diameter(), 4);
        assert_eq!(Template::St.instantiate(&ls[..3]).diameter(), 2);
        assert_eq!(Template::Si.instantiate(&ls[..4]).diameter(), 4);
    }

    #[test]
    fn label_runs_split_on_conjunction() {
        // (l0 . l1 . l2) & (l3 . l4) has runs [l0,l1,l2] and [l3,l4].
        let q = Cpq::chain(&[l(0), l(1), l(2)]).conj(Cpq::chain(&[l(3), l(4)]));
        let runs = q.label_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], vec![l(0), l(1), l(2)]);
        assert_eq!(runs[1], vec![l(3), l(4)]);
    }

    #[test]
    fn label_runs_cross_nested_joins() {
        // ((l0 . l1) . l2) and (l0 . (l1 . l2)) are one run of 3.
        let a = Cpq::ext(l(0)).join(Cpq::ext(l(1))).join(Cpq::ext(l(2)));
        let b = Cpq::ext(l(0)).join(Cpq::ext(l(1)).join(Cpq::ext(l(2))));
        assert_eq!(a.label_runs(), vec![vec![l(0), l(1), l(2)]]);
        assert_eq!(b.label_runs(), vec![vec![l(0), l(1), l(2)]]);
    }

    #[test]
    fn runs_split_by_embedded_conj() {
        // l0 . (T) . l3 where T = (l1 & l2): the chain is cut at the conj.
        let t = Cpq::ext(l(1)).conj(Cpq::ext(l(2)));
        let q = Cpq::ext(l(0)).join(t).join(Cpq::ext(l(3)));
        let runs = q.label_runs();
        assert!(runs.contains(&vec![l(0)]));
        assert!(runs.contains(&vec![l(3)]));
    }

    #[test]
    fn every_template_instantiates() {
        let ls: Vec<ExtLabel> = (0..8).map(l).collect();
        for t in Template::ALL {
            let q = t.instantiate(&ls[..t.arity()]);
            assert!(q.node_count() >= 2, "{} too small", t.name());
            assert_eq!(t.is_cyclic(), {
                // cyclic templates end in `∩ id`
                matches!(&q, Cpq::Conj(_, b) if **b == Cpq::Id)
            });
        }
    }

    #[test]
    fn st_uses_inverse_legs() {
        let q = Template::St.instantiate(&[l(0), l(1), l(2)]);
        let used = q.labels_used();
        assert!(used.contains(&Label(0).inv()));
        assert!(used.contains(&Label(2).inv()));
    }

    #[test]
    #[should_panic(expected = "wrong number of labels")]
    fn wrong_arity_panics() {
        Template::C4.instantiate(&[l(0)]);
    }
}
