//! Text syntax for CPQ expressions.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr   := term (('&' | '∩') term)*          conjunction, left-assoc
//! term   := factor (('.' | '∘') factor)*      join, left-assoc
//! factor := 'id' | label | '(' expr ')'
//! label  := IDENT ('^-1' | '⁻¹')?
//! ```
//!
//! Label identifiers are resolved against the graph's label table, so
//! `f^-1` denotes the inverse extended label of `f`. Example:
//! `(f . f) & f^-1` is the paper's triad query `ﬀ ∩ f⁻¹`.

use crate::ast::Cpq;
use cpqx_graph::Graph;

/// Maximum parenthesis nesting depth accepted by [`parse_cpq`].
///
/// The parser is recursive-descent and downstream consumers
/// (canonicalization, planning) recurse over the AST, so without a bound
/// a hostile input like `"("×200 000 + "f" + ")"×200 000` overflows the
/// thread stack — a fatal abort, not a catchable panic. Real CPQs nest a
/// handful of levels; 128 is far beyond anything meaningful.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Maximum token count accepted by [`parse_cpq`].
///
/// Bounds the depth of the *AST spine* a parenthesis-free operator chain
/// (`f . f . f . …`) builds, which downstream recursion also walks. The
/// paper's largest benchmark queries are under 20 tokens.
pub const MAX_TOKENS: usize = 4_096;

/// Classification of a parse failure, so callers that surface parse
/// errors across a typed boundary (e.g. the network protocol's error
/// frames) can distinguish malformed syntax from a well-formed query that
/// references a label the target graph does not have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The input is not a well-formed CPQ expression.
    Syntax,
    /// The expression is well-formed but names a label missing from the
    /// graph's label table.
    UnknownLabel,
}

/// Parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
    /// What went wrong, structurally.
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Join,
    Conj,
    Id,
    Label(String, bool), // name, inverse?
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut pos_bytes = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let start = pos_bytes;
        match c {
            c if c.is_whitespace() => {
                pos_bytes += c.len_utf8();
                i += 1;
            }
            '(' => {
                toks.push((start, Tok::LParen));
                pos_bytes += 1;
                i += 1;
            }
            ')' => {
                toks.push((start, Tok::RParen));
                pos_bytes += 1;
                i += 1;
            }
            '.' | '∘' | '/' => {
                toks.push((start, Tok::Join));
                pos_bytes += c.len_utf8();
                i += 1;
            }
            '&' | '∩' => {
                toks.push((start, Tok::Conj));
                pos_bytes += c.len_utf8();
                i += 1;
            }
            // `@` starts vertex-tag labels (the self-loop encoding of
            // vertex labels — see `GraphBuilder::tag_vertex`).
            c if c.is_alphanumeric() || c == '_' || c == '@' => {
                let mut name = String::new();
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '@')
                {
                    name.push(bytes[i]);
                    pos_bytes += bytes[i].len_utf8();
                    i += 1;
                }
                // Optional inverse suffix: `^-1` or `⁻¹`.
                let mut inverse = false;
                if i + 2 < bytes.len()
                    && bytes[i] == '^'
                    && bytes[i + 1] == '-'
                    && bytes[i + 2] == '1'
                {
                    inverse = true;
                    pos_bytes += 3;
                    i += 3;
                } else if i + 1 < bytes.len() && bytes[i] == '⁻' && bytes[i + 1] == '¹' {
                    inverse = true;
                    pos_bytes += bytes[i].len_utf8() + bytes[i + 1].len_utf8();
                    i += 2;
                }
                if name == "id" && !inverse {
                    toks.push((start, Tok::Id));
                } else {
                    toks.push((start, Tok::Label(name, inverse)));
                }
            }
            other => {
                return Err(ParseError {
                    position: start,
                    message: format!("unexpected character {other:?}"),
                    kind: ParseErrorKind::Syntax,
                });
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    graph: &'a Graph,
    input_len: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks.get(self.pos).map(|(p, _)| *p).unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expr(&mut self) -> Result<Cpq, ParseError> {
        let mut q = self.term()?;
        while matches!(self.peek(), Some(Tok::Conj)) {
            self.bump();
            q = q.conj(self.term()?);
        }
        Ok(q)
    }

    fn term(&mut self) -> Result<Cpq, ParseError> {
        let mut q = self.factor()?;
        while matches!(self.peek(), Some(Tok::Join)) {
            self.bump();
            q = q.join(self.factor()?);
        }
        Ok(q)
    }

    fn factor(&mut self) -> Result<Cpq, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Id) => Ok(Cpq::Id),
            Some(Tok::Label(name, inverse)) => {
                let l = self.graph.label_named(&name).ok_or_else(|| ParseError {
                    position: at,
                    message: format!("unknown label {name:?}"),
                    kind: ParseErrorKind::UnknownLabel,
                })?;
                Ok(Cpq::ext(if inverse { l.inv() } else { l.fwd() }))
            }
            Some(Tok::LParen) => {
                self.depth += 1;
                if self.depth > MAX_NESTING_DEPTH {
                    return Err(ParseError {
                        position: at,
                        message: format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
                        kind: ParseErrorKind::Syntax,
                    });
                }
                let q = self.expr()?;
                self.depth -= 1;
                match self.bump() {
                    Some(Tok::RParen) => Ok(q),
                    _ => Err(ParseError {
                        position: self.here(),
                        message: "expected `)`".into(),
                        kind: ParseErrorKind::Syntax,
                    }),
                }
            }
            other => Err(ParseError {
                position: at,
                message: format!("expected `id`, a label, or `(`, got {other:?}"),
                kind: ParseErrorKind::Syntax,
            }),
        }
    }
}

/// Parses a CPQ expression, resolving label names against `g`. Inputs
/// beyond [`MAX_TOKENS`] tokens or [`MAX_NESTING_DEPTH`] parenthesis
/// levels are rejected (both the parser and the AST consumers recurse,
/// so unbounded inputs could exhaust the stack — relevant since query
/// text can arrive over the network).
pub fn parse_cpq(input: &str, g: &Graph) -> Result<Cpq, ParseError> {
    let toks = tokenize(input)?;
    if toks.len() > MAX_TOKENS {
        return Err(ParseError {
            position: toks[MAX_TOKENS].0,
            message: format!("query longer than {MAX_TOKENS} tokens"),
            kind: ParseErrorKind::Syntax,
        });
    }
    let mut p = Parser { toks, pos: 0, graph: g, input_len: input.len(), depth: 0 };
    let q = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            position: p.here(),
            message: "trailing input".into(),
            kind: ParseErrorKind::Syntax,
        });
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate::gex;

    #[test]
    fn parses_triad_query() {
        let g = gex();
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        let f = g.label_named("f").unwrap();
        assert_eq!(q, Cpq::label(f).join(Cpq::label(f)).conj(Cpq::inv(f)));
    }

    #[test]
    fn unicode_operators() {
        let g = gex();
        let a = parse_cpq("(f ∘ f) ∩ f⁻¹", &g).unwrap();
        let b = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn precedence_join_binds_tighter() {
        let g = gex();
        let a = parse_cpq("f . f & v", &g).unwrap();
        let b = parse_cpq("(f . f) & v", &g).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identity_and_nesting() {
        let g = gex();
        let q = parse_cpq("((f . v) & (v . f)) & id", &g).unwrap();
        assert!(matches!(q, Cpq::Conj(_, ref b) if **b == Cpq::Id));
    }

    #[test]
    fn roundtrip_via_to_text() {
        let g = gex();
        for src in ["(f . f) & f^-1", "f^-1 . v", "((f . v) & (v . f)) & id", "id"] {
            let q = parse_cpq(src, &g).unwrap();
            let rendered = q.to_text(&g);
            assert_eq!(parse_cpq(&rendered, &g).unwrap(), q, "roundtrip of {src}");
        }
    }

    #[test]
    fn unknown_label_is_reported() {
        let g = gex();
        let err = parse_cpq("f . nosuch", &g).unwrap_err();
        assert!(err.message.contains("nosuch"));
        assert_eq!(err.position, 4);
        assert_eq!(err.kind, ParseErrorKind::UnknownLabel);
    }

    #[test]
    fn error_kinds_classify() {
        let g = gex();
        assert_eq!(parse_cpq("(f . f", &g).unwrap_err().kind, ParseErrorKind::Syntax);
        assert_eq!(parse_cpq("f %", &g).unwrap_err().kind, ParseErrorKind::Syntax);
        assert_eq!(parse_cpq("ghost^-1", &g).unwrap_err().kind, ParseErrorKind::UnknownLabel);
    }

    #[test]
    fn hostile_inputs_are_bounded_not_fatal() {
        let g = gex();
        // Deep nesting must be a parse error, not a stack overflow. 2000
        // levels stays under MAX_TOKENS, so this exercises the depth
        // bound itself; anything longer trips the token bound first.
        let deep = format!("{}f{}", "(".repeat(2_000), ")".repeat(2_000));
        let err = parse_cpq(&deep, &g).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
        assert!(err.message.contains("nesting"));
        // Over the token bound, the length check fires before any
        // recursion can start.
        let deep = format!("{}f{}", "(".repeat(200_000), ")".repeat(200_000));
        let err = parse_cpq(&deep, &g).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
        assert!(err.message.contains("tokens"));
        // Same for an unparenthesized 200k-factor chain (its AST spine
        // would be as deep as the nesting above for every consumer).
        let long = vec!["f"; 200_000].join(" . ");
        let err = parse_cpq(&long, &g).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Syntax);
        assert!(err.message.contains("tokens"));
        // The bounds are generous: realistic sizes still parse.
        let fine = format!("{}f{}", "(".repeat(64), ")".repeat(64));
        assert!(parse_cpq(&fine, &g).is_ok());
        let fine = vec!["f"; 512].join(" . ");
        assert!(parse_cpq(&fine, &g).is_ok());
    }

    #[test]
    fn syntax_errors() {
        let g = gex();
        assert!(parse_cpq("(f . f", &g).is_err());
        assert!(parse_cpq("f &", &g).is_err());
        assert!(parse_cpq("f f", &g).is_err());
        assert!(parse_cpq("", &g).is_err());
        assert!(parse_cpq("f @ v", &g).is_err());
    }
}
