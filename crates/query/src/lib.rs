//! The CPQ (conjunctive path query) language of the paper, Sec. III-B.
//!
//! A CPQ is built from the nullary operations *identity* (`id`) and *edge
//! labels* (`ℓ`, `ℓ⁻¹`) with the binary operations *join* (`∘`) and
//! *conjunction* (`∩`):
//!
//! ```text
//! CPQ ::= id | ℓ | CPQ ∘ CPQ | CPQ ∩ CPQ | (CPQ)
//! ```
//!
//! Evaluating a CPQ on a graph yields a set of source-target vertex pairs
//! ([`cpqx_graph::Pair`]). This crate provides:
//!
//! * [`ast`] — the query algebra, diameter, and the 12 query templates of
//!   the paper's Fig. 5 ([`ast::Template`]),
//! * [`parser`] — a text syntax (`(f . f) & f^-1`),
//! * [`canonical`] — canonical forms and stable cache keys for
//!   semantically equal queries (conjunct sorting, identity rewrites),
//! * [`plan`] — the physical parse tree of Sec. IV-D / Fig. 4: label chains
//!   chunked into `LOOKUP`s of length ≤ k, `q ∘ id → q` rewriting, and
//!   identity fused into the three operators,
//! * [`ops`] — the sorted-merge physical operators shared by every engine,
//! * [`eval`] — a naive reference evaluator (the correctness oracle) and the
//!   index-free BFS baseline of Sec. VI,
//! * [`workload`] — seeded template instantiation with the paper's
//!   "all length-2 sub-paths non-empty" filter,
//! * [`benchqueries`] — CPQ translations of the YAGO2 (Y1–Y4), LUBM (L1–L7)
//!   and WatDiv (L1–L5, S1–S7) benchmark queries used in Figs. 9–10.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod benchqueries;
pub mod canonical;
pub mod eval;
pub mod ops;
pub mod parser;
pub mod plan;
pub mod workload;

pub use ast::{Cpq, Template};
pub use canonical::{cache_key, canonicalize};
pub use parser::{parse_cpq, ParseError, ParseErrorKind};
pub use plan::{plan_query, Plan};
