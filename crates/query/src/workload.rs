//! Seeded query workload generation (Sec. VI, "Queries").
//!
//! For each template and dataset the paper generates ten queries with random
//! labels, keeping only queries "in which all (sub-)paths of length two are
//! non-empty" (final answers may still be empty — intermediate results are
//! not). [`WorkloadGen`] reproduces this: it instantiates a
//! [`Template`] with uniformly random extended labels and accepts the query
//! iff every length-2 window of every maximal label run is non-empty
//! according to a [`SeqProbe`].

use crate::ast::{Cpq, Template};
use cpqx_graph::{ExtLabel, Graph, LabelSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Answers "does some path with this label sequence exist?" — used by the
/// workload filter. Implemented by the graph itself ([`GraphProbe`]) and by
/// the indexes (a lookup is O(1)).
pub trait SeqProbe {
    /// Whether `⟦seq⟧` is non-empty.
    fn seq_nonempty(&self, seq: &LabelSeq) -> bool;
}

/// Index-free probe: checks sequence non-emptiness by early-exit DFS over
/// the adjacency lists.
pub struct GraphProbe<'g>(
    /// The graph to probe.
    pub &'g Graph,
);

impl SeqProbe for GraphProbe<'_> {
    fn seq_nonempty(&self, seq: &LabelSeq) -> bool {
        if seq.is_empty() {
            return true;
        }
        let first = seq.get(0);
        for p in self.0.edge_pairs(first) {
            if extend(self.0, p.dst(), seq, 1) {
                return true;
            }
        }
        false
    }
}

fn extend(g: &Graph, v: u32, seq: &LabelSeq, depth: usize) -> bool {
    if depth == seq.len() {
        return true;
    }
    let l = seq.get(depth);
    for &(_, t) in g.neighbors(v, l) {
        if extend(g, t, seq, depth + 1) {
            return true;
        }
    }
    false
}

/// Seeded template instantiator.
pub struct WorkloadGen<'g> {
    graph: &'g Graph,
    rng: StdRng,
    /// Extended labels that have at least one edge — the sampling pool.
    pool: Vec<ExtLabel>,
}

impl<'g> WorkloadGen<'g> {
    /// Creates a generator; deterministic in `seed`.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let pool: Vec<ExtLabel> =
            graph.ext_labels().filter(|&l| !graph.edge_pairs(l).is_empty()).collect();
        WorkloadGen { graph, rng: StdRng::seed_from_u64(seed), pool }
    }

    /// The graph this generator draws labels from.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Samples one random non-empty extended label.
    pub fn random_label(&mut self) -> ExtLabel {
        assert!(!self.pool.is_empty(), "graph has no edges");
        self.pool[self.rng.gen_range(0..self.pool.len())]
    }

    /// Instantiates `template` once, retrying labels until the paper's
    /// filter passes (up to `attempts` tries). Returns `None` if the graph
    /// is too sparse to satisfy the filter.
    pub fn instantiate(
        &mut self,
        template: Template,
        probe: &dyn SeqProbe,
        attempts: usize,
    ) -> Option<Cpq> {
        for _ in 0..attempts {
            let labels: Vec<ExtLabel> =
                (0..template.arity()).map(|_| self.random_label()).collect();
            let q = template.instantiate(&labels);
            if passes_filter(&q, probe) {
                return Some(q);
            }
        }
        None
    }

    /// Generates up to `count` filtered queries for `template` (the paper
    /// uses ten per template/dataset).
    pub fn queries(&mut self, template: Template, count: usize, probe: &dyn SeqProbe) -> Vec<Cpq> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if let Some(q) = self.instantiate(template, probe, 300) {
                out.push(q);
            }
        }
        out
    }
}

/// The paper's workload filter: every maximal label run must have all of its
/// length-2 windows non-empty (single-label runs are checked directly).
pub fn passes_filter(q: &Cpq, probe: &dyn SeqProbe) -> bool {
    for run in q.label_runs() {
        if run.len() == 1 {
            if !probe.seq_nonempty(&LabelSeq::single(run[0])) {
                return false;
            }
            continue;
        }
        for w in run.windows(2) {
            if !probe.seq_nonempty(&LabelSeq::from_slice(w)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_reference;
    use cpqx_graph::generate;

    #[test]
    fn graph_probe_basic() {
        let g = generate::labeled_path(&["a", "b", "c"]);
        let probe = GraphProbe(&g);
        let a = g.label_named("a").unwrap().fwd();
        let b = g.label_named("b").unwrap().fwd();
        let c = g.label_named("c").unwrap().fwd();
        assert!(probe.seq_nonempty(&LabelSeq::from_slice(&[a, b])));
        assert!(probe.seq_nonempty(&LabelSeq::from_slice(&[a, b, c])));
        assert!(!probe.seq_nonempty(&LabelSeq::from_slice(&[b, a])));
        assert!(probe.seq_nonempty(&LabelSeq::from_slice(&[b, b.inverse()])));
    }

    #[test]
    fn probe_agrees_with_reference() {
        let cfg = generate::RandomGraphConfig::social(50, 200, 3, 5);
        let g = generate::random_graph(&cfg);
        let probe = GraphProbe(&g);
        for l1 in g.ext_labels() {
            for l2 in g.ext_labels() {
                let seq = LabelSeq::from_slice(&[l1, l2]);
                let q = Cpq::ext(l1).join(Cpq::ext(l2));
                assert_eq!(
                    probe.seq_nonempty(&seq),
                    !eval_reference(&g, &q).is_empty(),
                    "seq {seq:?}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = generate::gex();
        let probe = GraphProbe(&g);
        let qs1 = WorkloadGen::new(&g, 7).queries(Template::T, 5, &probe);
        let qs2 = WorkloadGen::new(&g, 7).queries(Template::T, 5, &probe);
        assert_eq!(qs1, qs2);
        assert!(!qs1.is_empty());
    }

    #[test]
    fn generated_queries_pass_filter() {
        let cfg = generate::RandomGraphConfig::social(100, 600, 4, 3);
        let g = generate::random_graph(&cfg);
        let probe = GraphProbe(&g);
        let mut gen = WorkloadGen::new(&g, 11);
        for t in Template::ALL {
            for q in gen.queries(t, 3, &probe) {
                assert!(passes_filter(&q, &probe), "template {}", t.name());
            }
        }
    }

    #[test]
    fn filter_rejects_empty_two_paths() {
        let g = generate::labeled_path(&["a", "b"]);
        let probe = GraphProbe(&g);
        let a = g.label_named("a").unwrap();
        let q = Cpq::label(a).join(Cpq::label(a)); // a·a has no match
        assert!(!passes_filter(&q, &probe));
    }
}
