//! The state-of-the-art language-**unaware** path index baseline —
//! "Path" in the paper's evaluation (Fletcher, Peters, Poulovassilis,
//! EDBT 2016 \[14\]) — and its interest-aware variant "iaPath".
//!
//! The index is a single inverted structure `Il2p` mapping every label
//! sequence of length ≤ k with a non-empty result to its sorted s-t pair
//! list. Unlike CPQx it stores each pair once *per sequence* (size
//! `O(γ·|P≤k|)`, Sec. III-C), and query processing always manipulates pair
//! sets — there is no class-level pruning, which is exactly the gap the
//! CPQ-aware index exploits. The planner and the physical pair operators
//! are shared with CPQx so benchmark comparisons isolate the index design.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use cpqx_core::interest::{normalize_interests, seq_pairs};
use cpqx_core::paths::label_seqs_between;
use cpqx_graph::{Graph, Label, LabelSeq, Pair, VertexId};
use cpqx_query::ops;
use cpqx_query::plan::{plan_query, Plan};
use cpqx_query::workload::SeqProbe;
use cpqx_query::Cpq;
use std::collections::{BTreeSet, HashMap};

/// The language-unaware path index (`Path` / `iaPath` in the paper).
pub struct PathIndex {
    k: usize,
    /// `None` for the full index, `Some(Lq)` for iaPath.
    interests: Option<BTreeSet<LabelSeq>>,
    il2p: HashMap<LabelSeq, Vec<Pair>>,
}

/// Statistics for the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathIndexStats {
    /// `k`.
    pub k: usize,
    /// Distinct label sequences indexed.
    pub sequences: usize,
    /// Total stored pairs — the `γ·|P≤k|` of Sec. III-C.
    pub stored_pairs: usize,
    /// Index bytes (sequence keys + postings).
    pub bytes: usize,
}

impl PathIndex {
    /// Builds the full index: every label sequence of length `1..=k` with a
    /// non-empty pair set, discovered by DFS over the sequence-prefix tree
    /// (`pairs(w·ℓ) = pairs(w) ⋈ ⟦ℓ⟧`, pruning empty prefixes).
    pub fn build(g: &Graph, k: usize) -> Self {
        assert!((1..=cpqx_graph::MAX_SEQ_LEN).contains(&k));
        let mut il2p = HashMap::new();
        for l in g.ext_labels() {
            let pairs = g.edge_pairs(l);
            if pairs.is_empty() {
                continue;
            }
            extend_prefix(g, k, LabelSeq::single(l), pairs.to_vec(), &mut il2p);
        }
        PathIndex { k, interests: None, il2p }
    }

    /// Builds iaPath: only the interest sequences (plus all length-1
    /// sequences) are indexed. Long interests are prefix-split.
    pub fn build_interest_aware(
        g: &Graph,
        k: usize,
        interests: impl IntoIterator<Item = LabelSeq>,
    ) -> Self {
        assert!((1..=cpqx_graph::MAX_SEQ_LEN).contains(&k));
        let lq = normalize_interests(interests, k);
        let mut il2p = HashMap::new();
        for l in g.ext_labels() {
            let pairs = g.edge_pairs(l);
            if !pairs.is_empty() {
                il2p.insert(LabelSeq::single(l), pairs.to_vec());
            }
        }
        for seq in &lq {
            if seq.len() > 1 {
                let pairs = seq_pairs(g, seq);
                if !pairs.is_empty() {
                    il2p.insert(*seq, pairs);
                }
            }
        }
        PathIndex { k, interests: Some(lq), il2p }
    }

    /// The index path-length parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether this is the interest-aware variant.
    pub fn is_interest_aware(&self) -> bool {
        self.interests.is_some()
    }

    /// The sorted pair list of a sequence (empty if absent).
    pub fn lookup(&self, seq: &LabelSeq) -> &[Pair] {
        self.il2p.get(seq).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether one lookup answers `seq` (mirrors
    /// [`cpqx_core::CpqxIndex::is_indexed`]).
    pub fn is_indexed(&self, seq: &LabelSeq) -> bool {
        if seq.is_empty() || seq.len() > self.k {
            return false;
        }
        match &self.interests {
            None => true,
            Some(lq) => seq.len() == 1 || lq.contains(seq),
        }
    }

    /// Lowers `q` into the shared physical plan.
    pub fn plan(&self, q: &Cpq) -> Plan {
        plan_query(q, self.k, &|s| self.is_indexed(s))
    }

    /// Evaluates `q` — all operators work on pair sets (no class pruning).
    pub fn evaluate(&self, g: &Graph, q: &Cpq) -> Vec<Pair> {
        self.eval_plan(g, &self.plan(q), &mut ops::EvalContext::new())
    }

    /// Evaluates `q`, returning only the first answer.
    pub fn evaluate_first(&self, g: &Graph, q: &Cpq) -> Option<Pair> {
        self.evaluate(g, q).first().copied()
    }

    fn eval_plan(&self, g: &Graph, plan: &Plan, ctx: &mut ops::EvalContext) -> Vec<Pair> {
        match plan {
            Plan::AllId => ops::all_loops(g),
            Plan::Lookup(seq) => self.lookup(seq).to_vec(),
            Plan::LookupId(seq) => ops::filter_loops(self.lookup(seq)),
            Plan::Join(a, b) => {
                let left = self.eval_plan(g, a, ctx);
                if left.is_empty() {
                    return Vec::new();
                }
                let right = self.eval_plan(g, b, ctx);
                ctx.join_pairs(&left, &right)
            }
            Plan::JoinId(a, b) => {
                let left = self.eval_plan(g, a, ctx);
                if left.is_empty() {
                    return Vec::new();
                }
                let right = self.eval_plan(g, b, ctx);
                ctx.join_pairs_id(&left, &right)
            }
            Plan::Conj(a, b) => {
                let left = self.eval_plan(g, a, ctx);
                if left.is_empty() {
                    return Vec::new();
                }
                ops::intersect_pairs(&left, &self.eval_plan(g, b, ctx))
            }
            Plan::ConjId(a, b) => {
                let left = self.eval_plan(g, a, ctx);
                if left.is_empty() {
                    return Vec::new();
                }
                let out = ops::intersect_pairs(&left, &self.eval_plan(g, b, ctx));
                ops::filter_loops(&out)
            }
        }
    }

    /// Deletes an edge from the graph and updates the postings. Deletion
    /// only removes paths, so affected pairs lose sequences: their old sets
    /// are computed before the edge goes away, the survivors after.
    pub fn delete_edge(&mut self, g: &mut Graph, v: VertexId, u: VertexId, l: Label) -> bool {
        if !g.has_edge(v, u, l.fwd()) {
            return false;
        }
        let candidates = affected(g, v, u, self.k);
        let old: Vec<(Pair, Vec<LabelSeq>)> =
            candidates.iter().map(|&p| (p, self.indexed_seqs_of(g, p))).collect();
        g.remove_edge(v, u, l);
        for (pair, old_seqs) in old {
            let new_seqs = self.indexed_seqs_of(g, pair);
            for s in old_seqs {
                if !new_seqs.contains(&s) {
                    if let Some(list) = self.il2p.get_mut(&s) {
                        if let Ok(i) = list.binary_search(&pair) {
                            list.remove(i);
                        }
                    }
                }
            }
        }
        true
    }

    /// Inserts an edge and updates the postings. Insertion only adds paths,
    /// so affected pairs gain sequences (idempotent sorted inserts).
    pub fn insert_edge(&mut self, g: &mut Graph, v: VertexId, u: VertexId, l: Label) -> bool {
        if !g.insert_edge(v, u, l) {
            return false;
        }
        for pair in affected(g, v, u, self.k) {
            for s in self.indexed_seqs_of(g, pair) {
                let list = self.il2p.entry(s).or_default();
                if let Err(i) = list.binary_search(&pair) {
                    list.insert(i, pair);
                }
            }
        }
        true
    }

    /// iaPath: registers and materializes a new interest sequence.
    pub fn insert_interest(&mut self, g: &Graph, seq: LabelSeq) -> bool {
        if seq.len() <= 1 || seq.len() > self.k {
            return false;
        }
        let Some(lq) = self.interests.as_mut() else {
            return false;
        };
        if !lq.insert(seq) {
            return false;
        }
        let pairs = seq_pairs(g, &seq);
        if !pairs.is_empty() {
            self.il2p.insert(seq, pairs);
        }
        true
    }

    /// iaPath: drops an interest sequence and its posting list.
    pub fn delete_interest(&mut self, seq: &LabelSeq) -> bool {
        if seq.len() <= 1 {
            return false;
        }
        let Some(lq) = self.interests.as_mut() else {
            return false;
        };
        if !lq.remove(seq) {
            return false;
        }
        self.il2p.remove(seq);
        true
    }

    /// Index statistics (`stored_pairs` is the paper's `γ·|P≤k|` size).
    pub fn stats(&self) -> PathIndexStats {
        let stored_pairs: usize = self.il2p.values().map(Vec::len).sum();
        // Packed accounting, matching the CPQ-aware index (Table IV's IS).
        let bytes: usize = self
            .il2p
            .values()
            .map(|v| std::mem::size_of::<LabelSeq>() + v.len() * std::mem::size_of::<Pair>() + 4)
            .sum();
        PathIndexStats { k: self.k, sequences: self.il2p.len(), stored_pairs, bytes }
    }

    /// Index size in bytes (the Table IV quantity).
    pub fn size_bytes(&self) -> usize {
        self.stats().bytes
    }

    /// The indexed sequence set of a pair on the current graph.
    fn indexed_seqs_of(&self, g: &Graph, p: Pair) -> Vec<LabelSeq> {
        let all = label_seqs_between(g, p.src(), p.dst(), self.k);
        match &self.interests {
            None => all,
            Some(lq) => all.into_iter().filter(|s| s.len() == 1 || lq.contains(s)).collect(),
        }
    }
}

/// DFS over the non-empty sequence-prefix tree (full build).
fn extend_prefix(
    g: &Graph,
    k: usize,
    seq: LabelSeq,
    pairs: Vec<Pair>,
    il2p: &mut HashMap<LabelSeq, Vec<Pair>>,
) {
    if seq.len() < k {
        for l in g.ext_labels() {
            if g.edge_pairs(l).is_empty() {
                continue;
            }
            let next = ops::expand_adjacency(g, &pairs, l);
            if !next.is_empty() {
                extend_prefix(g, k, seq.appended(l), next, il2p);
            }
        }
    }
    il2p.insert(seq, pairs);
}

/// Pairs possibly affected by an update of edge `(v, u)` — the same
/// distance-bucketed over-approximation the CPQ-aware index uses.
fn affected(g: &Graph, v: VertexId, u: VertexId, k: usize) -> Vec<Pair> {
    cpqx_core::paths::affected_pairs(g, v, u, k)
}

impl SeqProbe for PathIndex {
    fn seq_nonempty(&self, seq: &LabelSeq) -> bool {
        if self.is_indexed(seq) {
            !self.lookup(seq).is_empty()
        } else {
            (0..seq.len()).all(|i| !self.lookup(&LabelSeq::single(seq.get(i))).is_empty())
        }
    }
}

impl std::fmt::Debug for PathIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct(if self.is_interest_aware() { "iaPath" } else { "Path" })
            .field("k", &self.k)
            .field("sequences", &self.il2p.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn lookup_matches_reference_sequences() {
        let g = generate::gex();
        let idx = PathIndex::build(&g, 2);
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        let seq = LabelSeq::from_slice(&[f.fwd(), v.fwd()]);
        let q = Cpq::label(f).join(Cpq::label(v));
        assert_eq!(idx.lookup(&seq), eval_reference(&g, &q).as_slice());
    }

    #[test]
    fn evaluate_matches_reference() {
        use cpqx_query::ast::Template;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for seed in 0..3u64 {
            let cfg = generate::RandomGraphConfig::social(60, 240, 3, seed);
            let g = generate::random_graph(&cfg);
            let idx = PathIndex::build(&g, 2);
            for t in Template::ALL {
                for _ in 0..3 {
                    let labels: Vec<cpqx_graph::ExtLabel> = (0..t.arity())
                        .map(|_| cpqx_graph::ExtLabel(rng.gen_range(0..g.ext_label_count())))
                        .collect();
                    let q = t.instantiate(&labels);
                    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "{}", t.name());
                }
            }
        }
    }

    #[test]
    fn ia_path_matches_reference_off_interest() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let idx =
            PathIndex::build_interest_aware(&g, 2, [LabelSeq::from_slice(&[f.fwd(), f.fwd()])]);
        for src in ["(f . f) & f^-1", "(v . v^-1) & id", "f . v", "f^-1 . f . v"] {
            let q = parse_cpq(src, &g).unwrap();
            assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "query {src}");
        }
    }

    #[test]
    fn size_is_gamma_p() {
        // Stored pairs = Σ_seq |⟦seq⟧| — strictly more than |P≤2| when γ>1.
        let g = generate::gex();
        let path = PathIndex::build(&g, 2);
        let cpqx = cpqx_core::CpqxIndex::build(&g, 2);
        let s = path.stats();
        assert!(s.stored_pairs >= cpqx.pair_count());
        // Thm. 4.2's comparison: γ|C| + |P≤k| ≤ γ|P≤k| realized as
        // CPQx postings + pairs vs Path stored pairs.
        let cs = cpqx.stats();
        assert!(cs.postings + cs.pairs <= s.stored_pairs + cs.pairs);
        assert!(cs.postings <= s.stored_pairs);
        assert!(cs.classes <= cs.pairs);
    }

    #[test]
    fn maintenance_matches_reference_and_fresh_build() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let cfg = generate::RandomGraphConfig::social(40, 160, 3, 2);
        let mut g = generate::random_graph(&cfg);
        let mut idx = PathIndex::build(&g, 2);
        for round in 0..30 {
            let v = rng.gen_range(0..g.vertex_count());
            let u = rng.gen_range(0..g.vertex_count());
            let l = Label(rng.gen_range(0..g.base_label_count()));
            if rng.gen_bool(0.5) {
                idx.insert_edge(&mut g, v, u, l);
            } else {
                idx.delete_edge(&mut g, v, u, l);
            }
            if round % 10 == 9 {
                for src_q in ["l0 . l1", "(l0 . l1) & l2", "(l0 . l0^-1) & id"] {
                    let q = parse_cpq(src_q, &g).unwrap();
                    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "round {round}");
                }
            }
        }
        // Non-empty postings must equal a fresh build exactly (Path
        // maintenance is precise — there is no class structure to fragment).
        let fresh = PathIndex::build(&g, 2);
        let mut keys: Vec<_> =
            idx.il2p.iter().filter(|(_, v)| !v.is_empty()).map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let mut fresh_keys: Vec<_> =
            fresh.il2p.iter().filter(|(_, v)| !v.is_empty()).map(|(k, _)| *k).collect();
        fresh_keys.sort_unstable();
        assert_eq!(keys, fresh_keys);
        for k in keys {
            assert_eq!(idx.il2p[&k], fresh.il2p[&k], "postings differ for {k:?}");
        }
    }

    #[test]
    fn interest_updates() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        let mut idx =
            PathIndex::build_interest_aware(&g, 2, [LabelSeq::from_slice(&[f.fwd(), f.fwd()])]);
        let seq = LabelSeq::from_slice(&[v.fwd(), v.inv()]);
        assert!(!idx.is_indexed(&seq));
        assert!(idx.insert_interest(&g, seq));
        assert!(idx.is_indexed(&seq));
        let q = parse_cpq("v . v^-1", &g).unwrap();
        assert_eq!(idx.lookup(&seq), eval_reference(&g, &q).as_slice());
        assert!(idx.delete_interest(&seq));
        assert!(idx.lookup(&seq).is_empty());
        let q2 = parse_cpq("(v . v^-1) & id", &g).unwrap();
        assert_eq!(idx.evaluate(&g, &q2), eval_reference(&g, &q2));
    }

    #[test]
    fn full_index_contains_all_nonempty_seqs() {
        let g = generate::gex();
        let idx = PathIndex::build(&g, 2);
        for a in g.ext_labels() {
            for b in g.ext_labels() {
                let seq = LabelSeq::from_slice(&[a, b]);
                let q = Cpq::ext(a).join(Cpq::ext(b));
                let expected = eval_reference(&g, &q);
                assert_eq!(idx.lookup(&seq), expected.as_slice(), "seq {seq:?}");
            }
        }
    }
}
