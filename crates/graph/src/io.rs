//! Plain-text edge-list serialization.
//!
//! Format: one base edge per line, `source<TAB>target<TAB>label`, `#`
//! comments and blank lines ignored. Tokens are arbitrary strings; vertex
//! and label ids are assigned in first-appearance order, so
//! `read → write → read` round-trips to an identical graph.

use crate::graph::{Graph, GraphBuilder};
use std::io::{BufRead, Write};

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not have exactly three tab-separated fields.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::BadLine { line, content } => {
                write!(f, "line {line}: expected `src<TAB>dst<TAB>label`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a graph from an edge-list reader.
pub fn read_edge_list(r: impl BufRead) -> Result<Graph, ParseError> {
    let mut b = GraphBuilder::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split('\t');
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(v), Some(u), Some(l), None) => b.add_edge_named(v, u, l),
            _ => {
                return Err(ParseError::BadLine { line: i + 1, content: t.to_string() });
            }
        }
    }
    Ok(b.build())
}

/// Writes a graph as an edge list (forward base edges only).
pub fn write_edge_list(g: &Graph, mut w: impl Write) -> std::io::Result<()> {
    writeln!(
        w,
        "# {} vertices, {} base edges, {} base labels",
        g.vertex_count(),
        g.edge_count(),
        g.base_label_count()
    )?;
    for (v, u, l) in g.base_edges() {
        writeln!(w, "{}\t{}\t{}", g.vertex_name(v), g.vertex_name(u), g.label_name(l))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn roundtrip() {
        let g = generate::gex();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(g.vertex_count(), g2.vertex_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        // Same triad must exist in the re-read graph.
        let f = g2.label_named("f").unwrap();
        let (sue, joe) = (g2.vertex_named("sue").unwrap(), g2.vertex_named("joe").unwrap());
        assert!(g2.has_edge(sue, joe, f.fwd()));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let src = "# header\n\na\tb\tf\n  \nb\tc\tf\n";
        let g = read_edge_list(std::io::Cursor::new(src)).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn bad_line_reports_position() {
        let src = "a\tb\tf\noops\n";
        match read_edge_list(std::io::Cursor::new(src)) {
            Err(ParseError::BadLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }
}
