//! Labels, extended (direction-aware) labels, and inline label sequences.

use std::fmt;

/// Maximum length of a [`LabelSeq`]; bounds the index parameter `k`.
///
/// The paper evaluates `k ∈ {1, 2, 3, 4}`; 8 leaves generous headroom while
/// keeping sequences inline and `Copy`.
pub const MAX_SEQ_LEN: usize = 8;

/// A base edge label (`ℓ ∈ L`), e.g. `follows` in the paper's Fig. 1.
///
/// Stored as a dense `u16` id interned by [`crate::Graph`]; up to 32 767 base
/// labels are supported (the largest alphabet in Table II, Freebase, has 778
/// base labels).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Label(pub u16);

impl Label {
    /// The forward extended label for this base label.
    #[inline]
    pub fn fwd(self) -> ExtLabel {
        ExtLabel(self.0 * 2)
    }

    /// The inverse extended label (`ℓ⁻¹`) for this base label.
    #[inline]
    pub fn inv(self) -> ExtLabel {
        ExtLabel(self.0 * 2 + 1)
    }
}

/// An extended label: a base label together with a traversal direction.
///
/// The paper extends `L` with `ℓ⁻¹` for each `ℓ ∈ L`. We interleave the two:
/// `ext = base * 2 + direction`, so [`ExtLabel::inverse`] is a single XOR and
/// extended labels of a graph with `|L|` base labels are exactly
/// `0 .. 2·|L|` — convenient as vector indexes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExtLabel(pub u16);

impl ExtLabel {
    /// The underlying base label.
    #[inline]
    pub fn base(self) -> Label {
        Label(self.0 / 2)
    }

    /// Whether this is the inverse direction (`ℓ⁻¹`).
    #[inline]
    pub fn is_inverse(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite direction of the same base label.
    #[inline]
    pub fn inverse(self) -> ExtLabel {
        ExtLabel(self.0 ^ 1)
    }
}

/// A label sequence `⟨ℓ₁, …, ℓⱼ⟩ ∈ L≤k` over extended labels.
///
/// Stored inline (no heap allocation) so sequences are `Copy` and cheap to
/// hash and compare; they key the index's `Il2c` structure. The empty
/// sequence is allowed as a builder seed but never appears as an index key
/// (the identity query `id` is handled by the executor, not by lookup).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSeq {
    len: u8,
    items: [u16; MAX_SEQ_LEN],
}

impl LabelSeq {
    /// The empty sequence.
    #[inline]
    pub const fn empty() -> Self {
        LabelSeq { len: 0, items: [0; MAX_SEQ_LEN] }
    }

    /// A length-1 sequence.
    #[inline]
    pub fn single(l: ExtLabel) -> Self {
        let mut s = Self::empty();
        s.items[0] = l.0;
        s.len = 1;
        s
    }

    /// Builds a sequence from a slice of extended labels.
    ///
    /// # Panics
    /// Panics if the slice is longer than [`MAX_SEQ_LEN`].
    pub fn from_slice(labels: &[ExtLabel]) -> Self {
        assert!(labels.len() <= MAX_SEQ_LEN, "label sequence longer than MAX_SEQ_LEN");
        let mut s = Self::empty();
        for (i, l) in labels.iter().enumerate() {
            s.items[i] = l.0;
        }
        s.len = labels.len() as u8;
        s
    }

    /// Number of labels in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th extended label.
    #[inline]
    pub fn get(&self, i: usize) -> ExtLabel {
        debug_assert!(i < self.len());
        ExtLabel(self.items[i])
    }

    /// Iterates over the extended labels of the sequence.
    pub fn iter(&self) -> impl Iterator<Item = ExtLabel> + '_ {
        self.items[..self.len()].iter().map(|&x| ExtLabel(x))
    }

    /// Returns a copy of the sequence with `l` appended.
    ///
    /// # Panics
    /// Panics if the sequence is already at [`MAX_SEQ_LEN`].
    #[inline]
    pub fn appended(&self, l: ExtLabel) -> Self {
        assert!(self.len() < MAX_SEQ_LEN, "label sequence overflow");
        let mut s = *self;
        s.items[s.len as usize] = l.0;
        s.len += 1;
        s
    }

    /// Concatenation of two sequences.
    ///
    /// # Panics
    /// Panics if the result exceeds [`MAX_SEQ_LEN`].
    pub fn concat(&self, other: &LabelSeq) -> Self {
        assert!(self.len() + other.len() <= MAX_SEQ_LEN, "label sequence overflow");
        let mut s = *self;
        for l in other.iter() {
            s.items[s.len as usize] = l.0;
            s.len += 1;
        }
        s
    }

    /// The prefix of length `n` (`n ≤ len`).
    pub fn prefix(&self, n: usize) -> Self {
        debug_assert!(n <= self.len());
        let mut s = *self;
        s.len = n as u8;
        for i in n..MAX_SEQ_LEN {
            s.items[i] = 0;
        }
        s
    }

    /// The suffix starting at position `n`.
    pub fn suffix(&self, n: usize) -> Self {
        debug_assert!(n <= self.len());
        let mut s = Self::empty();
        for i in n..self.len() {
            s = s.appended(ExtLabel(self.items[i]));
        }
        s
    }

    /// The sequence read backwards with every label inverted — the label
    /// sequence of the reversed path.
    pub fn reversed_inverse(&self) -> Self {
        let mut s = Self::empty();
        for i in (0..self.len()).rev() {
            s = s.appended(ExtLabel(self.items[i]).inverse());
        }
        s
    }
}

impl fmt::Debug for LabelSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}{}", l.base().0, if l.is_inverse() { "⁻¹" } else { "" })?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<ExtLabel> for LabelSeq {
    fn from_iter<T: IntoIterator<Item = ExtLabel>>(iter: T) -> Self {
        let mut s = Self::empty();
        for l in iter {
            s = s.appended(l);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_label_roundtrip() {
        let l = Label(7);
        assert_eq!(l.fwd().base(), l);
        assert_eq!(l.inv().base(), l);
        assert!(!l.fwd().is_inverse());
        assert!(l.inv().is_inverse());
        assert_eq!(l.fwd().inverse(), l.inv());
        assert_eq!(l.inv().inverse(), l.fwd());
    }

    #[test]
    fn seq_build_and_access() {
        let s = LabelSeq::from_slice(&[Label(0).fwd(), Label(1).inv(), Label(2).fwd()]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Label(0).fwd());
        assert_eq!(s.get(1), Label(1).inv());
        assert_eq!(s.get(2), Label(2).fwd());
        assert!(!s.is_empty());
        assert!(LabelSeq::empty().is_empty());
    }

    #[test]
    fn seq_prefix_suffix_concat() {
        let s =
            LabelSeq::from_slice(&[Label(0).fwd(), Label(1).fwd(), Label(2).fwd(), Label(3).fwd()]);
        let p = s.prefix(2);
        let q = s.suffix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(p.concat(&q), s);
        assert_eq!(s.prefix(0), LabelSeq::empty());
        assert_eq!(s.suffix(4), LabelSeq::empty());
    }

    #[test]
    fn seq_equality_ignores_cleared_tail() {
        // prefix() must zero the tail so Eq/Hash by value are consistent.
        let a = LabelSeq::from_slice(&[Label(5).fwd(), Label(6).fwd()]).prefix(1);
        let b = LabelSeq::single(Label(5).fwd());
        assert_eq!(a, b);
    }

    #[test]
    fn seq_reversed_inverse() {
        let s = LabelSeq::from_slice(&[Label(0).fwd(), Label(1).inv()]);
        let r = s.reversed_inverse();
        assert_eq!(r.get(0), Label(1).fwd());
        assert_eq!(r.get(1), Label(0).inv());
        assert_eq!(r.reversed_inverse(), s);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn seq_overflow_panics() {
        let mut s = LabelSeq::empty();
        for _ in 0..=MAX_SEQ_LEN {
            s = s.appended(Label(0).fwd());
        }
    }
}
