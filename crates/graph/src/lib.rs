//! Directed edge-labeled graph substrate for the CPQx index family.
//!
//! This crate provides the graph model of the paper (Sec. III-A): a graph is
//! `G = (V, E, L)` with labeled directed edges. To support traversals in the
//! inverse direction, the label alphabet is *extended* with `ℓ⁻¹` for every
//! base label `ℓ` and the edge set with the reversed edges, exactly as the
//! paper prescribes. All code in this workspace operates on the extended
//! view: an [`ExtLabel`] encodes a base [`Label`] plus a direction bit, and
//! the adjacency of a vertex contains both forward and inverse extended
//! edges, so a single lookup direction suffices everywhere.
//!
//! Besides the core [`Graph`] type the crate ships:
//!
//! * [`LabelSeq`] — inline, copyable label sequences of length ≤ 8 (the
//!   paper's `L≤k` elements; `k ∈ 1..4` in the evaluation),
//! * [`Pair`] — s-t vertex pairs packed into a `u64` so pair sets are flat
//!   sorted vectors amenable to merge joins,
//! * [`generate`] — seeded random generators (power-law, Erdős–Rényi, the
//!   gMark-style citation schema, the paper's Fig. 1 example graph `Gex`),
//! * [`datasets`] — scaled synthetic stand-ins for the 14 real graphs and 5
//!   gMark instances of Table II,
//! * [`io`] — a plain-text edge-list format,
//! * [`view`] — zero-copy source-range shard views over the edge lists
//!   (the unit of parallelism for sharded index construction),
//! * [`csr`] — lazily built per-chunk, per-label bidirectional CSR read
//!   faces (the read-optimized counterpart of the copy-on-write chunks,
//!   invalidated by mutation, shared across snapshot installs).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod datasets;
pub mod generate;
pub mod graph;
pub mod io;
pub mod label;
pub mod pair;
pub mod view;

pub use csr::{ChunkCsr, LabelFace};
pub use graph::{CowDiff, Graph, GraphBuilder, GraphStats, PairList, TopologyChunkParts, VertexId};
pub use label::{ExtLabel, Label, LabelSeq, MAX_SEQ_LEN};
pub use pair::Pair;
pub use view::SrcRangeView;
