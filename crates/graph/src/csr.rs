//! Per-chunk, per-label **bidirectional CSR read faces**.
//!
//! The copy-on-write [`VertexChunk`](crate::graph) storage is shaped for
//! writes: per-vertex adjacency rows and per-label pair segments that an
//! edge mutation can update in O(log) after copying one chunk. Reads
//! deserve a denser form. A [`ChunkCsr`] is the read-optimized face of one
//! chunk: for every extended label that has pairs in the chunk, a
//! [`LabelFace`] holding
//!
//! * a **forward** CSR — one `u32` offset per vertex row into a flat
//!   sorted target array, so `targets(v, ℓ)` is two array loads instead of
//!   two binary searches over the mixed-label adjacency row, and
//! * a **reverse** CSR — the chunk's pairs re-keyed by *target*:
//!   compacted sorted target keys, offsets, and grouped source arrays, so
//!   joins that need the left operand target-major can stream it without
//!   materializing or re-sorting anything (see
//!   `cpqx_query::ops::join_label_left`).
//!
//! # Invariants
//!
//! * `fwd` targets per row are strictly sorted; their concatenation in row
//!   order equals the chunk's source-contiguous pair segment for the
//!   label. `rev` keys are strictly sorted and each key's source group is
//!   strictly sorted — the reverse face is exactly the segment's pairs
//!   swapped and re-sorted.
//! * A face is **built lazily** on first read after construction or
//!   mutation ([`Graph::csr_chunk`](crate::Graph::csr_chunk) /
//!   [`Graph::csr_targets`](crate::Graph::csr_targets)) and cached inside
//!   the chunk behind an `Arc`, so `Graph::clone` (and therefore engine
//!   snapshot installs) share built faces by pointer — a snapshot install
//!   never copies or rebuilds a face.
//! * Every chunk mutation (`Arc::make_mut` copy-on-write in
//!   `Graph::insert_edge` / `Graph::remove_edge` / `Graph::add_vertex`)
//!   **invalidates** the touched chunk's cached face; untouched chunks
//!   keep theirs. The write path therefore stays O(changed): it drops a
//!   cache, it never rebuilds one.
//!
//! Stale reads are impossible by construction: the only way to mutate a
//! chunk is through the invalidating seam, and a cloned chunk carries a
//! cache describing bytes that are still identical.

use crate::graph::VertexId;
use crate::label::ExtLabel;
use crate::pair::Pair;

/// The bidirectional CSR of one extended label inside one chunk (see the
/// module docs for the invariants).
pub struct LabelFace {
    /// `fwd_offsets[r]..fwd_offsets[r + 1]` indexes `fwd_targets` with the
    /// sorted targets of vertex `start + r`. Length `rows + 1`.
    fwd_offsets: Vec<u32>,
    fwd_targets: Vec<VertexId>,
    /// Compacted strictly-sorted target keys of the reverse face.
    rev_keys: Vec<VertexId>,
    /// `rev_offsets[i]..rev_offsets[i + 1]` indexes `rev_sources` with the
    /// sorted sources reaching `rev_keys[i]`. Length `rev_keys.len() + 1`.
    rev_offsets: Vec<u32>,
    rev_sources: Vec<VertexId>,
}

impl LabelFace {
    /// Builds the face of one source-contiguous sorted pair segment whose
    /// sources all lie in `[start, start + rows)`.
    fn build(start: VertexId, rows: usize, segment: &[Pair]) -> LabelFace {
        let mut fwd_offsets = Vec::with_capacity(rows + 1);
        let mut fwd_targets = Vec::with_capacity(segment.len());
        fwd_offsets.push(0);
        let mut i = 0;
        for r in 0..rows {
            let v = start + r as u32;
            while i < segment.len() && segment[i].src() == v {
                fwd_targets.push(segment[i].dst());
                i += 1;
            }
            fwd_offsets.push(fwd_targets.len() as u32);
        }
        debug_assert_eq!(i, segment.len(), "segment sources outside chunk range");

        let mut swapped: Vec<Pair> = segment.iter().map(|p| p.swap()).collect();
        swapped.sort_unstable();
        let mut rev_keys = Vec::new();
        let mut rev_offsets = Vec::new();
        let mut rev_sources = Vec::with_capacity(swapped.len());
        for p in swapped {
            if rev_keys.last() != Some(&p.src()) {
                rev_keys.push(p.src());
                rev_offsets.push(rev_sources.len() as u32);
            }
            rev_sources.push(p.dst());
        }
        rev_offsets.push(rev_sources.len() as u32);
        LabelFace { fwd_offsets, fwd_targets, rev_keys, rev_offsets, rev_sources }
    }

    /// Number of pairs the face covers.
    #[inline]
    pub fn pair_count(&self) -> usize {
        self.fwd_targets.len()
    }

    /// Sorted targets of the vertex at in-chunk row `r`.
    #[inline]
    pub fn targets_of_row(&self, r: usize) -> &[VertexId] {
        &self.fwd_targets[self.fwd_offsets[r] as usize..self.fwd_offsets[r + 1] as usize]
    }

    /// The strictly-sorted compacted target keys of the reverse face.
    #[inline]
    pub fn rev_keys(&self) -> &[VertexId] {
        &self.rev_keys
    }

    /// Sorted sources reaching `rev_keys()[i]`.
    #[inline]
    pub fn rev_sources(&self, i: usize) -> &[VertexId] {
        &self.rev_sources[self.rev_offsets[i] as usize..self.rev_offsets[i + 1] as usize]
    }

    /// Iterates the reverse face as `(target, sorted sources)` groups in
    /// ascending target order.
    pub fn rev_groups(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.rev_keys.iter().enumerate().map(|(i, &t)| (t, self.rev_sources(i)))
    }
}

/// The read-optimized face of one copy-on-write chunk: a [`LabelFace`] per
/// extended label that has pairs in the chunk (`None` for absent labels,
/// so wide alphabets cost one machine word per empty label).
pub struct ChunkCsr {
    start: VertexId,
    rows: u32,
    faces: Vec<Option<Box<LabelFace>>>,
}

impl ChunkCsr {
    /// Builds all faces of a chunk from its per-label sorted pair
    /// segments (`segments[ℓ]` holds the chunk's pairs of extended label
    /// `ℓ`, sources in `[start, start + rows)`).
    pub(crate) fn build(start: VertexId, rows: usize, segments: &[Vec<Pair>]) -> ChunkCsr {
        let faces = segments
            .iter()
            .map(|seg| (!seg.is_empty()).then(|| Box::new(LabelFace::build(start, rows, seg))))
            .collect();
        ChunkCsr { start, rows: rows as u32, faces }
    }

    /// First vertex id of the chunk's range.
    #[inline]
    pub fn start(&self) -> VertexId {
        self.start
    }

    /// Number of vertex rows in the chunk.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The face of an extended label, if the chunk has pairs for it.
    #[inline]
    pub fn face(&self, l: ExtLabel) -> Option<&LabelFace> {
        self.faces.get(l.0 as usize).and_then(|f| f.as_deref())
    }

    /// Sorted targets of `(v, ℓ)` where `v` lies in this chunk's range.
    #[inline]
    pub fn targets(&self, v: VertexId, l: ExtLabel) -> &[VertexId] {
        debug_assert!(v >= self.start && v - self.start < self.rows);
        match self.face(l) {
            Some(f) => f.targets_of_row((v - self.start) as usize),
            None => &[],
        }
    }
}
