//! Seeded graph generators: random topologies, the gMark-style citation
//! schema, the paper's Fig. 1 example graph, and deterministic shapes for
//! tests.

use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Topology family for [`random_graph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// Uniformly random endpoints (biological-network stand-in).
    ErdosRenyi,
    /// Power-law degree distribution `P(d) ∝ d^(-exponent)` (social/web
    /// stand-in). Endpoints are sampled Chung-Lu style with weights
    /// `w_i ∝ (i+1)^(-1/(exponent-1))`.
    PowerLaw {
        /// Degree-distribution exponent (2.0–2.5 matches most social graphs).
        exponent: f64,
    },
}

/// Edge-label frequency distribution for [`random_graph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LabelDist {
    /// All labels equally likely.
    Uniform,
    /// `P(ℓ = i) ∝ exp(-λ · i)` — the paper assigns exactly this
    /// (λ = 0.5, following YAGO's label skew) to its unlabeled graphs.
    Exponential {
        /// Decay rate λ.
        lambda: f64,
    },
}

/// Configuration for [`random_graph`].
#[derive(Clone, Debug)]
pub struct RandomGraphConfig {
    /// Number of vertices.
    pub vertices: u32,
    /// Number of *base* edges to draw (distinct `(v, u, ℓ)` triples).
    pub base_edges: usize,
    /// Number of base labels.
    pub base_labels: u16,
    /// Endpoint sampling topology.
    pub topology: Topology,
    /// Label frequency skew.
    pub label_dist: LabelDist,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl RandomGraphConfig {
    /// A power-law graph with the paper's exponential label skew — the
    /// default stand-in configuration for the real datasets of Table II.
    pub fn social(vertices: u32, base_edges: usize, base_labels: u16, seed: u64) -> Self {
        RandomGraphConfig {
            vertices,
            base_edges,
            base_labels,
            topology: Topology::PowerLaw { exponent: 2.2 },
            label_dist: LabelDist::Exponential { lambda: 0.5 },
            seed,
        }
    }

    /// A uniform ER graph (biological-network stand-in).
    pub fn uniform(vertices: u32, base_edges: usize, base_labels: u16, seed: u64) -> Self {
        RandomGraphConfig {
            vertices,
            base_edges,
            base_labels,
            topology: Topology::ErdosRenyi,
            label_dist: LabelDist::Exponential { lambda: 0.5 },
            seed,
        }
    }
}

/// Cumulative-weight sampler over `0..n`.
struct WeightedSampler {
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    fn new(weights: impl Iterator<Item = f64>) -> Self {
        let mut cumulative: Vec<f64> = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        WeightedSampler { cumulative }
    }

    fn uniform(n: usize) -> Self {
        Self::new((0..n).map(|_| 1.0))
    }

    fn power_law(n: usize, exponent: f64) -> Self {
        Self::new((0..n).map(|i| ((i + 1) as f64).powf(-exponent)))
    }

    fn exponential(n: usize, lambda: f64) -> Self {
        Self::new((0..n).map(|i| (-lambda * i as f64).exp()))
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x: f64 = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }
}

/// Generates a random labeled graph per `cfg`.
///
/// Draws until `base_edges` *distinct* triples are collected (or the space
/// is exhausted), so the generated graph has exactly the requested size on
/// non-degenerate configurations.
pub fn random_graph(cfg: &RandomGraphConfig) -> Graph {
    assert!(cfg.vertices > 0, "graph must have at least one vertex");
    assert!(cfg.base_labels > 0, "graph must have at least one label");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let vs = match cfg.topology {
        Topology::ErdosRenyi => WeightedSampler::uniform(cfg.vertices as usize),
        Topology::PowerLaw { exponent } => {
            // Chung-Lu: degree-distribution exponent γ ⇒ weight exponent 1/(γ-1).
            WeightedSampler::power_law(cfg.vertices as usize, 1.0 / (exponent - 1.0))
        }
    };
    let ls = match cfg.label_dist {
        LabelDist::Uniform => WeightedSampler::uniform(cfg.base_labels as usize),
        LabelDist::Exponential { lambda } => {
            WeightedSampler::exponential(cfg.base_labels as usize, lambda)
        }
    };
    // Shuffle vertex identities so that weight rank is not identical to id
    // order (avoids artificial locality in the CSR layout).
    let mut identity: Vec<u32> = (0..cfg.vertices).collect();
    for i in (1..identity.len()).rev() {
        identity.swap(i, rng.gen_range(0..=i));
    }

    let mut seen = std::collections::HashSet::with_capacity(cfg.base_edges * 2);
    let mut b = GraphBuilder::new();
    b.ensure_vertices(cfg.vertices);
    b.ensure_labels(cfg.base_labels);
    let max_attempts = cfg.base_edges.saturating_mul(20).max(1024);
    let mut attempts = 0;
    while seen.len() < cfg.base_edges && attempts < max_attempts {
        attempts += 1;
        let v = identity[vs.sample(&mut rng)];
        let u = identity[vs.sample(&mut rng)];
        let l = ls.sample(&mut rng) as u16;
        if seen.insert((v, u, l)) {
            b.add_edge(v, u, crate::label::Label(l));
        }
    }
    b.build()
}

/// The six edge predicates of the gMark citation schema used in the paper's
/// scalability study (Sec. VI, "synthetic datasets").
pub const GMARK_LABELS: [&str; 6] =
    ["cites", "supervises", "livesIn", "worksIn", "publishesIn", "heldIn"];

/// Generates a gMark-style citation network.
///
/// Vertex types: researchers (90%), venues (5%), cities (5%). Edge
/// predicates and their type constraints follow the paper: `cites` and
/// `supervises` between researchers, `livesIn`/`worksIn` from researchers to
/// cities, `publishesIn` from researchers to venues, `heldIn` from venues to
/// cities. The base-edge/vertex ratio (~8, Table II) is preserved; citation
/// out-degrees are power-law distributed.
pub fn gmark(vertices: u32, seed: u64) -> Graph {
    assert!(vertices >= 20, "gmark graphs need at least 20 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_res = (vertices as f64 * 0.90) as u32;
    let n_ven = (vertices as f64 * 0.05).max(1.0) as u32;
    let n_city = vertices - n_res - n_ven;

    let mut b = GraphBuilder::new();
    b.ensure_vertices(vertices);
    for l in GMARK_LABELS {
        b.label(l);
    }
    let res = |i: u32| i; // researchers occupy [0, n_res)
    let ven = |i: u32| n_res + i; // venues occupy [n_res, n_res + n_ven)
    let city = |i: u32| n_res + n_ven + i;

    let cites = b.label("cites");
    let supervises = b.label("supervises");
    let lives_in = b.label("livesIn");
    let works_in = b.label("worksIn");
    let publishes_in = b.label("publishesIn");
    let held_in = b.label("heldIn");

    let res_sampler = WeightedSampler::power_law(n_res as usize, 1.8);
    // cites: ~5 per researcher, preferential targets.
    for r in 0..n_res {
        let out = rng.gen_range(0..=10);
        for _ in 0..out {
            let t = res_sampler.sample(&mut rng) as u32;
            if t != r {
                b.add_edge(res(r), res(t), cites);
            }
        }
    }
    // supervises: ~0.5 per researcher.
    for r in 0..n_res {
        if rng.gen_bool(0.5) {
            let t = rng.gen_range(0..n_res);
            if t != r {
                b.add_edge(res(t), res(r), supervises);
            }
        }
    }
    // livesIn / worksIn: one city each; often the same city (realistic skew).
    for r in 0..n_res {
        let home = rng.gen_range(0..n_city);
        b.add_edge(res(r), city(home), lives_in);
        let work = if rng.gen_bool(0.7) { home } else { rng.gen_range(0..n_city) };
        b.add_edge(res(r), city(work), works_in);
    }
    // publishesIn: 1–3 venues per researcher, skewed to popular venues.
    let ven_sampler = WeightedSampler::power_law(n_ven as usize, 1.5);
    for r in 0..n_res {
        for _ in 0..rng.gen_range(1..=3) {
            let t = ven_sampler.sample(&mut rng) as u32;
            b.add_edge(res(r), ven(t), publishes_in);
        }
    }
    // heldIn: each venue is held in one city.
    for v in 0..n_ven {
        b.add_edge(ven(v), city(rng.gen_range(0..n_city)), held_in);
    }
    b.build()
}

/// Builds the paper's Fig. 1 example graph `Gex`: twelve users, two blogs,
/// labels `f` (follows) and `v` (visits).
///
/// This is a faithful reconstruction of the figure's headline structure: the
/// `sue → joe → zoe → sue` follows-triad (so the query `(f∘f) ∩ f⁻¹` of the
/// introduction returns exactly `{(sue, zoe), (joe, sue), (zoe, joe)}`), the
/// two blogs with their visitor communities, and the `ada`-centred follow
/// fan-out. Some peripheral edges are reconstructed rather than copied
/// (the figure's full edge list is not machine-readable); tests assert the
/// properties the paper states about `Gex`, not the exact Fig. 3 class ids.
pub fn gex() -> Graph {
    let mut b = GraphBuilder::new();
    // Follows.
    for (v, u) in [
        ("sue", "joe"),
        ("joe", "zoe"),
        ("zoe", "sue"),
        ("ada", "tim"),
        ("ada", "tom"),
        ("tim", "flo"),
        ("tom", "jay"),
        ("flo", "aya"),
        ("jay", "aya"),
        ("aya", "ben"),
        ("ben", "liz"),
        ("liz", "jon"),
    ] {
        b.add_edge_named(v, u, "f");
    }
    // Visits.
    for v in ["ada", "tim", "tom", "sue", "joe", "zoe", "jon", "liz"] {
        b.add_edge_named(v, "123", "v");
    }
    for v in ["flo", "jay", "aya", "ben"] {
        b.add_edge_named(v, "987", "v");
    }
    b.build()
}

/// A directed path `0 → 1 → … → n` where edge `i` carries `labels[i]`.
pub fn labeled_path(labels: &[&str]) -> Graph {
    let mut b = GraphBuilder::new();
    for (i, l) in labels.iter().enumerate() {
        let v = i.to_string();
        let u = (i + 1).to_string();
        b.add_edge_named(&v, &u, l);
    }
    b.build()
}

/// A directed cycle of `n` vertices, all edges labeled `label`.
pub fn cycle(n: u32, label: &str) -> Graph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    let l = b.label(label);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n, l);
    }
    b.build()
}

/// A star: center `0` with `n` spokes `0 → i` labeled `label`.
pub fn star(n: u32, label: &str) -> Graph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n + 1);
    let l = b.label(label);
    for i in 1..=n {
        b.add_edge(0, i, l);
    }
    b.build()
}

/// A complete directed graph (no self-loops) on `n` vertices, one label.
pub fn clique(n: u32, label: &str) -> Graph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    let l = b.label(label);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, j, l);
            }
        }
    }
    b.build()
}

/// Picks `count` distinct existing base edges of `g`, deterministically from
/// `seed` — used by the maintenance experiments to choose update victims.
pub fn sample_edges(
    g: &Graph,
    count: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId, crate::label::Label)> {
    let all: Vec<_> = g.base_edges().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..all.len()).collect();
    for i in (1..idx.len()).rev() {
        idx.swap(i, rng.gen_range(0..=i));
    }
    idx.into_iter().take(count).map(|i| all[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic() {
        let cfg = RandomGraphConfig::social(100, 400, 4, 42);
        let g1 = random_graph(&cfg);
        let g2 = random_graph(&cfg);
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<_> = g1.base_edges().collect();
        let e2: Vec<_> = g2.base_edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn random_graph_hits_requested_size() {
        let cfg = RandomGraphConfig::social(500, 2000, 8, 7);
        let g = random_graph(&cfg);
        assert_eq!(g.vertex_count(), 500);
        assert_eq!(g.edge_count(), 2000);
        assert_eq!(g.base_label_count(), 8);
    }

    #[test]
    fn exponential_labels_are_skewed() {
        let cfg = RandomGraphConfig::social(2000, 20000, 8, 11);
        let g = random_graph(&cfg);
        let c0 = g.edge_pairs(crate::label::Label(0).fwd()).len();
        let c7 = g.edge_pairs(crate::label::Label(7).fwd()).len();
        assert!(c0 > 4 * c7.max(1), "label 0 ({c0}) should dominate label 7 ({c7})");
    }

    #[test]
    fn gmark_respects_schema() {
        let g = gmark(1000, 3);
        let cites = g.label_named("cites").unwrap();
        let held_in = g.label_named("heldIn").unwrap();
        let lives_in = g.label_named("livesIn").unwrap();
        assert!(!g.edge_pairs(cites.fwd()).is_empty());
        assert!(!g.edge_pairs(held_in.fwd()).is_empty());
        // livesIn targets must be cities (ids at the top of the range).
        let n_res = (1000f64 * 0.9) as u32;
        for p in g.edge_pairs(lives_in.fwd()) {
            assert!(p.src() < n_res, "livesIn source must be a researcher");
            assert!(p.dst() >= n_res, "livesIn target must not be a researcher");
        }
    }

    #[test]
    fn gex_has_the_triad() {
        let g = gex();
        assert_eq!(g.vertex_count(), 14);
        let f = g.label_named("f").unwrap();
        let (sue, joe, zoe) = (
            g.vertex_named("sue").unwrap(),
            g.vertex_named("joe").unwrap(),
            g.vertex_named("zoe").unwrap(),
        );
        assert!(g.has_edge(sue, joe, f.fwd()));
        assert!(g.has_edge(joe, zoe, f.fwd()));
        assert!(g.has_edge(zoe, sue, f.fwd()));
    }

    #[test]
    fn shapes() {
        let p = labeled_path(&["a", "b", "c"]);
        assert_eq!(p.vertex_count(), 4);
        assert_eq!(p.edge_count(), 3);
        let c = cycle(5, "f");
        assert_eq!(c.edge_count(), 5);
        let s = star(4, "f");
        assert_eq!(s.edge_count(), 4);
        let k = clique(4, "f");
        assert_eq!(k.edge_count(), 12);
    }

    #[test]
    fn sample_edges_distinct_and_seeded() {
        let g = gmark(500, 9);
        let s1 = sample_edges(&g, 50, 1);
        let s2 = sample_edges(&g, 50, 1);
        assert_eq!(s1, s2);
        let mut d = s1.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 50);
    }
}
