//! Source-target vertex pairs packed into a single machine word.

use crate::graph::VertexId;
use std::fmt;

/// An s-t vertex pair `(v, u)` packed as `v << 32 | u`.
///
/// The packing makes pair sets flat sorted `Vec<Pair>`s: sorting orders by
/// source first, then target, which is exactly what the index's sorted-merge
/// operators (Sec. IV-D) need. The type is `#[repr(transparent)]` over `u64`
/// so vectors of pairs have no overhead versus raw words.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Pair(pub u64);

impl Pair {
    /// Packs `(v, u)`.
    #[inline]
    pub fn new(v: VertexId, u: VertexId) -> Self {
        Pair(((v as u64) << 32) | u as u64)
    }

    /// The source vertex `v`.
    #[inline]
    pub fn src(self) -> VertexId {
        (self.0 >> 32) as u32
    }

    /// The target vertex `u`.
    #[inline]
    pub fn dst(self) -> VertexId {
        self.0 as u32
    }

    /// Whether the pair is cyclic (`v = u`), the paper's Def. 4.1 cond. 1.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src() == self.dst()
    }

    /// The reversed pair `(u, v)`.
    #[inline]
    pub fn swap(self) -> Pair {
        Pair::new(self.dst(), self.src())
    }
}

impl fmt::Debug for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.src(), self.dst())
    }
}

/// Sorts and deduplicates a pair vector in place (set normalization).
pub fn normalize(pairs: &mut Vec<Pair>) {
    pairs.sort_unstable();
    pairs.dedup();
}

/// Size-ratio threshold past which [`intersect_sorted`] switches from the
/// linear merge to the galloping search: with `|small| · 16 < |large|` the
/// `O(|small| · log |large|)` gallop beats walking the large side.
const GALLOP_RATIO: usize = 16;

/// Intersects two sorted, deduplicated slices (pairs, class ids — any
/// ordered element type).
///
/// Dispatches on the size ratio: balanced inputs take the linear
/// sorted-merge, skewed inputs (one side ≥ 16× the other) the galloping
/// variant [`intersect_gallop`] so the cost tracks the *smaller* operand.
pub fn intersect_sorted<T: Ord + Copy>(a: &[T], b: &[T], out: &mut Vec<T>) {
    if a.len().saturating_mul(GALLOP_RATIO) < b.len() {
        return intersect_gallop(a, b, out);
    }
    if b.len().saturating_mul(GALLOP_RATIO) < a.len() {
        return intersect_gallop(b, a, out);
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping (exponential-search) intersection of two sorted deduplicated
/// slices: for each element of `small`, gallop forward in `large` —
/// doubling steps to bracket the element, then a binary search inside the
/// bracket. `O(|small| · log |large|)`, the right shape when one operand
/// dwarfs the other (skewed label frequencies, tiny class sets against
/// huge relations).
pub fn intersect_gallop<T: Ord + Copy>(small: &[T], large: &[T], out: &mut Vec<T>) {
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        // Bracket: after the loop the first element >= x lies in
        // large[lo ..= lo + step].
        let mut step = 1usize;
        while lo + step < large.len() && large[lo + step] < x {
            step <<= 1;
        }
        let hi = (lo + step + 1).min(large.len());
        let at = lo + large[lo..hi].partition_point(|&y| y < x);
        if at < large.len() && large[at] == x {
            out.push(x);
            lo = at + 1;
        } else {
            lo = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let p = Pair::new(0xDEAD_BEEF, 0x0042_4242);
        assert_eq!(p.src(), 0xDEAD_BEEF);
        assert_eq!(p.dst(), 0x0042_4242);
        assert!(!p.is_loop());
        assert!(Pair::new(3, 3).is_loop());
        assert_eq!(p.swap().src(), p.dst());
    }

    #[test]
    fn ordering_is_source_major() {
        let a = Pair::new(1, 9);
        let b = Pair::new(2, 0);
        assert!(a < b);
        let c = Pair::new(1, 10);
        assert!(a < c);
    }

    #[test]
    fn normalize_dedups() {
        let mut v = vec![Pair::new(2, 1), Pair::new(1, 1), Pair::new(2, 1)];
        normalize(&mut v);
        assert_eq!(v, vec![Pair::new(1, 1), Pair::new(2, 1)]);
    }

    #[test]
    fn gallop_matches_merge_on_skewed_inputs() {
        let large: Vec<Pair> = (0..1024u32).map(|i| Pair::new(i / 8, i % 8)).collect();
        let small = vec![Pair::new(3, 5), Pair::new(50, 2), Pair::new(500, 0)];
        let naive: Vec<Pair> = small.iter().copied().filter(|p| large.contains(p)).collect();
        let mut gallop = Vec::new();
        intersect_gallop(&small, &large, &mut gallop);
        assert_eq!(gallop, naive);
        assert_eq!(gallop, vec![Pair::new(3, 5), Pair::new(50, 2)]);
        // The dispatching entry point agrees regardless of argument order.
        let mut a = Vec::new();
        intersect_sorted(&small, &large, &mut a);
        let mut b = Vec::new();
        intersect_sorted(&large, &small, &mut b);
        assert_eq!(a, gallop);
        assert_eq!(b, gallop);
        // Generic over other ordered ids too.
        let mut ids = Vec::new();
        intersect_gallop(&[7u32, 900], &(0..800u32).collect::<Vec<_>>(), &mut ids);
        assert_eq!(ids, vec![7]);
    }

    #[test]
    fn intersection() {
        let a = vec![Pair::new(1, 1), Pair::new(1, 2), Pair::new(3, 1)];
        let b = vec![Pair::new(1, 2), Pair::new(2, 2), Pair::new(3, 1)];
        let mut out = Vec::new();
        intersect_sorted(&a, &b, &mut out);
        assert_eq!(out, vec![Pair::new(1, 2), Pair::new(3, 1)]);
    }
}
