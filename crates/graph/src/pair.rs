//! Source-target vertex pairs packed into a single machine word.

use crate::graph::VertexId;
use std::fmt;

/// An s-t vertex pair `(v, u)` packed as `v << 32 | u`.
///
/// The packing makes pair sets flat sorted `Vec<Pair>`s: sorting orders by
/// source first, then target, which is exactly what the index's sorted-merge
/// operators (Sec. IV-D) need. The type is `#[repr(transparent)]` over `u64`
/// so vectors of pairs have no overhead versus raw words.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Pair(pub u64);

impl Pair {
    /// Packs `(v, u)`.
    #[inline]
    pub fn new(v: VertexId, u: VertexId) -> Self {
        Pair(((v as u64) << 32) | u as u64)
    }

    /// The source vertex `v`.
    #[inline]
    pub fn src(self) -> VertexId {
        (self.0 >> 32) as u32
    }

    /// The target vertex `u`.
    #[inline]
    pub fn dst(self) -> VertexId {
        self.0 as u32
    }

    /// Whether the pair is cyclic (`v = u`), the paper's Def. 4.1 cond. 1.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src() == self.dst()
    }

    /// The reversed pair `(u, v)`.
    #[inline]
    pub fn swap(self) -> Pair {
        Pair::new(self.dst(), self.src())
    }
}

impl fmt::Debug for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.src(), self.dst())
    }
}

/// Sorts and deduplicates a pair vector in place (set normalization).
pub fn normalize(pairs: &mut Vec<Pair>) {
    pairs.sort_unstable();
    pairs.dedup();
}

/// Intersects two sorted, deduplicated pair slices.
pub fn intersect_sorted(a: &[Pair], b: &[Pair], out: &mut Vec<Pair>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let p = Pair::new(0xDEAD_BEEF, 0x0042_4242);
        assert_eq!(p.src(), 0xDEAD_BEEF);
        assert_eq!(p.dst(), 0x0042_4242);
        assert!(!p.is_loop());
        assert!(Pair::new(3, 3).is_loop());
        assert_eq!(p.swap().src(), p.dst());
    }

    #[test]
    fn ordering_is_source_major() {
        let a = Pair::new(1, 9);
        let b = Pair::new(2, 0);
        assert!(a < b);
        let c = Pair::new(1, 10);
        assert!(a < c);
    }

    #[test]
    fn normalize_dedups() {
        let mut v = vec![Pair::new(2, 1), Pair::new(1, 1), Pair::new(2, 1)];
        normalize(&mut v);
        assert_eq!(v, vec![Pair::new(1, 1), Pair::new(2, 1)]);
    }

    #[test]
    fn intersection() {
        let a = vec![Pair::new(1, 1), Pair::new(1, 2), Pair::new(3, 1)];
        let b = vec![Pair::new(1, 2), Pair::new(2, 2), Pair::new(3, 1)];
        let mut out = Vec::new();
        intersect_sorted(&a, &b, &mut out);
        assert_eq!(out, vec![Pair::new(1, 2), Pair::new(3, 1)]);
    }
}
