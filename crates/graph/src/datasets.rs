//! Scaled synthetic stand-ins for the datasets of the paper's Table II.
//!
//! The originals (SNAP/KONECT exports, YAGO, Wikidata, Freebase, the
//! authors' gMark instances) are not available offline, so each dataset is
//! replaced by a generated graph that preserves the properties the index
//! interacts with: the vertex/edge ratio, the label-alphabet size, the
//! exponential label-frequency skew (λ = 0.5 — the paper itself assigns such
//! labels to its unlabeled graphs), and a topology family. Sizes are scaled
//! by an edge budget so experiments run on one machine; the scaling keeps
//! `|E|/|V|` and `|L|` fixed, which is what drives `P≤k` growth and
//! therefore index behaviour.

use crate::generate::{gmark, random_graph, RandomGraphConfig, Topology};
use crate::graph::Graph;

/// The datasets of Table II (9 real-labeled + 5 synthetic-labeled + 5 gMark).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Dataset {
    Robots,
    EgoFacebook,
    Advogato,
    Youtube,
    StringHS,
    StringFC,
    BioGrid,
    Epinions,
    WebGoogle,
    WikiTalk,
    Yago,
    CitPatents,
    Wikidata,
    Freebase,
    GMark1m,
    GMark5m,
    GMark10m,
    GMark15m,
    GMark20m,
}

/// Static description of a Table II dataset (original sizes; `|E|`/`|L|`
/// are the paper's *extended* counts including inverses).
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// `|V|` of the original.
    pub vertices: u64,
    /// `|E|` of the original, inverse edges included.
    pub ext_edges: u64,
    /// `|L|` of the original, inverse labels included.
    pub ext_labels: u32,
    /// Whether the original carries real edge labels (Table II's last column).
    pub real_labels: bool,
    /// Topology family used by the stand-in generator.
    pub topology: Topology,
}

impl DatasetSpec {
    /// Base (non-extended) edge count of the original.
    pub fn base_edges(&self) -> u64 {
        self.ext_edges / 2
    }

    /// Base (non-extended) label count of the original.
    pub fn base_labels(&self) -> u16 {
        (self.ext_labels / 2) as u16
    }
}

const PL: Topology = Topology::PowerLaw { exponent: 2.2 };
const ER: Topology = Topology::ErdosRenyi;

impl Dataset {
    /// The 14 real graphs of Table II, in paper order.
    pub const REAL: [Dataset; 14] = [
        Dataset::Robots,
        Dataset::EgoFacebook,
        Dataset::Advogato,
        Dataset::Youtube,
        Dataset::StringHS,
        Dataset::StringFC,
        Dataset::BioGrid,
        Dataset::Epinions,
        Dataset::WebGoogle,
        Dataset::WikiTalk,
        Dataset::Yago,
        Dataset::CitPatents,
        Dataset::Wikidata,
        Dataset::Freebase,
    ];

    /// The five gMark scalability instances.
    pub const GMARK: [Dataset; 5] = [
        Dataset::GMark1m,
        Dataset::GMark5m,
        Dataset::GMark10m,
        Dataset::GMark15m,
        Dataset::GMark20m,
    ];

    /// Table II row for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Robots => DatasetSpec {
                name: "Robots",
                vertices: 1_484,
                ext_edges: 5_920,
                ext_labels: 8,
                real_labels: true,
                topology: PL,
            },
            Dataset::EgoFacebook => DatasetSpec {
                name: "ego-Facebook",
                vertices: 4_039,
                ext_edges: 176_468,
                ext_labels: 16,
                real_labels: false,
                topology: PL,
            },
            Dataset::Advogato => DatasetSpec {
                name: "Advogato",
                vertices: 5_417,
                ext_edges: 102_654,
                ext_labels: 8,
                real_labels: true,
                topology: PL,
            },
            Dataset::Youtube => DatasetSpec {
                name: "Youtube",
                vertices: 15_088,
                ext_edges: 21_452_214,
                ext_labels: 10,
                real_labels: true,
                topology: PL,
            },
            Dataset::StringHS => DatasetSpec {
                name: "StringHS",
                vertices: 16_956,
                ext_edges: 2_483_530,
                ext_labels: 14,
                real_labels: true,
                topology: ER,
            },
            Dataset::StringFC => DatasetSpec {
                name: "StringFC",
                vertices: 15_515,
                ext_edges: 4_089_600,
                ext_labels: 14,
                real_labels: true,
                topology: ER,
            },
            Dataset::BioGrid => DatasetSpec {
                name: "BioGrid",
                vertices: 64_332,
                ext_edges: 1_724_554,
                ext_labels: 14,
                real_labels: true,
                topology: ER,
            },
            Dataset::Epinions => DatasetSpec {
                name: "Epinions",
                vertices: 131_828,
                ext_edges: 1_681_598,
                ext_labels: 16,
                real_labels: false,
                topology: PL,
            },
            Dataset::WebGoogle => DatasetSpec {
                name: "WebGoogle",
                vertices: 875_713,
                ext_edges: 10_210_074,
                ext_labels: 16,
                real_labels: false,
                topology: PL,
            },
            Dataset::WikiTalk => DatasetSpec {
                name: "WikiTalk",
                vertices: 2_394_385,
                ext_edges: 10_042_820,
                ext_labels: 16,
                real_labels: false,
                topology: PL,
            },
            Dataset::Yago => DatasetSpec {
                name: "YAGO",
                vertices: 4_295_825,
                ext_edges: 24_861_400,
                ext_labels: 74,
                real_labels: true,
                topology: PL,
            },
            Dataset::CitPatents => DatasetSpec {
                name: "CitPatents",
                vertices: 3_774_768,
                ext_edges: 33_037_896,
                ext_labels: 16,
                real_labels: false,
                topology: PL,
            },
            Dataset::Wikidata => DatasetSpec {
                name: "Wikidata",
                vertices: 9_292_714,
                ext_edges: 110_851_582,
                ext_labels: 1054,
                real_labels: true,
                topology: PL,
            },
            Dataset::Freebase => DatasetSpec {
                name: "Freebase",
                vertices: 14_420_276,
                ext_edges: 213_225_620,
                ext_labels: 1556,
                real_labels: true,
                topology: PL,
            },
            Dataset::GMark1m => DatasetSpec {
                name: "g-Mark-1m",
                vertices: 1_006_802,
                ext_edges: 15_925_506,
                ext_labels: 12,
                real_labels: true,
                topology: PL,
            },
            Dataset::GMark5m => DatasetSpec {
                name: "g-Mark-5m",
                vertices: 5_005_992,
                ext_edges: 84_994_500,
                ext_labels: 12,
                real_labels: true,
                topology: PL,
            },
            Dataset::GMark10m => DatasetSpec {
                name: "g-Mark-10m",
                vertices: 10_005_721,
                ext_edges: 183_748_319,
                ext_labels: 12,
                real_labels: true,
                topology: PL,
            },
            Dataset::GMark15m => DatasetSpec {
                name: "g-Mark-15m",
                vertices: 15_003_647,
                ext_edges: 255_538_724,
                ext_labels: 12,
                real_labels: true,
                topology: PL,
            },
            Dataset::GMark20m => DatasetSpec {
                name: "g-Mark-20m",
                vertices: 20_004_856,
                ext_edges: 393_797_046,
                ext_labels: 12,
                real_labels: true,
                topology: PL,
            },
        }
    }

    /// The paper's name for this dataset.
    pub fn name(&self) -> &'static str {
        self.spec().name
    }

    /// Generates the stand-in graph, scaled so the base edge count does not
    /// exceed `max_base_edges` (vertex count scales proportionally, with
    /// `|E|/|V|` and `|L|` preserved). Deterministic in `seed`.
    pub fn generate(&self, max_base_edges: usize, seed: u64) -> Graph {
        let spec = self.spec();
        let scale = (max_base_edges as f64 / spec.base_edges() as f64).min(1.0);
        let vertices = ((spec.vertices as f64 * scale) as u32).max(64);
        let base_edges = ((spec.base_edges() as f64 * scale) as usize).max(128);
        match self {
            Dataset::GMark1m
            | Dataset::GMark5m
            | Dataset::GMark10m
            | Dataset::GMark15m
            | Dataset::GMark20m => gmark(vertices.max(200), seed),
            _ => {
                let mut cfg =
                    RandomGraphConfig::social(vertices, base_edges, spec.base_labels(), seed);
                cfg.topology = spec.topology;
                random_graph(&cfg)
            }
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_ii_counts() {
        assert_eq!(Dataset::REAL.len(), 14);
        let y = Dataset::Yago.spec();
        assert_eq!(y.ext_labels, 74);
        assert_eq!(y.base_labels(), 37);
        assert_eq!(Dataset::Freebase.spec().base_labels(), 778);
    }

    #[test]
    fn generation_respects_budget() {
        let g = Dataset::Youtube.generate(5_000, 1);
        assert!(g.edge_count() <= 5_100, "edge budget respected, got {}", g.edge_count());
        assert_eq!(g.base_label_count(), 5);
    }

    #[test]
    fn edge_vertex_ratio_preserved() {
        let spec = Dataset::Epinions.spec();
        let orig_ratio = spec.base_edges() as f64 / spec.vertices as f64;
        let g = Dataset::Epinions.generate(20_000, 2);
        let ratio = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!((ratio - orig_ratio).abs() / orig_ratio < 0.25, "ratio {ratio} vs {orig_ratio}");
    }

    #[test]
    fn gmark_stand_in_uses_schema() {
        let g = Dataset::GMark1m.generate(10_000, 3);
        assert_eq!(g.base_label_count(), 6);
        assert!(g.label_named("cites").is_some());
    }

    #[test]
    fn small_dataset_generates_at_full_size() {
        let g = Dataset::Robots.generate(1_000_000, 4);
        assert_eq!(g.vertex_count(), 1_484);
        assert_eq!(g.edge_count(), 2_960);
        assert_eq!(g.base_label_count(), 4);
    }
}
