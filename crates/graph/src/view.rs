//! Shard views over the graph's edge lists.
//!
//! A [`SrcRangeView`] restricts the per-label pair relations `⟦ℓ⟧` to pairs
//! whose *source* vertex falls in a contiguous id range. Because pair lists
//! are sorted source-major ([`Pair`] packs `v << 32 | u`), the restriction
//! of every relation is a contiguous subslice — shard views are zero-copy
//! and O(log |⟦ℓ⟧|) to obtain.
//!
//! Source-contiguous shards are the unit of parallelism for the engine's
//! sharded index build: the set of s-t pairs `P≤k` partitions exactly by
//! source vertex (every path from `v` contributes only to pairs `(v, ·)`),
//! so per-shard refinements are independent, and concatenating shard
//! results in range order preserves global pair order without re-sorting.

use crate::graph::{Graph, PairList, VertexId};
use crate::label::ExtLabel;
use crate::pair::Pair;
use std::ops::Range;

/// A zero-copy view of a graph's edge lists restricted to source vertices
/// in `range` (see the module docs).
#[derive(Clone, Copy)]
pub struct SrcRangeView<'g> {
    graph: &'g Graph,
    range: (VertexId, VertexId),
}

impl<'g> SrcRangeView<'g> {
    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The source-vertex range of this shard.
    #[inline]
    pub fn range(&self) -> Range<VertexId> {
        self.range.0..self.range.1
    }

    /// The restriction of `⟦ℓ⟧` to pairs with source in this shard's range
    /// — a source-contiguous sub-view of the graph's sorted relation
    /// (zero-copy: the view only narrows the per-chunk segments).
    pub fn edge_pairs(&self, l: ExtLabel) -> PairList<'g> {
        self.graph.edge_pairs(l).restrict_src(self.range.0, self.range.1)
    }

    /// Total restricted edge-pair entries across all extended labels (the
    /// shard's share of level-1 work; used for load balancing diagnostics).
    pub fn pair_count(&self) -> usize {
        self.graph.ext_labels().map(|l| self.edge_pairs(l).len()).sum()
    }
}

/// The contiguous subslice of a source-major sorted pair list whose sources
/// lie in `[lo, hi)`.
pub fn slice_by_src(pairs: &[Pair], lo: VertexId, hi: VertexId) -> &[Pair] {
    let start = pairs.partition_point(|p| p.src() < lo);
    let end = start + pairs[start..].partition_point(|p| p.src() < hi);
    &pairs[start..end]
}

impl Graph {
    /// A zero-copy shard view restricted to source vertices in `range`.
    pub fn src_range_view(&self, range: Range<VertexId>) -> SrcRangeView<'_> {
        let hi = range.end.min(self.vertex_count());
        let lo = range.start.min(hi);
        SrcRangeView { graph: self, range: (lo, hi) }
    }

    /// Splits the vertex ids into at most `shards` contiguous ranges with
    /// approximately equal total extended degree (the dominant per-shard
    /// cost driver of level-1 refinement). Returns fewer ranges when the
    /// graph is too small to fill them; every returned range is non-empty
    /// and the ranges cover `0..vertex_count()` in ascending order.
    pub fn balanced_src_ranges(&self, shards: usize) -> Vec<Range<VertexId>> {
        balanced_ranges_by_weight(self.vertex_count(), shards, |v| self.ext_degree(v))
    }

    /// Like [`Graph::balanced_src_ranges`], but weighting each source
    /// vertex by its out-degree under the given extended labels only
    /// (labels may repeat; repeated labels count twice). This is the range
    /// geometry for **interest-aware** shard builds: a shard's work is
    /// driven by the expansions seeded at its sources, one per outgoing
    /// edge per indexed sequence starting with that edge's label — not by
    /// the vertex's total degree.
    pub fn balanced_src_ranges_for_labels(
        &self,
        labels: &[ExtLabel],
        shards: usize,
    ) -> Vec<Range<VertexId>> {
        // Fold repeats into per-distinct-label multiplicities up front:
        // callers pass one entry per indexed *sequence* (hundreds for
        // full-coverage interest sets), and the weight closure runs per
        // vertex — it must be O(distinct labels), not O(sequences).
        let mut counts: Vec<(ExtLabel, usize)> = Vec::new();
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        for l in sorted {
            match counts.last_mut() {
                Some((pl, c)) if *pl == l => *c += 1,
                _ => counts.push((l, 1)),
            }
        }
        balanced_ranges_by_weight(self.vertex_count(), shards, |v| {
            counts.iter().map(|&(l, c)| c * self.degree(v, l)).sum()
        })
    }
}

/// Splits `0..n` into at most `shards` contiguous ranges of approximately
/// equal total `weight` (each vertex counts at least 1 so empty vertices
/// still tile). The shared range balancer behind
/// [`Graph::balanced_src_ranges`] and the index builder's
/// refinement-weighted variant. Every returned range is non-empty and the
/// ranges tile `0..n` in ascending order; `n == 0` or `shards == 0` yields
/// no ranges.
pub fn balanced_ranges_by_weight(
    n: u32,
    shards: usize,
    weight: impl Fn(u32) -> usize,
) -> Vec<Range<u32>> {
    if n == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = shards.min(n as usize);
    let total: usize = (0..n).map(|v| weight(v).max(1)).sum();
    let per_shard = total.div_ceil(shards);
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0u32;
    let mut acc = 0usize;
    for v in 0..n {
        acc += weight(v).max(1);
        let remaining_shards = shards - ranges.len();
        let remaining_vertices = n - v;
        // Close the shard when it is full — or when every remaining
        // vertex is needed to keep later ranges non-empty.
        if acc >= per_shard || remaining_vertices <= remaining_shards as u32 {
            if ranges.len() + 1 == shards {
                break; // last shard takes the tail
            }
            ranges.push(start..v + 1);
            start = v + 1;
            acc = 0;
        }
    }
    ranges.push(start..n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::GraphBuilder;

    #[test]
    fn view_slices_match_filtering() {
        let g = generate::gex();
        let n = g.vertex_count();
        for lo in 0..=n {
            for hi in lo..=n {
                let view = g.src_range_view(lo..hi);
                for l in g.ext_labels() {
                    let expected: Vec<Pair> =
                        g.edge_pairs(l).iter().filter(|p| (lo..hi).contains(&p.src())).collect();
                    assert_eq!(view.edge_pairs(l).to_vec(), expected, "label {l:?} [{lo},{hi})");
                    assert_eq!(view.edge_pairs(l).len(), expected.len());
                }
            }
        }
    }

    #[test]
    fn balanced_ranges_cover_and_are_nonempty() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(57, 300, 3, 1));
        for shards in [1, 2, 3, 7, 8, 57, 100] {
            let ranges = g.balanced_src_ranges(shards);
            assert!(ranges.len() <= shards);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, g.vertex_count());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must tile");
            }
            for r in &ranges {
                assert!(r.start < r.end, "empty shard range {r:?} for {shards} shards");
            }
        }
    }

    #[test]
    fn balanced_ranges_roughly_balance_degree() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(400, 3_000, 3, 5));
        let ranges = g.balanced_src_ranges(4);
        assert_eq!(ranges.len(), 4);
        let loads: Vec<usize> =
            ranges.iter().map(|r| (r.start..r.end).map(|v| g.ext_degree(v)).sum()).collect();
        let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        assert!(*max <= min * 4 + 64, "shard loads far apart: {loads:?}");
    }

    #[test]
    fn label_weighted_ranges_balance_selected_labels_only() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(200, 1_500, 3, 3));
        let labels: Vec<ExtLabel> = g.ext_labels().take(2).collect();
        let ranges = g.balanced_src_ranges_for_labels(&labels, 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, g.vertex_count());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile");
        }
        let loads: Vec<usize> = ranges
            .iter()
            .map(|r| {
                (r.start..r.end)
                    .map(|v| labels.iter().map(|&l| g.degree(v, l)).sum::<usize>())
                    .sum()
            })
            .collect();
        let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        assert!(*max <= min * 4 + 64, "label-weighted shard loads far apart: {loads:?}");
        // Degenerate inputs behave like the unweighted variant.
        assert!(!g.balanced_src_ranges_for_labels(&[], 3).is_empty());
        assert!(GraphBuilder::new().build().balanced_src_ranges_for_labels(&labels, 3).is_empty());
    }

    #[test]
    fn degenerate_views() {
        let g = generate::gex();
        let v = g.src_range_view(0..0);
        assert_eq!(v.pair_count(), 0);
        // Out-of-range clamps.
        let v = g.src_range_view(0..u32::MAX);
        assert_eq!(v.range(), 0..g.vertex_count());
        let empty = GraphBuilder::new().build();
        assert!(empty.balanced_src_ranges(4).is_empty());
        assert!(g.balanced_src_ranges(0).is_empty());
    }

    #[test]
    fn whole_range_view_equals_graph() {
        let g = generate::random_graph(&generate::RandomGraphConfig::uniform(40, 200, 3, 9));
        let view = g.src_range_view(0..g.vertex_count());
        for l in g.ext_labels() {
            assert_eq!(view.edge_pairs(l).to_vec(), g.edge_pairs(l).to_vec());
        }
    }
}
