//! The directed edge-labeled graph type and its builder.

use crate::csr::ChunkCsr;
use crate::label::{ExtLabel, Label};
use crate::pair::Pair;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Dense vertex identifier (`u32`, per the small-integer-id guideline).
pub type VertexId = u32;

/// One decoded topology chunk as the store persists it: the chunk's
/// first vertex id plus one sorted `(ext_label, target)` adjacency row
/// per vertex — the owned form of [`Graph::topology_chunk`]'s view.
pub type TopologyChunkParts = (VertexId, Vec<Vec<(u16, VertexId)>>);

/// Target total adjacency entries per copy-on-write chunk. Chunk
/// boundaries are computed with [`crate::view::balanced_ranges_by_weight`]
/// over the extended degrees, so every chunk carries roughly this much
/// data regardless of degree skew — the unit a write transaction copies.
/// Deliberately fine-grained: an edge op touches exactly two chunks, so
/// sharing quality is `1 − touched/total`, and cloning even hundreds of
/// thousands of `Arc`s is still orders of magnitude cheaper than one
/// deep copy.
const TARGET_CHUNK_WEIGHT: usize = 1 << 9;

/// Row count past which [`Graph::add_vertex`] opens a fresh chunk instead
/// of growing the last one (keeps append-heavy workloads from
/// concentrating all new vertices in one ever-growing chunk).
const CHUNK_SPLIT_ROWS: usize = 4096;

/// One contiguous vertex range of the graph's topology storage: the
/// adjacency rows and per-extended-label pair segments of the vertices in
/// `start..start + adj.len()`.
///
/// Chunks are the copy-on-write unit: [`Graph`] holds them behind [`Arc`]
/// and mutates through [`Arc::make_mut`], so cloning a graph is
/// O(#chunks) and an edge mutation copies only the chunks of the touched
/// endpoints — everything else stays structurally shared with the
/// original (see [`Graph::cow_diff`]). Display names live in a parallel
/// per-range store ([`Graph::names`]) so that edge churn never pays for
/// copying `String`s: name chunks are only touched by
/// [`Graph::add_vertex`] appends.
#[derive(Clone)]
pub(crate) struct VertexChunk {
    /// First vertex id of this chunk's range.
    pub(crate) start: VertexId,
    /// Adjacency rows sorted by `(label, target)`, indexed by `v - start`.
    pub(crate) adj: Vec<Vec<(u16, VertexId)>>,
    /// Per extended label: the sorted pairs of `⟦ℓ⟧` whose *source* lies
    /// in this chunk's range (a source-contiguous segment of the global
    /// relation).
    pub(crate) pairs: Vec<Vec<Pair>>,
    /// Lazily built read-optimized face ([`crate::csr`]): per-label
    /// bidirectional CSR over this chunk's pairs. Built on first read
    /// after construction or mutation; **every** mutation seam takes the
    /// cache after `Arc::make_mut` (mandatory — at refcount 1 `make_mut`
    /// mutates in place without cloning). Cloning a chunk keeps the cache:
    /// the clone's bytes are identical, so the face is still valid, which
    /// is what lets engine snapshot installs share built faces for free.
    pub(crate) csr: OnceLock<Arc<ChunkCsr>>,
}

impl VertexChunk {
    fn row_count(&self) -> usize {
        self.adj.len()
    }
}

/// Structural-sharing report of [`Graph::cow_diff`] /
/// `CpqxIndex::cow_diff` (in `cpqx-core`): how many copy-on-write chunks
/// of a descendant state were freshly copied versus still shared with the
/// state it was cloned from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CowDiff {
    /// Chunks not shared with the predecessor (copied or newly created).
    pub chunks_copied: usize,
    /// Chunks physically shared (`Arc::ptr_eq`) with the predecessor.
    pub chunks_shared: usize,
}

impl CowDiff {
    /// Accumulates another diff into this one.
    pub fn merge(self, other: CowDiff) -> CowDiff {
        CowDiff {
            chunks_copied: self.chunks_copied + other.chunks_copied,
            chunks_shared: self.chunks_shared + other.chunks_shared,
        }
    }

    /// Classifies one chunked store positionally against its predecessor:
    /// an `Arc` at the same index that is `ptr_eq` counts as shared,
    /// anything else (copied by `Arc::make_mut`, newly created, or absent
    /// before) as copied. The single classification rule behind every
    /// `cow_diff` implementation.
    pub fn record_arcs<T>(&mut self, now: &[Arc<T>], before: &[Arc<T>]) {
        for (i, c) in now.iter().enumerate() {
            match before.get(i) {
                Some(b) if Arc::ptr_eq(b, c) => self.chunks_shared += 1,
                _ => self.chunks_copied += 1,
            }
        }
    }
}

/// A borrowed view of a (possibly source-restricted) per-label pair
/// relation `⟦ℓ⟧`, stored as source-contiguous segments — one per
/// copy-on-write chunk of the graph.
///
/// The concatenation of [`PairList::segments`] is globally sorted (pair
/// order is source-major and segments follow ascending vertex ranges), so
/// sorted-merge consumers can process segments in order; point and bulk
/// access goes through [`PairList::iter`] / [`PairList::to_vec`] /
/// [`PairList::contains`].
#[derive(Clone, Copy)]
pub struct PairList<'g> {
    chunks: &'g [Arc<VertexChunk>],
    label: u16,
    /// Source-vertex bounds `[lo, hi)` of the view.
    lo: VertexId,
    hi: VertexId,
    len: usize,
}

impl<'g> PairList<'g> {
    /// Number of pairs in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no pairs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The non-empty sorted segments of the view, in ascending source
    /// order. Their concatenation is the whole (restricted) relation.
    /// Restricted views probe only the chunks whose vertex range
    /// intersects `[lo, hi)` (two partition points over the chunk
    /// starts), so narrow restrictions stay cheap on many-chunk graphs.
    pub fn segments(self) -> impl Iterator<Item = &'g [Pair]> {
        let label = self.label as usize;
        let (lo, hi) = (self.lo, self.hi);
        let unrestricted = lo == 0 && hi == VertexId::MAX;
        let chunks = if unrestricted {
            self.chunks
        } else {
            // First chunk whose range can reach lo … last whose start is
            // below hi (chunk i covers [start_i, start_{i+1})).
            let begin = self.chunks.partition_point(|c| c.start <= lo).saturating_sub(1);
            let end = self.chunks.partition_point(|c| c.start < hi);
            &self.chunks[begin..end.max(begin)]
        };
        chunks.iter().filter_map(move |c| {
            let seg = c.pairs[label].as_slice();
            let seg = if unrestricted { seg } else { crate::view::slice_by_src(seg, lo, hi) };
            (!seg.is_empty()).then_some(seg)
        })
    }

    /// Iterates the pairs in ascending order.
    pub fn iter(self) -> impl Iterator<Item = Pair> + 'g {
        self.segments().flat_map(|s| s.iter().copied())
    }

    /// Collects the view into an owned sorted vector.
    pub fn to_vec(self) -> Vec<Pair> {
        let mut out = Vec::with_capacity(self.len);
        for s in self.segments() {
            out.extend_from_slice(s);
        }
        out
    }

    /// Whether the view contains `p`: the source vertex routes to the
    /// single chunk that can hold it (partition point over the chunk
    /// starts), followed by one binary search inside that chunk's segment
    /// — O(log) regardless of how many chunks the view spans.
    pub fn contains(self, p: Pair) -> bool {
        let v = p.src();
        if v < self.lo || v >= self.hi {
            return false;
        }
        let ci = self.chunks.partition_point(|c| c.start <= v);
        if ci == 0 {
            return false;
        }
        self.chunks[ci - 1].pairs[self.label as usize].binary_search(&p).is_ok()
    }

    /// The view restricted to pairs with source in `[lo, hi)`. Only the
    /// two boundary chunks are sliced (binary searches); every interior
    /// chunk of the range lies fully inside `[lo, hi)` and contributes its
    /// whole segment length — O(log + #chunks in range), not
    /// O(#chunks × log) as a per-chunk slicing sum would be.
    pub fn restrict_src(self, lo: VertexId, hi: VertexId) -> PairList<'g> {
        let lo = lo.max(self.lo);
        let hi = hi.min(self.hi).max(lo);
        let mut out = PairList { chunks: self.chunks, label: self.label, lo, hi, len: 0 };
        if lo >= hi || self.chunks.is_empty() {
            return out;
        }
        let label = self.label as usize;
        let begin = self.chunks.partition_point(|c| c.start <= lo).saturating_sub(1);
        let end = self.chunks.partition_point(|c| c.start < hi).max(begin);
        let mut len = 0usize;
        for (k, c) in self.chunks[begin..end].iter().enumerate() {
            let seg = c.pairs[label].as_slice();
            len += if k == 0 || k + 1 == end - begin {
                crate::view::slice_by_src(seg, lo, hi).len()
            } else {
                seg.len()
            };
        }
        out.len = len;
        out
    }
}

impl<'g> IntoIterator for PairList<'g> {
    type Item = Pair;
    type IntoIter = Box<dyn Iterator<Item = Pair> + 'g>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl std::fmt::Debug for PairList<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A directed edge-labeled graph `G = (V, E, L)` in its *extended* form.
///
/// Every base edge `(v, u, ℓ)` is stored twice: as `(v, u, ℓ)` and as the
/// inverse extended edge `(u, v, ℓ⁻¹)`, mirroring the paper's extension of
/// `E` and `L` (Sec. III-A). Two access paths are maintained:
///
/// * **adjacency**: per vertex, a vector of `(ext label, target)` entries
///   sorted by `(label, target)` — O(log d) membership, O(d) updates;
/// * **label-grouped pairs**: per extended label, the sorted relation
///   `⟦ℓ⟧` used by index construction, LOOKUP leaves of the baseline
///   engines, and the matchers, exposed as a segmented [`PairList`].
///
/// Both views are kept consistent under [`Graph::insert_edge`] /
/// [`Graph::remove_edge`], which the maintenance experiments
/// (Tables V–VII, Fig. 13) rely on. Multi-edges collapse (`E` is a set).
///
/// # Copy-on-write storage
///
/// All vertex-indexed state lives in contiguous-range chunks behind
/// `Arc`, with boundaries balanced by extended degree
/// ([`crate::view::balanced_ranges_by_weight`]): topology (adjacency +
/// pair segments) in [`VertexChunk`]s, display names in a parallel
/// per-range store so edge churn never copies `String`s. `Graph::clone`
/// is therefore O(#chunks) — pointer bumps — and an edge mutation copies
/// only the two endpoint topology chunks via `Arc::make_mut`. This is
/// what makes the engine's snapshot-per-write transaction O(changed)
/// instead of O(graph); [`Graph::cow_diff`] reports the sharing between
/// two snapshots.
#[derive(Clone)]
pub struct Graph {
    label_names: Vec<String>,
    chunks: Vec<Arc<VertexChunk>>,
    /// Display names in ranges parallel to `chunks` (same boundaries,
    /// same routing). Kept outside [`VertexChunk`] so edge mutations
    /// never copy `String`s — only [`Graph::add_vertex`] touches the
    /// last name chunk.
    names: Vec<Arc<Vec<String>>>,
    /// Ascending chunk start ids (`chunk_starts[i] == chunks[i].start`);
    /// vertex → chunk routing is a partition point over this.
    chunk_starts: Vec<VertexId>,
    /// Per extended label: total pairs across all chunk segments (keeps
    /// [`PairList::len`] O(1) for unrestricted views).
    pair_counts: Vec<usize>,
    vertex_count: u32,
    base_edge_count: usize,
}

impl Graph {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> u32 {
        self.vertex_count
    }

    /// Number of *base* edges (the paper's Table II counts `|E|` with
    /// inverses; that is `2 ×` this value).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.base_edge_count
    }

    /// Number of base labels `|L|` (Table II's `|L|` is `2 ×` this).
    #[inline]
    pub fn base_label_count(&self) -> u16 {
        self.label_names.len() as u16
    }

    /// Number of extended labels (`2 × |L|`).
    #[inline]
    pub fn ext_label_count(&self) -> u16 {
        (self.label_names.len() * 2) as u16
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count()
    }

    /// Iterates over all extended labels.
    pub fn ext_labels(&self) -> impl Iterator<Item = ExtLabel> + '_ {
        (0..self.ext_label_count()).map(ExtLabel)
    }

    /// Iterates over all base labels.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.base_label_count()).map(Label)
    }

    /// The chunk index and in-chunk offset of a vertex.
    #[inline]
    fn locate(&self, v: VertexId) -> (usize, usize) {
        debug_assert!(v < self.vertex_count, "vertex {v} out of range");
        let ci = self.chunk_starts.partition_point(|&s| s <= v) - 1;
        (ci, (v - self.chunks[ci].start) as usize)
    }

    /// The sorted relation `⟦ℓ⟧ = {(v, u) | (v, u, ℓ) ∈ E}` for an extended
    /// label, as a segmented view.
    #[inline]
    pub fn edge_pairs(&self, l: ExtLabel) -> PairList<'_> {
        PairList {
            chunks: &self.chunks,
            label: l.0,
            lo: 0,
            hi: VertexId::MAX,
            len: self.pair_counts[l.0 as usize],
        }
    }

    /// Whether the extended edge `(v, u, ℓ)` exists.
    pub fn has_edge(&self, v: VertexId, u: VertexId, l: ExtLabel) -> bool {
        self.adjacency(v).binary_search(&(l.0, u)).is_ok()
    }

    /// The full extended adjacency of `v`, sorted by `(label, target)`.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[(u16, VertexId)] {
        let (ci, off) = self.locate(v);
        &self.chunks[ci].adj[off]
    }

    /// Sorted targets reachable from `v` via one extended edge labeled `l`.
    pub fn neighbors(&self, v: VertexId, l: ExtLabel) -> &[(u16, VertexId)] {
        let a = self.adjacency(v);
        let lo = a.partition_point(|&(x, _)| x < l.0);
        let hi = a.partition_point(|&(x, _)| x <= l.0);
        &a[lo..hi]
    }

    /// Out-degree of `v` restricted to extended label `l`.
    pub fn degree(&self, v: VertexId, l: ExtLabel) -> usize {
        self.neighbors(v, l).len()
    }

    /// Total extended degree of `v` (forward + inverse edges).
    #[inline]
    pub fn ext_degree(&self, v: VertexId) -> usize {
        self.adjacency(v).len()
    }

    /// Maximum extended degree `d` over all vertices (Thm. 4.3's `d`).
    pub fn max_degree(&self) -> usize {
        self.chunks.iter().flat_map(|c| c.adj.iter().map(Vec::len)).max().unwrap_or(0)
    }

    /// The read face of chunk `ci`, building it on first access (see
    /// [`crate::csr`] for the invalidation discipline).
    #[inline]
    fn face_of(&self, ci: usize) -> &Arc<ChunkCsr> {
        let c = &self.chunks[ci];
        c.csr.get_or_init(|| Arc::new(ChunkCsr::build(c.start, c.adj.len(), &c.pairs)))
    }

    /// Sorted targets reachable from `v` via one extended edge labeled
    /// `l`, served from the per-chunk forward CSR face: two array loads
    /// after the chunk routing, versus two binary searches over the
    /// mixed-label adjacency row in [`Graph::neighbors`]. Builds the
    /// chunk's face on first read after a mutation.
    #[inline]
    pub fn csr_targets(&self, v: VertexId, l: ExtLabel) -> &[VertexId] {
        let (ci, _) = self.locate(v);
        self.face_of(ci).targets(v, l)
    }

    /// The `i`-th topology chunk's read face (building it if absent),
    /// shared: the returned `Arc` is the cached face itself.
    pub fn csr_chunk(&self, i: usize) -> Arc<ChunkCsr> {
        Arc::clone(self.face_of(i))
    }

    /// Iterates all chunk read faces in vertex-range order, building
    /// absent ones on the fly.
    pub fn csr_chunks(&self) -> impl Iterator<Item = &ChunkCsr> + '_ {
        (0..self.chunks.len()).map(|i| &**self.face_of(i))
    }

    /// Whether the `i`-th topology chunk currently has a built read face
    /// (observability for the staleness tests: a mutation must flip this
    /// to `false` for the touched chunks and leave the rest `true`).
    pub fn csr_built(&self, i: usize) -> bool {
        self.chunks[i].csr.get().is_some()
    }

    /// Builds every chunk's read face now (benchmarks use this to warm
    /// the cache so timed runs measure the read path, not lazy builds).
    pub fn ensure_csr(&self) {
        for i in 0..self.chunks.len() {
            self.face_of(i);
        }
    }

    /// Whether the `i`-th chunk's built read face is physically shared
    /// (`Arc::ptr_eq`) with `before`'s — the CSR analogue of
    /// [`Graph::topology_chunk_shared_with`], proving snapshot installs
    /// carry faces by pointer instead of rebuilding or copying them.
    /// `false` if either side has no built face.
    pub fn csr_shared_with(&self, before: &Graph, i: usize) -> bool {
        match (self.chunks[i].csr.get(), before.chunks.get(i).and_then(|c| c.csr.get())) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Adds an isolated vertex, returning its id.
    pub fn add_vertex(&mut self, name: impl Into<String>) -> VertexId {
        let id = self.vertex_count;
        let open_new = match self.chunks.last() {
            None => true,
            Some(c) => c.row_count() >= CHUNK_SPLIT_ROWS,
        };
        if open_new {
            self.chunks.push(Arc::new(VertexChunk {
                start: id,
                adj: vec![Vec::new()],
                pairs: vec![Vec::new(); self.label_names.len() * 2],
                csr: OnceLock::new(),
            }));
            self.names.push(Arc::new(vec![name.into()]));
            self.chunk_starts.push(id);
        } else {
            let last = self.chunks.len() - 1;
            let c = self.chunk_mut(last);
            c.adj.push(Vec::new());
            Arc::make_mut(self.names.last_mut().unwrap()).push(name.into());
        }
        self.vertex_count += 1;
        id
    }

    /// Inserts the base edge `(v, u, ℓ)` together with its inverse extended
    /// edge. Returns `false` if it already existed.
    ///
    /// # Panics
    /// Panics if `v`, `u` or `ℓ` are out of range.
    pub fn insert_edge(&mut self, v: VertexId, u: VertexId, l: Label) -> bool {
        assert!(v < self.vertex_count() && u < self.vertex_count(), "vertex out of range");
        assert!(l.0 < self.base_label_count(), "label out of range");
        // Existence check before `make_mut`: a duplicate insert must not
        // copy any chunk.
        if self.has_edge(v, u, l.fwd()) {
            return false;
        }
        self.edge_halves(v, u, l, |row, entry, seg, pair| {
            let i = row.binary_search(&entry).expect_err("edge half already present");
            row.insert(i, entry);
            let i = seg.binary_search(&pair).expect_err("pair half already present");
            seg.insert(i, pair);
        });
        self.pair_counts[l.fwd().0 as usize] += 1;
        self.pair_counts[l.inv().0 as usize] += 1;
        self.base_edge_count += 1;
        true
    }

    /// Removes the base edge `(v, u, ℓ)` and its inverse extended edge.
    /// Returns `false` if it did not exist.
    pub fn remove_edge(&mut self, v: VertexId, u: VertexId, l: Label) -> bool {
        if v >= self.vertex_count() || l.0 >= self.base_label_count() {
            return false;
        }
        if !self.has_edge(v, u, l.fwd()) {
            return false;
        }
        self.edge_halves(v, u, l, |row, entry, seg, pair| {
            let i = row.binary_search(&entry).expect("edge half present");
            row.remove(i);
            let i = seg.binary_search(&pair).expect("pair half present");
            seg.remove(i);
        });
        self.pair_counts[l.fwd().0 as usize] -= 1;
        self.pair_counts[l.inv().0 as usize] -= 1;
        self.base_edge_count -= 1;
        true
    }

    /// Applies `apply` to both halves of the base edge `(v, u, ℓ)`: the
    /// forward half in `v`'s chunk and the inverse half in `u`'s chunk —
    /// the only chunks an edge mutation copies.
    fn edge_halves(
        &mut self,
        v: VertexId,
        u: VertexId,
        l: Label,
        mut apply: impl FnMut(&mut Vec<(u16, VertexId)>, (u16, VertexId), &mut Vec<Pair>, Pair),
    ) {
        for (x, y, el) in [(v, u, l.fwd()), (u, v, l.inv())] {
            let (ci, off) = self.locate(x);
            let c = self.chunk_mut(ci);
            // Split borrows: the adjacency row and the pair segment live in
            // different fields of the same chunk.
            let (row, seg) = (&mut c.adj[off], &mut c.pairs[el.0 as usize]);
            apply(row, (el.0, y), seg, Pair::new(x, y));
        }
    }

    /// The one audited COW seam: clones chunk `ci` if shared and
    /// invalidates its cached CSR face *before* handing out the mutable
    /// reference. `Arc::make_mut` does not clone at refcount 1, so the
    /// explicit `csr.take()` here is the only thing standing between
    /// the cached read face and stale reads — route every chunk
    /// mutation through this fn (the cpqx-analyze cow-seam rule checks
    /// that).
    fn chunk_mut(&mut self, ci: usize) -> &mut VertexChunk {
        let c = Arc::make_mut(&mut self.chunks[ci]);
        c.csr.take();
        c
    }

    /// Removes every edge incident to `v` (the paper's vertex-deletion
    /// procedure composes edge deletions) and returns the removed base
    /// edges as `(src, dst, label)` triples. The vertex id itself remains
    /// allocated but isolated.
    pub fn isolate_vertex(&mut self, v: VertexId) -> Vec<(VertexId, VertexId, Label)> {
        let incident: Vec<(u16, VertexId)> = self.adjacency(v).to_vec();
        let mut removed = Vec::with_capacity(incident.len());
        for (el, t) in incident {
            let el = ExtLabel(el);
            let (src, dst) = if el.is_inverse() { (t, v) } else { (v, t) };
            if self.remove_edge(src, dst, el.base()) {
                removed.push((src, dst, el.base()));
            }
        }
        removed
    }

    /// Iterates over all base edges as `(v, u, label)`.
    pub fn base_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Label)> + '_ {
        self.labels()
            .flat_map(move |l| self.edge_pairs(l.fwd()).iter().map(move |p| (p.src(), p.dst(), l)))
    }

    /// The display name of a vertex.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        let (ci, off) = self.locate(v);
        &self.names[ci][off]
    }

    /// The display name of a base label.
    pub fn label_name(&self, l: Label) -> &str {
        &self.label_names[l.0 as usize]
    }

    /// The display form of an extended label (`name` or `name⁻¹`).
    pub fn ext_label_name(&self, l: ExtLabel) -> String {
        if l.is_inverse() {
            format!("{}⁻¹", self.label_name(l.base()))
        } else {
            self.label_name(l.base()).to_string()
        }
    }

    /// Looks up a vertex by name (linear scan; intended for examples/tests).
    pub fn vertex_named(&self, name: &str) -> Option<VertexId> {
        self.chunks
            .iter()
            .zip(&self.names)
            .find_map(|(c, names)| names.iter().position(|n| n == name).map(|i| c.start + i as u32))
    }

    /// Looks up a base label by name (linear scan over the small alphabet).
    pub fn label_named(&self, name: &str) -> Option<Label> {
        self.label_names.iter().position(|n| n == name).map(|i| Label(i as u16))
    }

    /// Looks up a vertex-tag label (`@tag`); see
    /// [`GraphBuilder::tag_vertex`].
    pub fn tag_label(&self, tag: &str) -> Option<Label> {
        self.label_named(&format!("@{tag}"))
    }

    /// Whether `v` carries the vertex tag.
    pub fn vertex_has_tag(&self, v: VertexId, tag: &str) -> bool {
        self.tag_label(tag).is_some_and(|l| self.has_edge(v, v, l.fwd()))
    }

    /// Number of copy-on-write units backing this graph (topology chunks
    /// plus the parallel name chunks).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len() + self.names.len()
    }

    /// Structural-sharing report against the graph this one was cloned
    /// from: per chunk position (topology chunks and name chunks),
    /// whether the `Arc` is still shared with `before` or was copied (by
    /// `Arc::make_mut`) / newly created.
    pub fn cow_diff(&self, before: &Graph) -> CowDiff {
        let mut diff = CowDiff::default();
        diff.record_arcs(&self.chunks, &before.chunks);
        diff.record_arcs(&self.names, &before.names);
        diff
    }

    /// The base label name table, in label-id order. Persistence surface:
    /// snapshot headers store this verbatim so recovered graphs resolve
    /// names to the same label ids.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Number of topology chunks (the copy-on-write units carrying
    /// adjacency rows and pair segments). Persistence surface: snapshot
    /// writers emit one record per topology chunk.
    pub fn topology_chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Number of name chunks (the per-range display-name stores parallel
    /// to the topology chunks).
    pub fn name_chunk_count(&self) -> usize {
        self.names.len()
    }

    /// The `i`-th topology chunk as `(start vertex id, adjacency rows)`.
    /// Rows are indexed by `v - start` and sorted by `(ext label,
    /// target)`. This is all a snapshot persists per chunk — the
    /// per-label pair segments are derived state, rebuilt by
    /// [`Graph::from_chunk_parts`].
    pub fn topology_chunk(&self, i: usize) -> (VertexId, &[Vec<(u16, VertexId)>]) {
        let c = &self.chunks[i];
        (c.start, &c.adj)
    }

    /// The `i`-th name chunk: display names of the vertices in the
    /// parallel topology chunk's range.
    pub fn name_chunk(&self, i: usize) -> &[String] {
        &self.names[i]
    }

    /// Whether the `i`-th topology chunk is physically shared
    /// (`Arc::ptr_eq`) with the chunk at the same position of `before`.
    ///
    /// This is the incremental-snapshot change detector: all mutation
    /// goes through `Arc::make_mut`, and as long as `before` (the
    /// last-persisted state) is kept alive its chunks have refcount ≥ 2,
    /// so any mutation of a descendant must have copied the chunk —
    /// pointer equality therefore proves the chunk's bytes are unchanged.
    pub fn topology_chunk_shared_with(&self, before: &Graph, i: usize) -> bool {
        matches!(before.chunks.get(i), Some(b) if Arc::ptr_eq(b, &self.chunks[i]))
    }

    /// Name-chunk analogue of [`Graph::topology_chunk_shared_with`].
    pub fn name_chunk_shared_with(&self, before: &Graph, i: usize) -> bool {
        matches!(before.names.get(i), Some(b) if Arc::ptr_eq(b, &self.names[i]))
    }

    /// Reassembles a graph from persisted chunk parts, rebuilding all
    /// derived state (per-label pair segments, pair counts, chunk
    /// routing, edge count) exactly as [`GraphBuilder::build`] would.
    ///
    /// `topology[i]` is `(start, adjacency rows)` as produced by
    /// [`Graph::topology_chunk`]; `names[i]` is the parallel name chunk.
    /// The input is validated (contiguous chunk ranges, parallel name
    /// chunks, in-range sorted adjacency, forward/inverse symmetry of
    /// the pair totals) so a corrupt snapshot surfaces as an error
    /// instead of a graph that panics later.
    pub fn from_chunk_parts(
        label_names: Vec<String>,
        topology: Vec<TopologyChunkParts>,
        names: Vec<Vec<String>>,
    ) -> Result<Graph, &'static str> {
        let nl = label_names.len();
        if nl > (u16::MAX as usize).div_ceil(2) {
            return Err("label table too large");
        }
        if topology.len() != names.len() {
            return Err("topology/name chunk counts differ");
        }
        let mut next = 0u32;
        for ((start, adj), ns) in topology.iter().zip(&names) {
            if *start != next {
                return Err("chunk starts not contiguous");
            }
            if adj.is_empty() {
                return Err("empty topology chunk");
            }
            if adj.len() != ns.len() {
                return Err("name chunk rows differ from topology chunk");
            }
            next = match next.checked_add(adj.len() as u32) {
                Some(n) => n,
                None => return Err("vertex count overflows u32"),
            };
        }
        let vertex_count = next;
        let mut chunks = Vec::with_capacity(topology.len());
        let mut name_chunks = Vec::with_capacity(names.len());
        let mut chunk_starts = Vec::with_capacity(topology.len());
        let mut pair_counts = vec![0usize; nl * 2];
        for ((start, adj), ns) in topology.into_iter().zip(names) {
            let mut pairs = vec![Vec::new(); nl * 2];
            for (off, row) in adj.iter().enumerate() {
                let v = start + off as u32;
                if !row.windows(2).all(|w| w[0] < w[1]) {
                    return Err("adjacency row not strictly sorted");
                }
                for &(el, t) in row {
                    if el as usize >= nl * 2 {
                        return Err("adjacency label out of range");
                    }
                    if t >= vertex_count {
                        return Err("adjacency target out of range");
                    }
                    // Rows ascend by vertex and entries by (label, target),
                    // so each per-label segment comes out sorted for free.
                    pairs[el as usize].push(Pair::new(v, t));
                }
            }
            for (l, p) in pairs.iter().enumerate() {
                pair_counts[l] += p.len();
            }
            chunk_starts.push(start);
            chunks.push(Arc::new(VertexChunk { start, adj, pairs, csr: OnceLock::new() }));
            name_chunks.push(Arc::new(ns));
        }
        let fwd_total: usize = (0..nl).map(|l| pair_counts[l * 2]).sum();
        let inv_total: usize = (0..nl).map(|l| pair_counts[l * 2 + 1]).sum();
        if fwd_total != inv_total {
            return Err("forward/inverse pair counts disagree");
        }
        Ok(Graph {
            label_names,
            chunks,
            names: name_chunks,
            chunk_starts,
            pair_counts,
            vertex_count,
            base_edge_count: fwd_total,
        })
    }

    /// A clone that shares **no** chunk with `self` — every chunk's
    /// contents (topology and names) are copied up front. This reproduces
    /// the cost of the pre-COW full-copy write path and exists for
    /// benchmarking and regression comparison (see the engine's
    /// `deep_clone_writes` option); ordinary code should use the
    /// O(#chunks) `Clone`.
    pub fn deep_clone(&self) -> Graph {
        let mut g = self.clone();
        for c in &mut g.chunks {
            *c = Arc::new(VertexChunk::clone(c));
        }
        for n in &mut g.names {
            *n = Arc::new(Vec::clone(n));
        }
        g
    }

    /// Approximate deep memory footprint in bytes (graph accounting used by
    /// the experiment harness).
    pub fn size_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| {
                let adj: usize = c.adj.iter().map(|a| a.capacity() * 8 + 24).sum();
                let pairs: usize = c.pairs.iter().map(|p| p.capacity() * 8 + 24).sum();
                adj + pairs
            })
            .sum()
    }

    /// Summary statistics of the graph (degree distribution, label skew).
    pub fn stats(&self) -> GraphStats {
        let n = self.vertex_count() as usize;
        let mut degrees: Vec<usize> =
            self.chunks.iter().flat_map(|c| c.adj.iter().map(Vec::len)).collect();
        degrees.sort_unstable();
        let max_degree = degrees.last().copied().unwrap_or(0);
        let median_degree = if n == 0 { 0 } else { degrees[n / 2] };
        let avg_degree = if n == 0 { 0.0 } else { degrees.iter().sum::<usize>() as f64 / n as f64 };
        let mut label_counts: Vec<usize> =
            self.labels().map(|l| self.edge_pairs(l.fwd()).len()).collect();
        label_counts.sort_unstable_by(|a, b| b.cmp(a));
        let label_skew = match (label_counts.first(), label_counts.last()) {
            (Some(&hi), Some(&lo)) if lo > 0 => hi as f64 / lo as f64,
            _ => f64::INFINITY,
        };
        GraphStats {
            vertices: self.vertex_count(),
            base_edges: self.edge_count(),
            base_labels: self.base_label_count(),
            max_degree,
            median_degree,
            avg_degree,
            label_skew,
        }
    }
}

/// Summary statistics of a graph (extended-degree based).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub vertices: u32,
    /// Base (non-extended) edge count.
    pub base_edges: usize,
    /// Base label count.
    pub base_labels: u16,
    /// Maximum extended degree (Thm. 4.3's `d`).
    pub max_degree: usize,
    /// Median extended degree.
    pub median_degree: usize,
    /// Mean extended degree.
    pub avg_degree: f64,
    /// Most-frequent / least-frequent base label ratio (∞ if a label is
    /// unused).
    pub label_skew: f64,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("vertices", &self.vertex_count())
            .field("base_edges", &self.edge_count())
            .field("base_labels", &self.base_label_count())
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Vertices and labels can be interned by name ([`GraphBuilder::vertex`],
/// [`GraphBuilder::label`]) or created anonymously in bulk
/// ([`GraphBuilder::ensure_vertices`], [`GraphBuilder::ensure_labels`]).
#[derive(Default)]
pub struct GraphBuilder {
    vertex_names: Vec<String>,
    vertex_index: HashMap<String, VertexId>,
    label_names: Vec<String>,
    label_index: HashMap<String, Label>,
    edges: Vec<(VertexId, VertexId, Label)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a vertex by name, returning its id.
    pub fn vertex(&mut self, name: &str) -> VertexId {
        if let Some(&id) = self.vertex_index.get(name) {
            return id;
        }
        let id = self.vertex_names.len() as VertexId;
        self.vertex_names.push(name.to_string());
        self.vertex_index.insert(name.to_string(), id);
        id
    }

    /// Ensures at least `n` anonymous vertices (named by their index) exist.
    pub fn ensure_vertices(&mut self, n: u32) {
        while (self.vertex_names.len() as u32) < n {
            let id = self.vertex_names.len();
            self.vertex_names.push(id.to_string());
        }
    }

    /// Interns a base label by name.
    pub fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.label_index.get(name) {
            return l;
        }
        let l = Label(self.label_names.len() as u16);
        self.label_names.push(name.to_string());
        self.label_index.insert(name.to_string(), l);
        l
    }

    /// Ensures at least `n` anonymous labels (named `l0`, `l1`, …) exist.
    pub fn ensure_labels(&mut self, n: u16) {
        while (self.label_names.len() as u16) < n {
            let name = format!("l{}", self.label_names.len());
            self.label(&name);
        }
    }

    /// Adds a base edge by vertex/label ids.
    pub fn add_edge(&mut self, v: VertexId, u: VertexId, l: Label) {
        self.edges.push((v, u, l));
    }

    /// Adds a base edge by names, interning as needed.
    pub fn add_edge_named(&mut self, v: &str, u: &str, l: &str) {
        let (v, u, l) = (self.vertex(v), self.vertex(u), self.label(l));
        self.add_edge(v, u, l);
    }

    /// Tags a vertex with a (vertex-label) tag — the standard encoding for
    /// vertex labels the paper's footnote 5 alludes to: a self-loop edge
    /// carrying the reserved label `@tag`. A CPQ can then filter endpoints
    /// by composing with the tag atom, e.g. `@person ∘ f` finds `f`-edges
    /// whose source is tagged `person`, and `@person ∩ id` all tagged
    /// vertices.
    pub fn tag_vertex(&mut self, v: &str, tag: &str) {
        let v = self.vertex(v);
        self.tag_vertex_id(v, tag);
    }

    /// Tags a vertex by id; see [`GraphBuilder::tag_vertex`].
    pub fn tag_vertex_id(&mut self, v: VertexId, tag: &str) {
        let l = self.label(&format!("@{tag}"));
        self.add_edge(v, v, l);
    }

    /// Finalizes the graph with the default copy-on-write chunk
    /// granularity: sorts adjacency, collapses multi-edges, builds the
    /// per-label pair segments, and tiles the vertices into degree-balanced
    /// chunks.
    pub fn build(self) -> Graph {
        self.build_with_chunk_weight(TARGET_CHUNK_WEIGHT)
    }

    /// Like [`GraphBuilder::build`] with an explicit target adjacency
    /// weight per copy-on-write chunk — smaller targets mean more, finer
    /// chunks (more sharing under mutation, more `Arc`s to clone). Exposed
    /// for tests and benchmarks that need multi-chunk graphs at small
    /// sizes.
    pub fn build_with_chunk_weight(self, target_weight: usize) -> Graph {
        let n = self.vertex_names.len();
        let nl = self.label_names.len();
        let mut edges = self.edges;
        edges.sort_unstable();
        edges.dedup();
        let mut deg = vec![0usize; n];
        for &(v, u, l) in &edges {
            assert!((v as usize) < n && (u as usize) < n, "edge endpoint out of range");
            assert!((l.0 as usize) < nl, "edge label out of range");
            deg[v as usize] += 1;
            deg[u as usize] += 1;
        }
        // Degree-balanced chunk boundaries, reusing the shard-range
        // balancer geometry (each vertex weighs at least 1 there, so the
        // target is honored against Σ max(deg, 1)).
        let total: usize = deg.iter().map(|&d| d.max(1)).sum();
        let shards = total.div_ceil(target_weight.max(1)).max(1);
        let ranges = crate::view::balanced_ranges_by_weight(n as u32, shards, |v| deg[v as usize]);

        let mut name_iter = self.vertex_names.into_iter();
        let mut chunks: Vec<Arc<VertexChunk>> = Vec::with_capacity(ranges.len());
        let mut names: Vec<Arc<Vec<String>>> = Vec::with_capacity(ranges.len());
        let mut chunk_starts: Vec<VertexId> = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let rows = (r.end - r.start) as usize;
            chunks.push(Arc::new(VertexChunk {
                start: r.start,
                adj: vec![Vec::new(); rows],
                pairs: vec![Vec::new(); nl * 2],
                csr: OnceLock::new(),
            }));
            names.push(Arc::new(name_iter.by_ref().take(rows).collect()));
            chunk_starts.push(r.start);
        }

        let locate = |v: VertexId| chunk_starts.partition_point(|&s| s <= v) - 1;
        for &(v, u, l) in &edges {
            let c = Arc::get_mut(&mut chunks[locate(v)]).expect("freshly built chunk is unique");
            c.adj[(v - c.start) as usize].push((l.fwd().0, u));
            c.pairs[l.fwd().0 as usize].push(Pair::new(v, u));
            let c = Arc::get_mut(&mut chunks[locate(u)]).expect("freshly built chunk is unique");
            c.adj[(u - c.start) as usize].push((l.inv().0, v));
            c.pairs[l.inv().0 as usize].push(Pair::new(u, v));
        }
        let mut pair_counts = vec![0usize; nl * 2];
        for chunk in &mut chunks {
            let c = Arc::get_mut(chunk).expect("freshly built chunk is unique");
            for a in &mut c.adj {
                a.sort_unstable();
                a.dedup();
            }
            for (l, p) in c.pairs.iter_mut().enumerate() {
                p.sort_unstable();
                p.dedup();
                pair_counts[l] += p.len();
            }
        }
        Graph {
            label_names: self.label_names,
            chunks,
            names,
            chunk_starts,
            pair_counts,
            vertex_count: n as u32,
            base_edge_count: edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "b", "f");
        b.add_edge_named("b", "c", "f");
        b.add_edge_named("a", "c", "v");
        b.add_edge_named("c", "c", "f");
        b.build()
    }

    #[test]
    fn build_counts() {
        let g = tiny();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.base_label_count(), 2);
        assert_eq!(g.ext_label_count(), 4);
    }

    #[test]
    fn inverse_edges_are_materialized() {
        let g = tiny();
        let f = g.label_named("f").unwrap();
        let (a, b) = (g.vertex_named("a").unwrap(), g.vertex_named("b").unwrap());
        assert!(g.has_edge(a, b, f.fwd()));
        assert!(g.has_edge(b, a, f.inv()));
        assert!(!g.has_edge(b, a, f.fwd()));
        assert_eq!(g.edge_pairs(f.fwd()).len(), 3);
        assert_eq!(g.edge_pairs(f.inv()).len(), 3);
    }

    #[test]
    fn neighbors_are_label_scoped() {
        let g = tiny();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        let a = g.vertex_named("a").unwrap();
        let nf: Vec<_> = g.neighbors(a, f.fwd()).iter().map(|&(_, t)| t).collect();
        let nv: Vec<_> = g.neighbors(a, v.fwd()).iter().map(|&(_, t)| t).collect();
        assert_eq!(nf, vec![g.vertex_named("b").unwrap()]);
        assert_eq!(nv, vec![g.vertex_named("c").unwrap()]);
    }

    #[test]
    fn multi_edges_collapse() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "b", "f");
        b.add_edge_named("a", "b", "f");
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = tiny();
        let f = g.label_named("f").unwrap();
        let (a, c) = (g.vertex_named("a").unwrap(), g.vertex_named("c").unwrap());
        assert!(!g.has_edge(a, c, f.fwd()));
        assert!(g.insert_edge(a, c, f));
        assert!(!g.insert_edge(a, c, f), "duplicate insert must be a no-op");
        assert!(g.has_edge(a, c, f.fwd()));
        assert!(g.has_edge(c, a, f.inv()));
        assert_eq!(g.edge_count(), 5);
        assert!(g.remove_edge(a, c, f));
        assert!(!g.remove_edge(a, c, f));
        assert!(!g.has_edge(a, c, f.fwd()));
        assert!(!g.has_edge(c, a, f.inv()));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn insert_keeps_views_consistent() {
        let mut g = tiny();
        let f = g.label_named("f").unwrap();
        let (a, c) = (g.vertex_named("a").unwrap(), g.vertex_named("c").unwrap());
        g.insert_edge(a, c, f);
        let fwd = g.edge_pairs(f.fwd()).to_vec();
        assert!(fwd.windows(2).all(|w| w[0] < w[1]), "pair list stays sorted");
        assert!(g.edge_pairs(f.fwd()).contains(Pair::new(a, c)));
        assert!(g.edge_pairs(f.inv()).contains(Pair::new(c, a)));
        assert_eq!(g.edge_pairs(f.fwd()).len(), fwd.len());
    }

    #[test]
    fn isolate_vertex_removes_all_incident() {
        let mut g = tiny();
        let b = g.vertex_named("b").unwrap();
        let removed = g.isolate_vertex(b);
        assert_eq!(removed.len(), 2);
        assert_eq!(g.ext_degree(b), 0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loop_handling() {
        let g = tiny();
        let f = g.label_named("f").unwrap();
        let c = g.vertex_named("c").unwrap();
        assert!(g.has_edge(c, c, f.fwd()));
        assert!(g.has_edge(c, c, f.inv()));
        assert!(g.edge_pairs(f.fwd()).contains(Pair::new(c, c)));
    }

    #[test]
    fn add_vertex_grows() {
        let mut g = tiny();
        let d = g.add_vertex("d");
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.vertex_name(d), "d");
        assert_eq!(g.ext_degree(d), 0);
    }

    #[test]
    fn base_edges_iterates_forward_only() {
        let g = tiny();
        assert_eq!(g.base_edges().count(), g.edge_count());
    }

    #[test]
    fn vertex_tags_are_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("alice", "post1", "wrote");
        b.tag_vertex("alice", "person");
        b.tag_vertex("post1", "post");
        let g = b.build();
        let alice = g.vertex_named("alice").unwrap();
        let post = g.vertex_named("post1").unwrap();
        assert!(g.vertex_has_tag(alice, "person"));
        assert!(!g.vertex_has_tag(alice, "post"));
        assert!(g.vertex_has_tag(post, "post"));
        assert!(!g.vertex_has_tag(post, "person"));
        assert!(g.tag_label("person").is_some());
        assert!(g.tag_label("nosuch").is_none());
        // Tags are ordinary labels: the tag self-loop is a base edge.
        let tl = g.tag_label("person").unwrap();
        assert!(g.has_edge(alice, alice, tl.fwd()));
    }

    #[test]
    fn stats_summarize_structure() {
        let g = tiny();
        let s = g.stats();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.base_edges, 4);
        assert_eq!(s.base_labels, 2);
        // c: f-in from b, self-loop f (both directions), v-in from a → 4.
        assert_eq!(s.max_degree, 4);
        assert!(s.avg_degree > 0.0);
        assert!(s.label_skew >= 1.0);
        // Empty graph: no panics, zeroed stats.
        let empty = GraphBuilder::new().build();
        let s = empty.stats();
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max_degree, 0);
    }

    /// A multi-chunk graph built with a tiny chunk weight so chunk
    /// boundaries fall inside the data.
    fn chunky(n: u32, weight: usize) -> Graph {
        let mut b = GraphBuilder::new();
        b.ensure_vertices(n);
        let l = b.label("f");
        for v in 0..n {
            b.add_edge(v, (v + 1) % n, l);
            b.add_edge(v, (v + 7) % n, l);
        }
        b.build_with_chunk_weight(weight)
    }

    #[test]
    fn chunked_build_matches_monolithic() {
        let mono = chunky(64, usize::MAX);
        let multi = chunky(64, 8);
        assert_eq!(mono.chunk_count(), 2, "one topology chunk + one name chunk");
        assert!(multi.chunk_count() > 8, "weight 8 must split 64 vertices");
        assert_eq!(mono.edge_count(), multi.edge_count());
        for v in mono.vertices() {
            assert_eq!(mono.adjacency(v), multi.adjacency(v), "adjacency of {v}");
            assert_eq!(mono.vertex_name(v), multi.vertex_name(v));
        }
        for l in mono.ext_labels() {
            assert_eq!(mono.edge_pairs(l).to_vec(), multi.edge_pairs(l).to_vec());
            assert_eq!(mono.edge_pairs(l).len(), multi.edge_pairs(l).len());
        }
    }

    #[test]
    fn clone_shares_chunks_and_mutation_copies_only_touched() {
        let base = chunky(64, 8);
        let mut g = base.clone();
        let d0 = g.cow_diff(&base);
        assert_eq!(d0.chunks_copied, 0, "a fresh clone shares everything");
        assert_eq!(d0.chunks_shared, base.chunk_count());
        let f = g.label_named("f").unwrap();
        assert!(g.insert_edge(3, 40, f));
        let d1 = g.cow_diff(&base);
        assert!(d1.chunks_copied >= 1 && d1.chunks_copied <= 2, "endpoint chunks only: {d1:?}");
        assert_eq!(d1.chunks_copied + d1.chunks_shared, g.chunk_count());
        // The original is untouched.
        assert!(!base.has_edge(3, 40, f.fwd()));
        assert_eq!(base.edge_count() + 1, g.edge_count());
    }

    #[test]
    fn noop_mutations_copy_nothing() {
        let base = chunky(64, 8);
        let mut g = base.clone();
        let f = g.label_named("f").unwrap();
        assert!(!g.insert_edge(0, 1, f), "edge exists");
        assert!(!g.remove_edge(0, 2, f), "edge absent");
        let d = g.cow_diff(&base);
        assert_eq!(d.chunks_copied, 0, "no-ops must not break sharing");
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let base = chunky(64, 8);
        let g = base.deep_clone();
        let d = g.cow_diff(&base);
        assert_eq!(d.chunks_shared, 0);
        assert_eq!(d.chunks_copied, base.chunk_count());
        for l in base.ext_labels() {
            assert_eq!(base.edge_pairs(l).to_vec(), g.edge_pairs(l).to_vec());
        }
    }

    #[test]
    fn pair_list_views() {
        let g = chunky(64, 8);
        let f = g.label_named("f").unwrap();
        let all = g.edge_pairs(f.fwd());
        assert_eq!(all.len(), 128);
        assert_eq!(all.iter().count(), all.len());
        let flat = all.to_vec();
        assert!(flat.windows(2).all(|w| w[0] < w[1]), "segment concat stays sorted");
        // Segmented restriction agrees with filtering.
        let sub = all.restrict_src(10, 30);
        let expect: Vec<Pair> =
            flat.iter().copied().filter(|p| (10..30).contains(&p.src())).collect();
        assert_eq!(sub.to_vec(), expect);
        assert_eq!(sub.len(), expect.len());
        for &p in &expect {
            assert!(sub.contains(p));
        }
        assert!(!sub.contains(Pair::new(40, 41)));
    }

    /// Disassembles a graph through the persistence accessors and
    /// reassembles it via `from_chunk_parts`.
    fn chunk_roundtrip(g: &Graph) -> Graph {
        let topo = (0..g.topology_chunk_count())
            .map(|i| {
                let (start, adj) = g.topology_chunk(i);
                (start, adj.to_vec())
            })
            .collect();
        let names = (0..g.name_chunk_count()).map(|i| g.name_chunk(i).to_vec()).collect();
        Graph::from_chunk_parts(g.label_names().to_vec(), topo, names).expect("valid parts")
    }

    #[test]
    fn chunk_parts_roundtrip_rebuilds_derived_state() {
        let mut g = chunky(64, 8);
        let f = g.label_named("f").unwrap();
        g.insert_edge(3, 40, f);
        g.remove_edge(0, 1, f);
        let d = g.add_vertex("extra");
        g.insert_edge(d, 5, f);
        let r = chunk_roundtrip(&g);
        assert_eq!(r.vertex_count(), g.vertex_count());
        assert_eq!(r.edge_count(), g.edge_count());
        assert_eq!(r.label_names(), g.label_names());
        for v in g.vertices() {
            assert_eq!(r.adjacency(v), g.adjacency(v), "adjacency of {v}");
            assert_eq!(r.vertex_name(v), g.vertex_name(v));
        }
        for l in g.ext_labels() {
            assert_eq!(r.edge_pairs(l).to_vec(), g.edge_pairs(l).to_vec());
            assert_eq!(r.edge_pairs(l).len(), g.edge_pairs(l).len());
        }
        // The rebuilt graph is fully maintainable.
        let mut r = r;
        assert!(r.insert_edge(1, 2, f) || r.remove_edge(1, 2, f));
    }

    #[test]
    fn from_chunk_parts_rejects_corrupt_input() {
        let g = chunky(16, 8);
        let take = |g: &Graph| {
            let topo: Vec<_> = (0..g.topology_chunk_count())
                .map(|i| {
                    let (s, adj) = g.topology_chunk(i);
                    (s, adj.to_vec())
                })
                .collect();
            let names: Vec<_> =
                (0..g.name_chunk_count()).map(|i| g.name_chunk(i).to_vec()).collect();
            (g.label_names().to_vec(), topo, names)
        };
        // Non-contiguous starts.
        let (l, mut topo, names) = take(&g);
        topo.last_mut().unwrap().0 += 1;
        assert!(Graph::from_chunk_parts(l, topo, names).is_err());
        // Out-of-range target.
        let (l, mut topo, names) = take(&g);
        topo[0].1[0].push((0, 10_000));
        assert!(Graph::from_chunk_parts(l, topo, names).is_err());
        // Out-of-range label.
        let (l, mut topo, names) = take(&g);
        topo[0].1[0].insert(0, (0, 0));
        topo[0].1[0][0].0 = 99;
        assert!(Graph::from_chunk_parts(l, topo, names).is_err());
        // Name chunk length mismatch.
        let (l, topo, mut names) = take(&g);
        names[0].pop();
        assert!(Graph::from_chunk_parts(l, topo, names).is_err());
        // Asymmetric halves: drop one inverse entry.
        let (l, mut topo, names) = take(&g);
        let row = topo[0].1.iter_mut().find(|r| !r.is_empty()).unwrap();
        row.pop();
        assert!(Graph::from_chunk_parts(l, topo, names).is_err());
    }

    #[test]
    fn chunk_sharing_detects_mutation_positionally() {
        let base = chunky(64, 8);
        let mut g = base.clone();
        for i in 0..g.topology_chunk_count() {
            assert!(g.topology_chunk_shared_with(&base, i));
        }
        for i in 0..g.name_chunk_count() {
            assert!(g.name_chunk_shared_with(&base, i));
        }
        let f = g.label_named("f").unwrap();
        g.insert_edge(3, 40, f);
        let changed: Vec<usize> = (0..g.topology_chunk_count())
            .filter(|&i| !g.topology_chunk_shared_with(&base, i))
            .collect();
        assert!(!changed.is_empty() && changed.len() <= 2, "endpoint chunks only: {changed:?}");
        assert!((0..g.name_chunk_count()).all(|i| g.name_chunk_shared_with(&base, i)));
        // Appending a vertex grows past `before`: new positions count as
        // changed.
        let mut g2 = base.clone();
        g2.add_vertex("tail");
        let last = g2.topology_chunk_count() - 1;
        assert!(!g2.topology_chunk_shared_with(&base, last));
    }

    #[test]
    fn add_vertex_opens_chunks_past_split() {
        let mut g = GraphBuilder::new().build();
        assert_eq!(g.chunk_count(), 0);
        for i in 0..(CHUNK_SPLIT_ROWS + 10) {
            g.add_vertex(format!("v{i}"));
        }
        assert_eq!(g.vertex_count() as usize, CHUNK_SPLIT_ROWS + 10);
        assert_eq!(g.chunk_count(), 4, "split threshold opens a second chunk pair");
        assert_eq!(g.vertex_name(0), "v0");
        let last = g.vertex_count() - 1;
        assert_eq!(g.vertex_name(last), format!("v{}", last));
        assert_eq!(g.ext_degree(last), 0);
    }
}
